//! # query-shredding — reproduction of "Query Shredding" (SIGMOD 2014)
//!
//! This facade crate re-exports the workspace members so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`nrc`] — the higher-order nested relational calculus (λNRC): types,
//!   terms, type checker and the nested reference semantics.
//! * [`sqlengine`] — an in-memory SQL:1999 subset engine (the substitute for
//!   PostgreSQL): storage, executor with hash joins, `WITH`, `UNION ALL`,
//!   `ROW_NUMBER` and correlated `EXISTS`, plus a printer and parser.
//! * [`shredding`] — the paper's contribution: normalisation, shredding,
//!   let-insertion, SQL generation and stitching.
//! * [`baselines`] — loop-lifting, Links' default flat evaluation and Van den
//!   Bussche's simulation.
//! * [`datagen`] — the organisation schema, a seeded data generator and the
//!   benchmark queries QF1–QF6 / Q1–Q6.
//!
//! See the `examples/` directory for runnable walkthroughs and `DESIGN.md`
//! for the system inventory, the session lifecycle and the backend trait.
//!
//! The entry point is the [`shredding::session::Shredder`] session:
//!
//! ```
//! use query_shredding::prelude::*;
//!
//! let db = generate(&OrgConfig::small());
//! let session = Shredder::builder().database(db).build().unwrap();
//! let q = datagen::queries::q4();
//! let prepared = session.prepare(&q).unwrap();       // normalise + shred + SQL-gen
//! let nested = session.execute(&prepared).unwrap();  // execute + stitch
//! assert!(nested.multiset_eq(&session.oracle(&q).unwrap()));
//! assert!(session.prepare(&q).unwrap().from_cache()); // plan cache hit
//! ```

#![forbid(unsafe_code)]

pub use baselines;
pub use datagen;
pub use nrc;
pub use shredding;
pub use sqlengine;

/// Convenience prelude for examples and tests: the session API (including
/// parameterized prepared queries), the backends, and the workload
/// generator. The deprecated pre-session free functions (`run`,
/// `run_in_memory`, `eval_nested`) have been removed; the session API is
/// the only entry point.
pub mod prelude {
    pub use baselines::{FlatDefaultBackend, LoopLiftBackend, VandenBusscheBackend};
    pub use datagen::{generate, organisation_schema, MutationConfig, MutationStream, OrgConfig};
    pub use nrc::builder::*;
    pub use nrc::{Database, Schema, TableSchema, Value};
    pub use shredding::semantics::IndexScheme;
    pub use shredding::session::{
        NestedOracleBackend, ParamSpec, Params, PreparedQuery, ShreddedMemoryBackend, Shredder,
        ShredderBuilder, SqlBackend, SqlEngineBackend,
    };
    pub use shredding::{StorageDelta, Subscription, WriteBatch, WriteOp};
}
