//! # query-shredding — reproduction of "Query Shredding" (SIGMOD 2014)
//!
//! This facade crate re-exports the workspace members so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`nrc`] — the higher-order nested relational calculus (λNRC): types,
//!   terms, type checker and the nested reference semantics.
//! * [`sqlengine`] — an in-memory SQL:1999 subset engine (the substitute for
//!   PostgreSQL): storage, executor with hash joins, `WITH`, `UNION ALL`,
//!   `ROW_NUMBER` and correlated `EXISTS`, plus a printer and parser.
//! * [`shredding`] — the paper's contribution: normalisation, shredding,
//!   let-insertion, SQL generation and stitching.
//! * [`baselines`] — loop-lifting, Links' default flat evaluation and Van den
//!   Bussche's simulation.
//! * [`datagen`] — the organisation schema, a seeded data generator and the
//!   benchmark queries QF1–QF6 / Q1–Q6.
//!
//! See the `examples/` directory for runnable walkthroughs and `DESIGN.md` /
//! `EXPERIMENTS.md` for the system inventory and the experiment index.

pub use baselines;
pub use datagen;
pub use nrc;
pub use shredding;
pub use sqlengine;

/// Convenience prelude for examples and tests.
pub mod prelude {
    pub use baselines::{run_flat, run_looplift};
    pub use datagen::{generate, organisation_schema, OrgConfig};
    pub use nrc::builder::*;
    pub use nrc::{Database, Schema, TableSchema, Value};
    pub use shredding::pipeline::{compile, engine_from_database, eval_nested, run, run_in_memory};
    pub use shredding::semantics::IndexScheme;
}
