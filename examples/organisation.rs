//! The paper's running example (Section 3): the nested organisation view
//! `Qorg` and the outliers query `Q`, evaluated over generated organisation
//! data through a `Shredder` session.
//!
//! ```sh
//! cargo run --example organisation
//! ```

use query_shredding::prelude::*;

fn main() {
    // A small generated organisation (deterministic: same seed, same data).
    let db = generate(&OrgConfig {
        departments: 6,
        employees_per_department: 12,
        contacts_per_department: 4,
        ..OrgConfig::default()
    });
    let session = Shredder::builder().database(db).build().unwrap();

    // Q1 = Qorg: the whole organisation as a nested value
    //   Bag ⟨name, employees: Bag ⟨name, salary, tasks: Bag String⟩,
    //        contacts: Bag ⟨name, client⟩⟩
    let q_org = datagen::queries::q_org();
    let prepared = session.prepare(&q_org).unwrap();
    println!(
        "Qorg has nesting degree {} → {} flat SQL queries",
        prepared.result_type().nesting_degree(),
        prepared.query_count()
    );

    let organisation = session.execute(&prepared).unwrap();
    let departments = organisation.as_bag().unwrap();
    println!(
        "organisation view has {} departments; first department:",
        departments.len()
    );
    println!("  {}\n", departments[0]);

    // Q6 = the outliers query of Section 3: poor/rich employees with their
    // tasks, and client contacts with the task "buy".
    let q6 = datagen::queries::q6();
    let outliers = session.run(&q6).unwrap();
    println!("outliers-and-clients view (Q6):");
    for dept in outliers.as_bag().unwrap().iter().take(3) {
        println!("  {}", dept);
    }

    // Both agree with direct nested evaluation.
    assert!(organisation.multiset_eq(&session.oracle(&q_org).unwrap()));
    assert!(outliers.multiset_eq(&session.oracle(&q6).unwrap()));
    println!("\nboth queries agree with the nested reference semantics ✓");
}
