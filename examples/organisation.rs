//! The paper's running example (Section 3): the nested organisation view
//! `Qorg` and the outliers query `Q`, composed into `Qcomp`, evaluated over
//! generated organisation data via query shredding.
//!
//! ```sh
//! cargo run --example organisation
//! ```

use query_shredding::prelude::*;

fn main() {
    let schema = organisation_schema();
    // A small generated organisation (deterministic: same seed, same data).
    let db = generate(&OrgConfig {
        departments: 6,
        employees_per_department: 12,
        contacts_per_department: 4,
        ..OrgConfig::default()
    });
    let engine = engine_from_database(&db).unwrap();

    // Q1 = Qorg: the whole organisation as a nested value
    //   Bag ⟨name, employees: Bag ⟨name, salary, tasks: Bag String⟩,
    //        contacts: Bag ⟨name, client⟩⟩
    let q_org = datagen::queries::q_org();
    let compiled = compile(&q_org, &schema).unwrap();
    println!(
        "Qorg has nesting degree {} → {} flat SQL queries",
        compiled.result_type.nesting_degree(),
        compiled.query_count()
    );

    let organisation = run(&q_org, &schema, &engine).unwrap();
    let departments = organisation.as_bag().unwrap();
    println!("organisation view has {} departments; first department:", departments.len());
    println!("  {}\n", departments[0]);

    // Q6 = the outliers query of Section 3: poor/rich employees with their
    // tasks, and client contacts with the task "buy".
    let q6 = datagen::queries::q6();
    let outliers = run(&q6, &schema, &engine).unwrap();
    println!("outliers-and-clients view (Q6):");
    for dept in outliers.as_bag().unwrap().iter().take(3) {
        println!("  {}", dept);
    }

    // Both agree with direct nested evaluation.
    assert!(organisation.multiset_eq(&eval_nested(&q_org, &db).unwrap()));
    assert!(outliers.multiset_eq(&eval_nested(&q6, &db).unwrap()));
    println!("\nboth queries agree with the nested reference semantics ✓");
}
