//! The three indexing schemes of Section 6 — canonical, natural and flat —
//! evaluated with the in-memory shredded-semantics backend, plus the
//! Appendix A demonstration of why Van den Bussche's simulation does not
//! work for bags.
//!
//! ```sh
//! cargo run --example indexing_schemes
//! ```

use baselines::vandenbussche as vdb;
use query_shredding::prelude::*;

fn main() {
    let db = generate(&OrgConfig::small());
    let q4 = datagen::queries::q4();
    let oracle = Shredder::builder()
        .database(db.clone())
        .backend(Box::new(NestedOracleBackend))
        .build()
        .unwrap();
    let reference = oracle.run(&q4).unwrap();

    println!("Q4 (departments with their employees) under the three indexing schemes:\n");
    for scheme in IndexScheme::ALL {
        let session = Shredder::builder()
            .database(db.clone())
            .backend(Box::new(ShreddedMemoryBackend))
            .index_scheme(scheme)
            .build()
            .unwrap();
        let value = session.run(&q4).unwrap();
        let agrees = value.multiset_eq(&reference);
        println!(
            "  {:<10} → {} rows at the top level, agrees with N⟦Q4⟧: {}",
            scheme.to_string(),
            value.as_bag().unwrap().len(),
            agrees
        );
        assert!(agrees);
    }

    println!("\nAppendix A: Van den Bussche's simulation on a multiset union R ⊎ S\n");
    println!(
        "{:<22} {:>6} {:>16} {:>12} {:>9}",
        "instance", "adom", "correct tuples", "vdb tuples", "blow-up"
    );
    let (r, s) = vdb::appendix_a_instance();
    let report = vdb::measure_blowup(&r, &s);
    println!(
        "{:<22} {:>6} {:>16} {:>12} {:>9.1}",
        "paper example",
        report.adom_size,
        report.correct_tuples,
        report.vdb_tuples,
        report.blowup_factor
    );
    for n in [4usize, 16, 64] {
        let (r, s) = vdb::scaled_instance(n, 2);
        let report = vdb::measure_blowup(&r, &s);
        println!(
            "{:<22} {:>6} {:>16} {:>12} {:>9.1}",
            format!("{} rows × 2 elems", n),
            report.adom_size,
            report.correct_tuples,
            report.vdb_tuples,
            report.blowup_factor
        );
    }
    println!("\nShredding keeps the representation linear and preserves multiplicities;");
    println!("the simulation grows quadratically with the active domain and does not.");
}
