//! Quickstart: open a `Shredder` session, prepare a nested query, inspect
//! its plan, execute it and compare against direct nested evaluation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use query_shredding::prelude::*;

fn main() {
    // 1. A flat schema and a small database (the paper's Figure 3, abridged).
    let schema = organisation_schema();
    let mut db = Database::new(schema.clone());
    for (id, name) in [
        (1, "Product"),
        (2, "Quality"),
        (3, "Research"),
        (4, "Sales"),
    ] {
        db.insert_row(
            "departments",
            vec![("id", Value::Int(id)), ("name", Value::string(name))],
        )
        .unwrap();
    }
    for (id, dept, name, salary) in [
        (1, "Product", "Alex", 20000),
        (2, "Product", "Bert", 900),
        (3, "Research", "Cora", 50000),
        (4, "Sales", "Erik", 2000000),
    ] {
        db.insert_row(
            "employees",
            vec![
                ("id", Value::Int(id)),
                ("dept", Value::string(dept)),
                ("name", Value::string(name)),
                ("salary", Value::Int(salary)),
            ],
        )
        .unwrap();
    }

    // 2. A query with a *nested* result: every department together with the
    //    bag of its employees. Plain SQL cannot return this shape.
    let query = for_in(
        "d",
        table("departments"),
        singleton(record(vec![
            ("department", project(var("d"), "name")),
            (
                "staff",
                for_where(
                    "e",
                    table("employees"),
                    eq(project(var("e"), "dept"), project(var("d"), "name")),
                    singleton(project(var("e"), "name")),
                ),
            ),
        ])),
    );

    // 3. Open a session over the database. The default backend shreds to SQL
    //    and executes on the in-memory engine.
    let session = Shredder::builder()
        .database(db)
        .build()
        .expect("the session configuration is valid");

    // 4. Prepare: the query compiles to nesting-degree-many flat SQL queries.
    //    `explain()` shows each stage's SQL and column layout.
    let prepared = session.prepare(&query).expect("the query compiles");
    println!(
        "nesting degree / number of SQL queries: {}\n",
        prepared.query_count()
    );
    println!("{}", prepared.explain());

    // 5. Execute on the in-memory SQL engine and stitch the results.
    let shredded_result = session.execute(&prepared).expect("shredding pipeline runs");
    println!("stitched result:\n  {}\n", shredded_result);

    // 6. Compare with evaluating the nested query directly (Theorem 4).
    let reference = session.oracle(&query).expect("nested evaluation succeeds");
    assert!(shredded_result.multiset_eq(&reference));
    println!("shredded result ≡ direct nested evaluation ✓");

    // 7. Preparing the same query again skips recompilation entirely.
    let again = session.prepare(&query).unwrap();
    let stats = session.cache_stats();
    println!(
        "second prepare served from the plan cache: {} (hits={}, misses={})",
        again.from_cache(),
        stats.hits,
        stats.misses
    );

    // 8. Parameterized prepared queries: declare typed bind variables with
    //    `string_param` / `int_param`, prepare once, then re-execute with
    //    different bindings — zero parsing, shredding, SQL generation or
    //    planning per execution.
    let by_dept = for_where(
        "e",
        table("employees"),
        eq(project(var("e"), "dept"), string_param("dpt")),
        singleton(project(var("e"), "name")),
    );
    let prepared = session.prepare(&by_dept).expect("the query compiles");
    println!(
        "\nparameterized query declares: {:?}",
        prepared
            .params()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    for dept in ["Product", "Research"] {
        let names = session
            .execute_bound(&prepared, &Params::new().bind("dpt", dept))
            .expect("bound execution runs");
        println!("employees of {}: {}", dept, names);
    }
}
