//! # analysis — static verification and structured diagnostics
//!
//! The shredding pipeline moves a query through five hand-written IRs
//! (λNRC term → normal form → shredded package → let-inserted SQL AST →
//! physical plan → columnar layout). Each hop relies on invariants — arities
//! line up, column positions resolve, join keys agree in type, param slots
//! are declared — that, unchecked, only surface as a wrong answer or a panic
//! deep inside the vectorized executor. This crate makes those invariants
//! *statically checkable* at prepare time:
//!
//! * [`lint`] — a lint pass over λNRC [`nrc::term::Term`]s: shadowed and
//!   unused `let` bindings, dead comprehension generators, constant-foldable
//!   conditionals and parameters declared but never used;
//! * [`plan_check`] — a bottom-up validator for
//!   [`sqlengine::plan::PhysicalPlan`] trees: positional column resolution
//!   against `output_columns()`, typed-column inference over `VExpr`, join
//!   key agreement, param-slot consistency and CTE/outer scope
//!   well-formedness.
//!
//! The shredded-package checker (which needs the `shredding` crate's
//! `Package`/`QueryStage` types) lives in `shredding::verify` and shares the
//! [`Diagnostic`] model defined here. Every check reports through the same
//! structured [`Diagnostic`] type, carrying a stable code from the
//! [`codes`] registry, so callers can gate on severity and tests can assert
//! exact codes.

#![forbid(unsafe_code)]

pub mod lint;
pub mod plan_check;

use std::fmt;

/// How serious a diagnostic is. `Error` means the artifact violates an
/// invariant the pipeline relies on; executing it may panic or produce a
/// wrong answer. `Warning` flags suspicious-but-sound constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which pipeline IR a diagnostic is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The source λNRC term.
    Term,
    /// The shredded package (stages, layouts, index tree).
    Package,
    /// A physical plan tree.
    Plan,
    /// The result decode/stitch path (runtime counterpart codes).
    Decode,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Term => write!(f, "term"),
            Stage::Package => write!(f, "package"),
            Stage::Plan => write!(f, "plan"),
            Stage::Decode => write!(f, "decode"),
        }
    }
}

/// One finding of a verification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// The IR the finding is about.
    pub stage: Stage,
    /// A stable code from the [`codes`] registry (e.g. `"P004"`).
    pub code: &'static str,
    /// Where in the artifact the finding points: a term path, a stage path
    /// of the result type, or a plan-node breadcrumb.
    pub path: String,
    /// What is wrong.
    pub message: String,
    /// How to fix or interpret it, when there is something useful to say.
    pub help: Option<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(
        stage: Stage,
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            stage,
            code,
            path: path.into(),
            message: message.into(),
            help: None,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(
        stage: Stage,
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            stage,
            code,
            path: path.into(),
            message: message.into(),
            help: None,
        }
    }

    /// Attach a help note.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.code, self.path, self.message
        )?;
        if let Some(help) = &self.help {
            write!(f, " (help: {})", help)?;
        }
        Ok(())
    }
}

/// An ordered collection of [`Diagnostic`]s with severity accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Wrap an existing list.
    pub fn from_vec(items: Vec<Diagnostic>) -> Diagnostics {
        Diagnostics { items }
    }

    /// Add one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Add many diagnostics.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.items.extend(ds);
    }

    /// All diagnostics, in the order the checks reported them.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the collection empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Does the collection contain any error-severity diagnostic?
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// The first error-severity diagnostic, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.items.iter().find(|d| d.severity == Severity::Error)
    }

    /// Does the collection contain a diagnostic with the given code?
    pub fn has_code(&self, code: &str) -> bool {
        self.items.iter().any(|d| d.code == code)
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}", d)?;
        }
        Ok(())
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// The diagnostic code registry. Codes are stable: tests assert them, the
/// DESIGN.md catalogue documents them, and `ShredError` variants carry them.
///
/// * `L…` — λNRC term lints (warnings).
/// * `S…` — shredded-package invariants (errors).
/// * `P…` — physical-plan invariants (errors).
/// * `O…` — logical-optimizer findings (warnings).
/// * `D…` — decode/stitch runtime invariants (errors, raised as
///   `ShredError::Decode { code, .. }`).
pub mod codes {
    /// A binder shadows an in-scope binding of the same name.
    pub const SHADOWED_BINDING: &str = "L001";
    /// A `let`/λ binder is never used in its body.
    pub const UNUSED_BINDING: &str = "L002";
    /// A comprehension generator's variable is never used in the body
    /// (the generator still multiplies cardinality, so this is a warning,
    /// not a rewrite).
    pub const DEAD_GENERATOR: &str = "L003";
    /// An `if` condition is a boolean constant; the conditional folds.
    pub const CONSTANT_CONDITIONAL: &str = "L004";
    /// A parameter is declared but never used in the term.
    pub const UNUSED_PARAM: &str = "L005";

    /// A stage layout's first two columns are not `(oidx_tag, oidx_ord)`.
    pub const MISSING_INDEX_COLUMNS: &str = "S001";
    /// A stage's physical plan emits different columns than its layout.
    pub const STAGE_COLUMN_MISMATCH: &str = "S002";
    /// A stage layout's `Index` leaves do not match the package's child
    /// bags (the leaf→column map and the package tree disagree).
    pub const PACKAGE_SHAPE_MISMATCH: &str = "S003";
    /// Two branches of one shredded stage share a static index tag, so
    /// `(oidx_tag, oidx_ord)` keys cannot be unique.
    pub const DUPLICATE_BRANCH_TAG: &str = "S004";
    /// A child stage keys its rows by an outer tag its parent stage never
    /// produces — the parent/child index references do not form a tree.
    pub const BROKEN_INDEX_TREE: &str = "S005";

    /// A positional column reference is out of range for its input.
    pub const COL_OUT_OF_RANGE: &str = "P001";
    /// A positional column reference resolves to a differently named column.
    pub const COL_NAME_MISMATCH: &str = "P002";
    /// A hash join's left and right key lists differ in length.
    pub const JOIN_KEY_ARITY: &str = "P003";
    /// A hash join key pair disagrees in inferred type.
    pub const JOIN_KEY_TYPE_MISMATCH: &str = "P004";
    /// A param slot is not among the query's declared parameters.
    pub const UNDECLARED_PARAM_SLOT: &str = "P005";
    /// A `CteScan` references a name with no enclosing `With`.
    pub const UNKNOWN_CTE: &str = "P006";
    /// An outer column reference has no enclosing scope that binds it.
    pub const UNRESOLVED_OUTER_REF: &str = "P007";
    /// A projection's expression list and column list differ in length.
    pub const PROJECTION_ARITY: &str = "P008";
    /// `UNION ALL` / `EXCEPT ALL` inputs differ in column count.
    pub const UNION_ARITY: &str = "P009";
    /// An expression's operand types do not fit its operator.
    pub const EXPR_TYPE_MISMATCH: &str = "P010";
    /// A table scan references a table the catalog does not know.
    pub const UNKNOWN_TABLE: &str = "P011";
    /// A scan's recorded columns disagree with the catalog/CTE definition.
    pub const SCAN_COLUMN_MISMATCH: &str = "P012";

    /// A result's column count disagrees with the stage layout.
    pub const DECODE_COLUMN_COUNT: &str = "D001";
    /// A row ended before the layout's leaves were consumed.
    pub const DECODE_ROW_SHORT: &str = "D002";
    /// A cell's runtime type disagrees with the layout leaf's type.
    pub const DECODE_TYPE_MISMATCH: &str = "D003";
    /// An index column position is out of range for the stage.
    pub const DECODE_INDEX_RANGE: &str = "D004";
    /// A shredded row lacks a field the package shape requires.
    pub const DECODE_MISSING_FIELD: &str = "D005";
    /// A decoded value does not match the package shape.
    pub const DECODE_SHAPE_MISMATCH: &str = "D006";

    /// A plan retains a correlated subquery the decorrelator could not
    /// rewrite into a hash semi/anti join; the reason is in the
    /// diagnostic's `help`.
    pub const RETAINED_CORRELATED_SUBQUERY: &str = "O001";

    /// One line of documentation per registered code.
    pub const ALL: &[(&str, &str)] = &[
        (SHADOWED_BINDING, "binder shadows an in-scope binding"),
        (UNUSED_BINDING, "let/λ binder never used in its body"),
        (
            DEAD_GENERATOR,
            "comprehension generator variable never used",
        ),
        (CONSTANT_CONDITIONAL, "if-condition is a boolean constant"),
        (UNUSED_PARAM, "parameter declared but never used"),
        (
            MISSING_INDEX_COLUMNS,
            "stage layout lacks leading (oidx_tag, oidx_ord) columns",
        ),
        (
            STAGE_COLUMN_MISMATCH,
            "stage plan columns disagree with the stage layout",
        ),
        (
            PACKAGE_SHAPE_MISMATCH,
            "layout Index leaves disagree with the package's child bags",
        ),
        (
            DUPLICATE_BRANCH_TAG,
            "two branches of a stage share a static index tag",
        ),
        (
            BROKEN_INDEX_TREE,
            "child stage keyed by an outer tag the parent never produces",
        ),
        (COL_OUT_OF_RANGE, "positional column reference out of range"),
        (
            COL_NAME_MISMATCH,
            "positional column reference resolves to a different name",
        ),
        (JOIN_KEY_ARITY, "hash join key lists differ in length"),
        (
            JOIN_KEY_TYPE_MISMATCH,
            "hash join key pair disagrees in type",
        ),
        (
            UNDECLARED_PARAM_SLOT,
            "param slot not among the declared parameters",
        ),
        (
            UNKNOWN_CTE,
            "CteScan references a name with no enclosing With",
        ),
        (
            UNRESOLVED_OUTER_REF,
            "outer reference not bound by any enclosing scope",
        ),
        (
            PROJECTION_ARITY,
            "projection expressions and columns differ in length",
        ),
        (UNION_ARITY, "set-operation inputs differ in column count"),
        (EXPR_TYPE_MISMATCH, "operand types do not fit the operator"),
        (UNKNOWN_TABLE, "table scan references an unknown table"),
        (
            SCAN_COLUMN_MISMATCH,
            "scan columns disagree with the catalog definition",
        ),
        (
            DECODE_COLUMN_COUNT,
            "result column count disagrees with the layout",
        ),
        (DECODE_ROW_SHORT, "row ended before the layout was consumed"),
        (
            DECODE_TYPE_MISMATCH,
            "cell type disagrees with the layout leaf",
        ),
        (DECODE_INDEX_RANGE, "index column position out of range"),
        (DECODE_MISSING_FIELD, "shredded row lacks a required field"),
        (
            DECODE_SHAPE_MISMATCH,
            "decoded value does not match the package shape",
        ),
        (
            RETAINED_CORRELATED_SUBQUERY,
            "correlated subquery the decorrelator could not rewrite",
        ),
    ];

    /// The registry line for a code, if registered.
    pub fn describe(code: &str) -> Option<&'static str> {
        ALL.iter().find(|(c, _)| *c == code).map(|(_, d)| *d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn diagnostics_count_by_severity() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning(
            Stage::Term,
            codes::UNUSED_BINDING,
            "x",
            "m",
        ));
        ds.push(Diagnostic::error(
            Stage::Plan,
            codes::COL_OUT_OF_RANGE,
            "p",
            "m",
        ));
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.error_count(), 1);
        assert_eq!(ds.warning_count(), 1);
        assert!(ds.has_errors());
        assert!(ds.has_code(codes::COL_OUT_OF_RANGE));
        assert_eq!(ds.first_error().unwrap().code, codes::COL_OUT_OF_RANGE);
    }

    #[test]
    fn every_code_is_registered_exactly_once() {
        let mut seen = std::collections::HashSet::new();
        for (code, _) in codes::ALL {
            assert!(seen.insert(*code), "code {} registered twice", code);
        }
        assert!(codes::describe(codes::JOIN_KEY_TYPE_MISMATCH).is_some());
        assert!(codes::describe("Z999").is_none());
    }

    #[test]
    fn display_includes_code_and_path() {
        let d = Diagnostic::error(
            Stage::Plan,
            codes::COL_OUT_OF_RANGE,
            "Project/Filter",
            "boom",
        )
        .with_help("check the input arity");
        let rendered = d.to_string();
        assert!(rendered.contains("P001"));
        assert!(rendered.contains("Project/Filter"));
        assert!(rendered.contains("help"));
    }
}
