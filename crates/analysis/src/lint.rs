//! A lint pass over λNRC terms.
//!
//! The linter walks a [`Term`] with an explicit scope stack (the same shape
//! as the typechecker's `Context`, minus the types) and reports
//! warning-severity diagnostics for constructs that are well-typed but
//! suspicious:
//!
//! * **[`codes::SHADOWED_BINDING`]** — a `λ`, `let` (encoded as
//!   `(λx.M) N`) or `for` binder rebinds a name already in scope;
//! * **[`codes::UNUSED_BINDING`]** — a `let`/λ binder never occurs free in
//!   its body;
//! * **[`codes::DEAD_GENERATOR`]** — a comprehension variable never occurs
//!   free in the body (the generator still multiplies cardinality under bag
//!   semantics, so this is a lint, not a rewrite);
//! * **[`codes::CONSTANT_CONDITIONAL`]** — an `if` whose condition is a
//!   boolean constant;
//! * **[`codes::UNUSED_PARAM`]** — a declared parameter the term never
//!   mentions.

use crate::{codes, Diagnostic, Stage};
use nrc::term::{Constant, Term};

/// Lint a λNRC term. `declared_params` is the full list of parameter names
/// the caller declares for the query (a parameter *occurring* in the term is
/// definitionally used, so unused-parameter detection needs the declared
/// list from outside — e.g. `PreparedQuery::params()`).
pub fn lint_term(term: &Term, declared_params: &[String]) -> Vec<Diagnostic> {
    let mut linter = Linter {
        out: Vec::new(),
        scope: Vec::new(),
    };
    linter.walk(term, "query");
    let used: Vec<String> = term.params().into_iter().map(|(n, _)| n).collect();
    for name in declared_params {
        if !used.contains(name) {
            linter.out.push(
                Diagnostic::warning(
                    Stage::Term,
                    codes::UNUSED_PARAM,
                    "query",
                    format!("parameter ?{} is declared but never used", name),
                )
                .with_help("drop the declaration or reference the parameter in the query"),
            );
        }
    }
    linter.out
}

struct Linter {
    out: Vec<Diagnostic>,
    scope: Vec<String>,
}

impl Linter {
    fn check_binder(&mut self, kind: &str, x: &str, body: &Term, path: &str) {
        if self.scope.iter().any(|s| s == x) {
            self.out.push(
                Diagnostic::warning(
                    Stage::Term,
                    codes::SHADOWED_BINDING,
                    path.to_string(),
                    format!(
                        "{} binder {} shadows an enclosing binding of {}",
                        kind, x, x
                    ),
                )
                .with_help("rename the inner binder to keep the scopes distinct"),
            );
        }
        let unused = !body.free_vars().iter().any(|v| v == x);
        if unused {
            let (code, message, help) =
                if kind == "for" {
                    (
                    codes::DEAD_GENERATOR,
                    format!("generator variable {} is never used in the comprehension body", x),
                    "the generator still multiplies cardinality; if that is unintended, drop it",
                )
                } else {
                    (
                        codes::UNUSED_BINDING,
                        format!("{} binding {} is never used in its body", kind, x),
                        "remove the binding or use the bound value",
                    )
                };
            self.out.push(
                Diagnostic::warning(Stage::Term, code, path.to_string(), message).with_help(help),
            );
        }
    }

    fn walk(&mut self, term: &Term, path: &str) {
        match term {
            Term::Var(_)
            | Term::Const(_)
            | Term::Param(_, _)
            | Term::Table(_)
            | Term::EmptyBag(_) => {}
            Term::PrimApp(_, args) => {
                for (i, a) in args.iter().enumerate() {
                    self.walk(a, &format!("{}.arg{}", path, i));
                }
            }
            Term::If(c, t, e) => {
                if let Term::Const(Constant::Bool(b)) = c.as_ref() {
                    self.out.push(
                        Diagnostic::warning(
                            Stage::Term,
                            codes::CONSTANT_CONDITIONAL,
                            format!("{}.if", path),
                            format!("condition is constant {}; the conditional folds", b),
                        )
                        .with_help(if *b {
                            "only the then-branch is reachable"
                        } else {
                            "only the else-branch is reachable"
                        }),
                    );
                }
                self.walk(c, &format!("{}.if.cond", path));
                self.walk(t, &format!("{}.if.then", path));
                self.walk(e, &format!("{}.if.else", path));
            }
            // `let x = N in M`, encoded as `(λx.M) N`.
            Term::App(f, a) if matches!(f.as_ref(), Term::Lam(_, _)) => {
                let Term::Lam(x, body) = f.as_ref() else {
                    unreachable!()
                };
                let let_path = format!("{}.let({})", path, x);
                self.check_binder("let", x, body, &let_path);
                self.walk(a, &format!("{}.value", let_path));
                self.scope.push(x.clone());
                self.walk(body, &format!("{}.body", let_path));
                self.scope.pop();
            }
            Term::Lam(x, body) => {
                let lam_path = format!("{}.lam({})", path, x);
                self.check_binder("λ", x, body, &lam_path);
                self.scope.push(x.clone());
                self.walk(body, &format!("{}.body", lam_path));
                self.scope.pop();
            }
            Term::App(f, a) => {
                self.walk(f, &format!("{}.fun", path));
                self.walk(a, &format!("{}.arg", path));
            }
            Term::Record(fields) => {
                for (l, t) in fields {
                    self.walk(t, &format!("{}.{}", path, l));
                }
            }
            Term::Project(t, l) => self.walk(t, &format!("{}.{}", path, l)),
            Term::Empty(t) => self.walk(t, &format!("{}.empty", path)),
            Term::Singleton(t) => self.walk(t, &format!("{}.singleton", path)),
            Term::Union(l, r) => {
                self.walk(l, &format!("{}.union.left", path));
                self.walk(r, &format!("{}.union.right", path));
            }
            Term::For(x, source, body) => {
                let for_path = format!("{}.for({})", path, x);
                self.check_binder("for", x, body, &for_path);
                self.walk(source, &format!("{}.source", for_path));
                self.scope.push(x.clone());
                self.walk(body, &format!("{}.body", for_path));
                self.scope.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrc::builder::*;

    fn codes_of(term: &Term) -> Vec<&'static str> {
        lint_term(term, &[]).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_queries_lint_clean() {
        let q = for_where(
            "e",
            table("employees"),
            gt(project(var("e"), "salary"), int(1000)),
            singleton(project(var("e"), "name")),
        );
        assert!(codes_of(&q).is_empty());
    }

    #[test]
    fn shadowed_for_binders_are_reported() {
        let q = for_in(
            "x",
            table("employees"),
            for_in(
                "x",
                table("employees"),
                singleton(project(var("x"), "name")),
            ),
        );
        assert!(codes_of(&q).contains(&codes::SHADOWED_BINDING));
    }

    #[test]
    fn dead_generators_are_reported() {
        let q = for_in("x", table("employees"), singleton(int(1)));
        assert_eq!(codes_of(&q), vec![codes::DEAD_GENERATOR]);
    }

    #[test]
    fn unused_let_bindings_are_reported() {
        // let y = 1 in for x in employees … — y never used.
        let q = app(
            lam(
                "y",
                for_in(
                    "x",
                    table("employees"),
                    singleton(project(var("x"), "name")),
                ),
            ),
            int(1),
        );
        assert!(codes_of(&q).contains(&codes::UNUSED_BINDING));
    }

    #[test]
    fn constant_conditionals_are_reported() {
        let q = for_in(
            "x",
            table("employees"),
            if_then_else(
                boolean(true),
                singleton(project(var("x"), "name")),
                empty_bag(),
            ),
        );
        assert!(codes_of(&q).contains(&codes::CONSTANT_CONDITIONAL));
    }

    #[test]
    fn unused_declared_params_are_reported() {
        let q = for_in(
            "x",
            table("employees"),
            singleton(project(var("x"), "name")),
        );
        let ds = lint_term(&q, &["cutoff".to_string()]);
        assert!(ds.iter().any(|d| d.code == codes::UNUSED_PARAM));
        // A used parameter is not reported.
        let q2 = for_where(
            "x",
            table("employees"),
            gt(project(var("x"), "salary"), int_param("cutoff")),
            singleton(project(var("x"), "name")),
        );
        let ds2 = lint_term(&q2, &["cutoff".to_string()]);
        assert!(!ds2.iter().any(|d| d.code == codes::UNUSED_PARAM));
    }
}
