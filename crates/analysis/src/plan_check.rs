//! A bottom-up validator for [`PhysicalPlan`] trees.
//!
//! The planner resolves column references to **positions** in the input
//! batch at plan time; the vectorized executor then indexes batches blindly.
//! This validator re-derives every node's output schema (names *and*
//! inferred column types) bottom-up and checks the invariants the executor
//! relies on:
//!
//! * every [`VExpr::Col`] index is in range for its input and resolves to
//!   the column name recorded at plan time
//!   ([`codes::COL_OUT_OF_RANGE`], [`codes::COL_NAME_MISMATCH`]);
//! * hash-join key lists pair up and agree in inferred type
//!   ([`codes::JOIN_KEY_ARITY`], [`codes::JOIN_KEY_TYPE_MISMATCH`]);
//! * every [`VExpr::Param`] slot names a declared parameter
//!   ([`codes::UNDECLARED_PARAM_SLOT`]);
//! * `CteScan` names are bound by an enclosing `With`, and outer column
//!   references are bound by an enclosing scope frame
//!   ([`codes::UNKNOWN_CTE`], [`codes::UNRESOLVED_OUTER_REF`]);
//! * projection and set-operation arities line up
//!   ([`codes::PROJECTION_ARITY`], [`codes::UNION_ARITY`]);
//! * operator operand types fit ([`codes::EXPR_TYPE_MISMATCH`]), with
//!   `NULL` and param slots typed as ⊤ (compatible with everything).
//!
//! All of these invariants are **cardinality-independent**: they constrain
//! schemas, positions and types, never row counts. A plan the validator
//! accepts is therefore equally sound when the executor feeds operators
//! bounded morsels instead of whole batches — each morsel carries the same
//! schema as the full input, so nothing here needs re-checking per morsel
//! or per worker. Pipeline breakers (see
//! [`PhysicalPlan::is_pipeline_breaker`]) differ from streaming operators
//! only in *when* they may emit, which is likewise invisible to these
//! checks.

use crate::{codes, Diagnostic, Stage};
use sqlengine::ast::BinOp;
use sqlengine::plan::{PhysicalPlan, VExpr};
use sqlengine::storage::{ColumnType, TableDef};
use sqlengine::value::SqlValue;

/// The inferred type of a column or scalar expression. `Unknown` is ⊤:
/// params, `NULL` literals and columns of unknown relations are compatible
/// with everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColTy {
    Int,
    Bool,
    Text,
    Unknown,
}

impl ColTy {
    fn of_column_type(t: ColumnType) -> ColTy {
        match t {
            ColumnType::Int => ColTy::Int,
            ColumnType::Bool => ColTy::Bool,
            ColumnType::Text => ColTy::Text,
        }
    }

    fn of_value(v: &SqlValue) -> ColTy {
        match v {
            SqlValue::Null => ColTy::Unknown,
            SqlValue::Bool(_) => ColTy::Bool,
            SqlValue::Int(_) => ColTy::Int,
            SqlValue::Str(_) => ColTy::Text,
        }
    }

    fn compatible(self, other: ColTy) -> bool {
        self == ColTy::Unknown || other == ColTy::Unknown || self == other
    }

    fn name(self) -> &'static str {
        match self {
            ColTy::Int => "int",
            ColTy::Bool => "bool",
            ColTy::Text => "text",
            ColTy::Unknown => "unknown",
        }
    }
}

/// One column of a derived schema: its name and inferred type.
type Col = (String, ColTy);

/// Validate a physical plan against the table catalog it was planned from
/// and the query's declared parameter names. Returns every finding; callers
/// gate on [`crate::Severity::Error`].
pub fn validate_plan(
    plan: &PhysicalPlan,
    catalog: &[TableDef],
    declared_params: &[String],
) -> Vec<Diagnostic> {
    let mut checker = Checker {
        catalog,
        declared_params,
        ctes: Vec::new(),
        outer: Vec::new(),
        out: Vec::new(),
    };
    checker.check(plan, "plan");
    checker.out
}

struct Checker<'a> {
    catalog: &'a [TableDef],
    declared_params: &'a [String],
    /// `With` bindings in scope, innermost last.
    ctes: Vec<(String, Vec<Col>)>,
    /// Enclosing-query schemas for correlated references, innermost last.
    outer: Vec<Vec<Col>>,
    out: Vec<Diagnostic>,
}

impl Checker<'_> {
    fn error(&mut self, code: &'static str, path: &str, message: String) {
        self.out.push(Diagnostic::error(
            Stage::Plan,
            code,
            path.to_string(),
            message,
        ));
    }

    /// Derive the node's output schema bottom-up, reporting violations along
    /// the way. The returned schema always matches `output_columns()` in
    /// names so downstream checks stay meaningful after an upstream error.
    fn check(&mut self, plan: &PhysicalPlan, path: &str) -> Vec<Col> {
        match plan {
            PhysicalPlan::UnitRow => Vec::new(),
            PhysicalPlan::TableScan { table, columns, .. } => {
                match self.catalog.iter().find(|d| &d.name == table) {
                    None => {
                        self.error(
                            codes::UNKNOWN_TABLE,
                            path,
                            format!("table scan references unknown table {}", table),
                        );
                        columns
                            .iter()
                            .map(|c| (c.clone(), ColTy::Unknown))
                            .collect()
                    }
                    Some(def) => {
                        let def_names: Vec<&String> = def.columns.iter().map(|(c, _)| c).collect();
                        if !columns.iter().eq(def_names.iter().copied()) {
                            self.error(
                                codes::SCAN_COLUMN_MISMATCH,
                                path,
                                format!(
                                    "scan of {} records columns [{}] but the catalog defines [{}]",
                                    table,
                                    columns.join(", "),
                                    def.column_names().join(", ")
                                ),
                            );
                        }
                        def.columns
                            .iter()
                            .map(|(c, t)| (c.clone(), ColTy::of_column_type(*t)))
                            .collect()
                    }
                }
            }
            PhysicalPlan::CteScan { name, columns, .. } => {
                let binding = self
                    .ctes
                    .iter()
                    .rev()
                    .find(|(n, _)| n == name)
                    .map(|(_, s)| s.clone());
                match binding {
                    None => {
                        self.error(
                            codes::UNKNOWN_CTE,
                            path,
                            format!("CteScan references {} with no enclosing With", name),
                        );
                        columns
                            .iter()
                            .map(|c| (c.clone(), ColTy::Unknown))
                            .collect()
                    }
                    Some(def_schema) => {
                        let def_names: Vec<&String> = def_schema.iter().map(|(c, _)| c).collect();
                        if !columns.iter().eq(def_names.iter().copied()) {
                            self.error(
                                codes::SCAN_COLUMN_MISMATCH,
                                path,
                                format!(
                                    "CteScan of {} records columns [{}] but the definition \
                                     produces [{}]",
                                    name,
                                    columns.join(", "),
                                    def_names
                                        .iter()
                                        .map(|s| s.as_str())
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                ),
                            );
                        }
                        def_schema
                    }
                }
            }
            PhysicalPlan::SubqueryScan { input, .. } => {
                self.check(input, &format!("{}/subquery", path))
            }
            PhysicalPlan::NestedLoopJoin { left, right } => {
                let mut schema = self.check(left, &format!("{}/nl-join.left", path));
                schema.extend(self.check(right, &format!("{}/nl-join.right", path)));
                schema
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                ..
            } => {
                let left_schema = self.check(left, &format!("{}/hash-join.left", path));
                let right_schema = self.check(right, &format!("{}/hash-join.right", path));
                if left_keys.len() != right_keys.len() {
                    self.error(
                        codes::JOIN_KEY_ARITY,
                        path,
                        format!(
                            "hash join has {} left keys but {} right keys",
                            left_keys.len(),
                            right_keys.len()
                        ),
                    );
                }
                for (i, (lk, rk)) in left_keys.iter().zip(right_keys).enumerate() {
                    let key_path = format!("{}/hash-join.key{}", path, i);
                    let lt = self.check_expr(lk, &left_schema, &key_path);
                    let rt = self.check_expr(rk, &right_schema, &key_path);
                    if !lt.compatible(rt) {
                        self.error(
                            codes::JOIN_KEY_TYPE_MISMATCH,
                            &key_path,
                            format!(
                                "join key pair {} = {} disagrees in type: {} vs {}",
                                lk,
                                rk,
                                lt.name(),
                                rt.name()
                            ),
                        );
                    }
                }
                let mut schema = left_schema;
                schema.extend(right_schema);
                schema
            }
            PhysicalPlan::Filter { input, predicate } => {
                let schema = self.check(input, &format!("{}/filter.input", path));
                let ty = self.check_expr(predicate, &schema, &format!("{}/filter", path));
                if !ty.compatible(ColTy::Bool) {
                    self.error(
                        codes::EXPR_TYPE_MISMATCH,
                        path,
                        format!(
                            "filter predicate {} has type {}, not bool",
                            predicate,
                            ty.name()
                        ),
                    );
                }
                schema
            }
            PhysicalPlan::ExistsSemiJoin { input, subplan, .. } => {
                let schema = self.check(input, &format!("{}/semi-join.input", path));
                self.outer.push(schema.clone());
                self.check(subplan, &format!("{}/semi-join.subplan", path));
                self.outer.pop();
                schema
            }
            PhysicalPlan::HashSemiJoin {
                input,
                build,
                probe_keys,
                build_keys,
                ..
            } => {
                let schema = self.check(input, &format!("{}/hash-semi-join.input", path));
                // The build side is uncorrelated by construction: it is
                // checked under the *enclosing* scopes, without the input's
                // frame — a leaked correlated reference surfaces as
                // UNRESOLVED_OUTER_REF here.
                let build_schema = self.check(build, &format!("{}/hash-semi-join.build", path));
                if probe_keys.len() != build_keys.len() {
                    self.error(
                        codes::JOIN_KEY_ARITY,
                        path,
                        format!(
                            "hash semi join has {} probe keys but {} build keys",
                            probe_keys.len(),
                            build_keys.len()
                        ),
                    );
                }
                for (i, (pk, bk)) in probe_keys.iter().zip(build_keys).enumerate() {
                    let key_path = format!("{}/hash-semi-join.key{}", path, i);
                    let pt = self.check_expr(pk, &schema, &key_path);
                    let bt = self.check_expr(bk, &build_schema, &key_path);
                    if !pt.compatible(bt) {
                        self.error(
                            codes::JOIN_KEY_TYPE_MISMATCH,
                            &key_path,
                            format!(
                                "semi-join key pair {} = {} disagrees in type: {} vs {}",
                                pk,
                                bk,
                                pt.name(),
                                bt.name()
                            ),
                        );
                    }
                }
                schema
            }
            PhysicalPlan::RowNumber { input, specs } => {
                let mut schema = self.check(input, &format!("{}/row-number.input", path));
                for (i, keys) in specs.iter().enumerate() {
                    for key in keys {
                        self.check_expr(key, &schema, &format!("{}/row-number.spec{}", path, i));
                    }
                }
                schema.extend((0..specs.len()).map(|i| (format!("#rn{}", i), ColTy::Int)));
                schema
            }
            PhysicalPlan::Sort { input, keys } => {
                let schema = self.check(input, &format!("{}/sort.input", path));
                for key in keys {
                    self.check_expr(key, &schema, &format!("{}/sort", path));
                }
                schema
            }
            PhysicalPlan::Project {
                input,
                exprs,
                columns,
            } => {
                let input_schema = self.check(input, &format!("{}/project.input", path));
                if exprs.len() != columns.len() {
                    self.error(
                        codes::PROJECTION_ARITY,
                        path,
                        format!(
                            "projection evaluates {} expressions but names {} columns",
                            exprs.len(),
                            columns.len()
                        ),
                    );
                }
                let mut schema = Vec::with_capacity(columns.len());
                for (i, name) in columns.iter().enumerate() {
                    let ty = match exprs.get(i) {
                        Some(e) => {
                            self.check_expr(e, &input_schema, &format!("{}/project.{}", path, name))
                        }
                        None => ColTy::Unknown,
                    };
                    schema.push((name.clone(), ty));
                }
                // Extra expressions beyond the named columns still get checked.
                for e in exprs.iter().skip(columns.len()) {
                    self.check_expr(e, &input_schema, &format!("{}/project.extra", path));
                }
                schema
            }
            PhysicalPlan::Distinct { input } => self.check(input, &format!("{}/distinct", path)),
            PhysicalPlan::UnionAll(branches) => {
                let mut first: Option<Vec<Col>> = None;
                for (i, b) in branches.iter().enumerate() {
                    let schema = self.check(b, &format!("{}/union.branch{}", path, i));
                    match &first {
                        None => first = Some(schema),
                        Some(head) => {
                            if schema.len() != head.len() {
                                self.error(
                                    codes::UNION_ARITY,
                                    path,
                                    format!(
                                        "UNION ALL branch {} has {} columns but branch 0 has {}",
                                        i,
                                        schema.len(),
                                        head.len()
                                    ),
                                );
                            }
                        }
                    }
                }
                first.unwrap_or_default()
            }
            PhysicalPlan::ExceptAll { left, right } => {
                let left_schema = self.check(left, &format!("{}/except.left", path));
                let right_schema = self.check(right, &format!("{}/except.right", path));
                if left_schema.len() != right_schema.len() {
                    self.error(
                        codes::UNION_ARITY,
                        path,
                        format!(
                            "EXCEPT ALL sides differ in column count: {} vs {}",
                            left_schema.len(),
                            right_schema.len()
                        ),
                    );
                }
                left_schema
            }
            PhysicalPlan::With {
                name,
                definition,
                body,
            } => {
                let def_schema = self.check(definition, &format!("{}/with({}).def", path, name));
                self.ctes.push((name.clone(), def_schema));
                let schema = self.check(body, &format!("{}/with({}).body", path, name));
                self.ctes.pop();
                schema
            }
        }
    }

    fn check_expr(&mut self, expr: &VExpr, schema: &[Col], path: &str) -> ColTy {
        match expr {
            VExpr::Col { index, column, .. } => match schema.get(*index) {
                None => {
                    self.error(
                        codes::COL_OUT_OF_RANGE,
                        path,
                        format!(
                            "column reference {} points at position {} but the input has \
                             only {} columns",
                            column,
                            index,
                            schema.len()
                        ),
                    );
                    ColTy::Unknown
                }
                Some((name, ty)) => {
                    if name != column {
                        self.error(
                            codes::COL_NAME_MISMATCH,
                            path,
                            format!(
                                "column reference at position {} was resolved as {} but the \
                                 input names that column {}",
                                index, column, name
                            ),
                        );
                    }
                    *ty
                }
            },
            VExpr::Outer { table, column } => {
                let found = self
                    .outer
                    .iter()
                    .rev()
                    .flat_map(|frame| frame.iter())
                    .find(|(name, _)| name == column);
                match found {
                    Some((_, ty)) => *ty,
                    None => {
                        let qualifier = table
                            .as_ref()
                            .map(|t| format!("{}.", t))
                            .unwrap_or_default();
                        self.error(
                            codes::UNRESOLVED_OUTER_REF,
                            path,
                            format!(
                                "outer reference {}{} is not bound by any enclosing scope \
                                 ({} frame(s) in scope)",
                                qualifier,
                                column,
                                self.outer.len()
                            ),
                        );
                        ColTy::Unknown
                    }
                }
            }
            VExpr::Lit(v) => ColTy::of_value(v),
            VExpr::Param(name) => {
                if !self.declared_params.iter().any(|p| p == name) {
                    self.error(
                        codes::UNDECLARED_PARAM_SLOT,
                        path,
                        format!(
                            "param slot :{} is not among the declared parameters [{}]",
                            name,
                            self.declared_params.join(", ")
                        ),
                    );
                }
                ColTy::Unknown
            }
            VExpr::BinOp { op, left, right } => {
                let lt = self.check_expr(left, schema, path);
                let rt = self.check_expr(right, schema, path);
                self.check_binop(*op, lt, rt, expr, path)
            }
            VExpr::Not(inner) => {
                let ty = self.check_expr(inner, schema, path);
                if !ty.compatible(ColTy::Bool) {
                    self.error(
                        codes::EXPR_TYPE_MISMATCH,
                        path,
                        format!("NOT applied to a {} operand", ty.name()),
                    );
                }
                ColTy::Bool
            }
            VExpr::Exists(subplan) => {
                self.outer.push(schema.to_vec());
                self.check(subplan, &format!("{}/exists", path));
                self.outer.pop();
                ColTy::Bool
            }
        }
    }

    fn check_binop(&mut self, op: BinOp, lt: ColTy, rt: ColTy, expr: &VExpr, path: &str) -> ColTy {
        let mismatch = |checker: &mut Self, detail: String| {
            checker.error(codes::EXPR_TYPE_MISMATCH, path, detail);
        };
        match op {
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                if !lt.compatible(rt) {
                    mismatch(
                        self,
                        format!(
                            "comparison {} has operand types {} and {}",
                            expr,
                            lt.name(),
                            rt.name()
                        ),
                    );
                }
                ColTy::Bool
            }
            BinOp::And | BinOp::Or => {
                if !lt.compatible(ColTy::Bool) || !rt.compatible(ColTy::Bool) {
                    mismatch(
                        self,
                        format!(
                            "{} has operand types {} and {}, not bool",
                            expr,
                            lt.name(),
                            rt.name()
                        ),
                    );
                }
                ColTy::Bool
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                if !lt.compatible(ColTy::Int) || !rt.compatible(ColTy::Int) {
                    mismatch(
                        self,
                        format!(
                            "arithmetic {} has operand types {} and {}, not int",
                            expr,
                            lt.name(),
                            rt.name()
                        ),
                    );
                }
                ColTy::Int
            }
            BinOp::Concat => {
                if !lt.compatible(ColTy::Text) || !rt.compatible(ColTy::Text) {
                    mismatch(
                        self,
                        format!(
                            "concatenation {} has operand types {} and {}, not text",
                            expr,
                            lt.name(),
                            rt.name()
                        ),
                    );
                }
                ColTy::Text
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::ast::{Expr, Query, Select};
    use sqlengine::plan::plan_query;
    use sqlengine::SchemaCatalog;

    fn defs() -> Vec<TableDef> {
        vec![
            TableDef::new(
                "employees",
                vec![
                    ("id", ColumnType::Int),
                    ("dept", ColumnType::Text),
                    ("name", ColumnType::Text),
                    ("salary", ColumnType::Int),
                ],
            ),
            TableDef::new(
                "departments",
                vec![("id", ColumnType::Int), ("name", ColumnType::Text)],
            ),
        ]
    }

    fn join_plan() -> PhysicalPlan {
        let q = Query::select(
            Select::new()
                .item(Expr::col("d", "name"), "dept")
                .item(Expr::col("e", "name"), "emp")
                .from_named("departments", "d")
                .from_named("employees", "e")
                .filter(Expr::eq(Expr::col("d", "name"), Expr::col("e", "dept"))),
        );
        plan_query(&q, &SchemaCatalog::new(defs())).unwrap()
    }

    fn codes_of(plan: &PhysicalPlan) -> Vec<&'static str> {
        validate_plan(plan, &defs(), &[])
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn well_formed_plans_validate_clean() {
        assert!(codes_of(&join_plan()).is_empty());
    }

    /// The breaker classification the morsel-parallel executor relies on:
    /// exactly the operators that must see their whole input before
    /// emitting (sort, numbering, dedup, set ops) are pipeline breakers;
    /// streaming operators — including hash join, whose build side is
    /// partitioned rather than accumulated per worker — are not. The
    /// validator's checks are cardinality-independent either way, so a
    /// clean plan stays clean regardless of how it is morselised.
    #[test]
    fn pipeline_breaker_classification_is_exactly_the_blocking_operators() {
        fn scan() -> Box<PhysicalPlan> {
            Box::new(PhysicalPlan::TableScan {
                table: "employees".to_string(),
                alias: "e".to_string(),
                columns: vec!["id".to_string()],
                estimated_rows: None,
            })
        }
        let breakers = [
            PhysicalPlan::Sort {
                input: scan(),
                keys: vec![VExpr::Col {
                    index: 0,
                    alias: None,
                    column: "id".to_string(),
                }],
            },
            PhysicalPlan::RowNumber {
                input: scan(),
                specs: vec![vec![]],
            },
            PhysicalPlan::Distinct { input: scan() },
            PhysicalPlan::UnionAll(vec![*scan(), *scan()]),
            PhysicalPlan::ExceptAll {
                left: scan(),
                right: scan(),
            },
        ];
        for plan in &breakers {
            assert!(plan.is_pipeline_breaker(), "{:?}", plan);
        }
        let streaming = [
            PhysicalPlan::UnitRow,
            *scan(),
            PhysicalPlan::Filter {
                input: scan(),
                predicate: VExpr::Col {
                    index: 0,
                    alias: None,
                    column: "id".to_string(),
                },
            },
            PhysicalPlan::NestedLoopJoin {
                left: scan(),
                right: scan(),
            },
            join_plan(),
        ];
        for plan in &streaming {
            assert!(!plan.is_pipeline_breaker(), "{:?}", plan);
        }
    }

    #[test]
    fn out_of_range_columns_are_reported() {
        let mut plan = join_plan();
        // Corrupt the projection: point an expression past the input arity.
        if let PhysicalPlan::Project { exprs, .. } = &mut plan {
            exprs[0] = VExpr::Col {
                index: 99,
                alias: None,
                column: "name".to_string(),
            };
        } else {
            panic!("expected a Project root");
        }
        assert!(codes_of(&plan).contains(&codes::COL_OUT_OF_RANGE));
    }

    #[test]
    fn name_mismatches_are_reported() {
        let mut plan = join_plan();
        if let PhysicalPlan::Project { exprs, .. } = &mut plan {
            if let VExpr::Col { column, .. } = &mut exprs[0] {
                *column = "salary".to_string();
            }
        }
        assert!(codes_of(&plan).contains(&codes::COL_NAME_MISMATCH));
    }

    #[test]
    fn join_key_type_mismatches_are_reported() {
        let mut plan = join_plan();
        fn corrupt(p: &mut PhysicalPlan) -> bool {
            match p {
                PhysicalPlan::HashJoin { left_keys, .. } => {
                    left_keys[0] = VExpr::Lit(SqlValue::Int(1));
                    true
                }
                PhysicalPlan::Project { input, .. }
                | PhysicalPlan::Filter { input, .. }
                | PhysicalPlan::Distinct { input } => corrupt(input),
                _ => false,
            }
        }
        assert!(corrupt(&mut plan), "no hash join found to corrupt");
        assert!(codes_of(&plan).contains(&codes::JOIN_KEY_TYPE_MISMATCH));
    }

    #[test]
    fn undeclared_param_slots_are_reported() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "name"), "name")
                .from_named("employees", "e")
                .filter(Expr::eq(Expr::col("e", "id"), Expr::Param("wanted".into()))),
        );
        let plan = plan_query(&q, &SchemaCatalog::new(defs())).unwrap();
        let found = validate_plan(&plan, &defs(), &[]);
        assert!(found.iter().any(|d| d.code == codes::UNDECLARED_PARAM_SLOT));
        let ok = validate_plan(&plan, &defs(), &["wanted".to_string()]);
        assert!(ok.is_empty(), "{:?}", ok);
    }

    #[test]
    fn cte_scans_need_an_enclosing_with() {
        let orphan = PhysicalPlan::CteScan {
            name: "q1".to_string(),
            alias: "q".to_string(),
            columns: vec!["a".to_string()],
        };
        assert!(codes_of(&orphan).contains(&codes::UNKNOWN_CTE));
    }

    #[test]
    fn outer_refs_need_an_enclosing_scope() {
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::UnitRow),
            predicate: VExpr::Outer {
                table: None,
                column: "ghost".to_string(),
            },
        };
        assert!(codes_of(&plan).contains(&codes::UNRESOLVED_OUTER_REF));
    }

    #[test]
    fn correlated_exists_validates_clean() {
        let sub = Query::select(
            Select::new()
                .item(Expr::lit(1), "one")
                .from_named("departments", "d")
                .filter(Expr::eq(Expr::col("d", "name"), Expr::col("e", "dept"))),
        );
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "name"), "name")
                .from_named("employees", "e")
                .filter(Expr::not(Expr::Exists(Box::new(sub)))),
        );
        let plan = plan_query(&q, &SchemaCatalog::new(defs())).unwrap();
        assert!(codes_of(&plan).is_empty());
    }

    #[test]
    fn projection_arity_mismatches_are_reported() {
        let mut plan = join_plan();
        if let PhysicalPlan::Project { columns, .. } = &mut plan {
            columns.pop();
        }
        assert!(codes_of(&plan).contains(&codes::PROJECTION_ARITY));
    }
}
