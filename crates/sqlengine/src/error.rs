//! Errors raised by the SQL engine (storage, planning, execution, parsing).

use crate::storage::ColumnType;
use crate::value::Row;
use std::fmt;

/// All errors the engine can report.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    NoSuchTable(String),
    TableExists(String),
    ArityMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    ColumnTypeMismatch {
        table: String,
        column: String,
        expected: ColumnType,
        got: String,
    },
    /// A row whose key columns duplicate an existing row's was inserted into
    /// a table with a declared key ([`crate::storage::TableDef::with_key`]).
    DuplicateKey {
        table: String,
        key: Row,
    },
    /// A delete or update addressed a row (or key) not present in the table.
    NoSuchRow {
        table: String,
        row: Row,
    },
    /// A keyed write (`DeleteByKey`, `Update`) targeted a table that does not
    /// declare a key.
    NoDeclaredKey(String),
    UnknownColumn {
        qualifier: Option<String>,
        name: String,
    },
    UnknownAlias(String),
    AmbiguousColumn(String),
    UnknownCte(String),
    /// A named placeholder `:name` was evaluated without a bound value.
    UnboundParameter(String),
    TypeError(String),
    DivisionByZero,
    Parse(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoSuchTable(t) => write!(f, "no such table: {}", t),
            EngineError::TableExists(t) => write!(f, "table already exists: {}", t),
            EngineError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "row arity mismatch for table {}: expected {}, got {}",
                table, expected, got
            ),
            EngineError::ColumnTypeMismatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "column {}.{} expects {}, got {}",
                table, column, expected, got
            ),
            EngineError::DuplicateKey { table, key } => {
                let rendered: Vec<String> = key.iter().map(|v| v.to_string()).collect();
                write!(
                    f,
                    "duplicate key ({}) for table {}",
                    rendered.join(", "),
                    table
                )
            }
            EngineError::NoSuchRow { table, row } => {
                let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                write!(
                    f,
                    "no row ({}) to delete or update in table {}",
                    rendered.join(", "),
                    table
                )
            }
            EngineError::NoDeclaredKey(t) => {
                write!(f, "table {} declares no key for keyed writes", t)
            }
            EngineError::UnknownColumn { qualifier, name } => match qualifier {
                Some(q) => write!(f, "unknown column {}.{}", q, name),
                None => write!(f, "unknown column {}", name),
            },
            EngineError::UnknownAlias(a) => write!(f, "unknown table alias {}", a),
            EngineError::AmbiguousColumn(c) => write!(f, "ambiguous column {}", c),
            EngineError::UnknownCte(q) => write!(f, "unknown WITH-bound query {}", q),
            EngineError::UnboundParameter(p) => write!(
                f,
                "unbound parameter :{} (supply a value when executing the plan)",
                p
            ),
            EngineError::TypeError(msg) => write!(f, "type error: {}", msg),
            EngineError::DivisionByZero => write!(f, "division by zero"),
            EngineError::Parse(msg) => write!(f, "SQL parse error: {}", msg),
        }
    }
}

impl std::error::Error for EngineError {}
