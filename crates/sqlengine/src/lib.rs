//! # sqlengine — an in-memory SQL:1999 subset engine
//!
//! The paper's evaluation runs the SQL produced by query shredding (and by the
//! loop-lifting baseline) on PostgreSQL 9.2. This crate is the substitute
//! substrate: an in-memory engine for exactly the SQL subset those
//! translations emit —
//!
//! * `SELECT … FROM … WHERE …` with multi-table `FROM` lists,
//! * hash joins for equi-join predicates, nested-loop joins otherwise,
//! * `UNION ALL` and `EXCEPT ALL` (bag semantics),
//! * `WITH q AS (…) …` (one let-bound subquery per block, as produced by
//!   let-insertion),
//! * `ROW_NUMBER() OVER (ORDER BY …)`,
//! * correlated `EXISTS` subqueries (the image of λNRC's `empty`),
//! * `ORDER BY` / `DISTINCT` for the baselines.
//!
//! It also contains a printer and parser for the dialect, so SQL can be
//! round-tripped as text exactly as Links ships SQL strings to the database.
//!
//! Execution is split planner/executor: [`plan`] compiles a query into an
//! explicit [`PhysicalPlan`] (scans, hash joins with a chosen build side,
//! filters, exists-semijoins, row-numbering, sort, projection) and [`vexec`]
//! runs the plan over a columnar representation with selection vectors.
//! [`Engine::execute`] uses this vectorized path by default and returns a
//! [`ColumnarResult`] — the batch's `Arc`-shared columns handed over without
//! a row-major transpose, so columnar consumers (the shredding stitcher)
//! never see rows at all. The row-major [`ResultSet`] remains for the
//! interpreter and the text-SQL path; the original row-at-a-time interpreter
//! survives as [`Engine::execute_interpreted`], the oracle the vectorized
//! executor is differentially tested against.
//!
//! The whole engine is `Send + Sync`: values share string storage by
//! `Arc<str>`, batches share columns by `Arc`, the lazily transposed
//! columnar views sit in version-stamped cells and the plan counter is
//! atomic. Storage is mutable — [`delta`] adds deletes, updates and a
//! write-batch API that emits typed insertion/retraction deltas — so the
//! engine keeps its storage behind an `RwLock`: plans execute against a
//! read guard, write batches take the write lock, and one engine instance
//! (typically an `Arc<Engine>`) serves any number of threads concurrently.
//!
//! ```
//! use sqlengine::exec::Engine;
//! use sqlengine::storage::{ColumnType, Storage, TableDef};
//! use sqlengine::value::SqlValue;
//!
//! let mut storage = Storage::new();
//! storage.create_table(TableDef::new("t", vec![("x", ColumnType::Int)])).unwrap();
//! storage.insert("t", vec![SqlValue::Int(41)]).unwrap();
//! let engine = Engine::with_storage(storage);
//!
//! let rs = engine.execute_sql("SELECT t.x + 1 AS y FROM t AS t").unwrap();
//! assert_eq!(rs.rows, vec![vec![SqlValue::Int(42)]]);
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod delta;
pub mod error;
pub mod exec;
pub mod opt;
pub mod par;
pub mod parser;
pub mod plan;
pub mod printer;
pub mod storage;
pub mod value;
pub mod vexec;

pub use ast::{BinOp, Expr, FromItem, Query, Select, SelectItem, TableSource};
pub use delta::{StorageDelta, TableDelta, WriteBatch, WriteOp};
pub use error::EngineError;
pub use exec::Engine;
pub use opt::{live_estimate, optimize, OptReport, OptSkip};
pub use par::{ExecOptions, ExecStats, DEFAULT_MIN_PARALLEL_ROWS, DEFAULT_MORSEL_ROWS};
pub use parser::{parse_expr, parse_query};
pub use plan::{Catalog, OpActuals, PhysicalPlan, SchemaCatalog};
pub use printer::{print_expr, print_query};
pub use storage::{ColumnType, ColumnarResult, ResultSet, Storage, Table, TableDef};
pub use value::{ParamValues, Row, SqlValue};
pub use vexec::{DeltaExec, DeltaRows, PlanProfile};
