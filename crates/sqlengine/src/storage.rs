//! In-memory storage: tables, schemas and the catalog.
//!
//! This replaces the PostgreSQL instance used by the paper's evaluation. Rows
//! are stored column-positionally per table; the executor works directly over
//! these vectors.

use crate::error::EngineError;
use crate::value::{Row, SqlValue};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::{Arc, RwLock};

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    Int,
    Bool,
    Text,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => write!(f, "integer"),
            ColumnType::Bool => write!(f, "boolean"),
            ColumnType::Text => write!(f, "text"),
        }
    }
}

impl ColumnType {
    /// Does a value inhabit this column type? `NULL` inhabits every type.
    pub fn admits(&self, v: &SqlValue) -> bool {
        matches!(
            (self, v),
            (_, SqlValue::Null)
                | (ColumnType::Int, SqlValue::Int(_))
                | (ColumnType::Bool, SqlValue::Bool(_))
                | (ColumnType::Text, SqlValue::Str(_))
        )
    }
}

/// The schema of a stored table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub name: String,
    pub columns: Vec<(String, ColumnType)>,
    /// Key columns (unique per row) if declared; used by natural indexing.
    pub key: Vec<String>,
}

impl TableDef {
    /// A new table definition without a key.
    pub fn new<S: Into<String>>(name: S, columns: Vec<(&str, ColumnType)>) -> TableDef {
        TableDef {
            name: name.into(),
            columns: columns
                .into_iter()
                .map(|(c, t)| (c.to_string(), t))
                .collect(),
            key: Vec::new(),
        }
    }

    /// Declare key columns.
    pub fn with_key(mut self, key: Vec<&str>) -> TableDef {
        self.key = key.into_iter().map(|s| s.to_string()).collect();
        self
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(c, _)| c == name)
    }

    /// Names of all columns, in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|(c, _)| c.clone()).collect()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// The version-stamped columnar cache of a [`Table`].
///
/// The table's mutators bump the table's `version`; the cache keeps the
/// version it was built at and is served only while the stamps agree, so a
/// delete or update can never leak a stale transposition (the historical
/// `OnceLock` cache invalidated on insert only because insert was the only
/// mutation).
/// The shared column-major view a cell caches: one `Arc` per column.
type SharedColumns = Arc<Vec<Arc<Vec<SqlValue>>>>;

#[derive(Debug, Default)]
struct ColumnarCell {
    cache: RwLock<Option<(u64, SharedColumns)>>,
}

impl ColumnarCell {
    fn get(&self, version: u64) -> Option<SharedColumns> {
        match self.cache.read().expect("columnar cache lock").as_ref() {
            Some((v, cols)) if *v == version => Some(cols.clone()),
            _ => None,
        }
    }

    fn put(&self, version: u64, cols: SharedColumns) {
        *self.cache.write().expect("columnar cache lock") = Some((version, cols));
    }
}

/// A stored table: a definition plus its rows.
///
/// Rows must be added through [`Table::insert`] and removed or replaced
/// through [`Table::delete`] / [`Table::update`] (or the [`Storage`] entry
/// points), which enforce the schema — arity, column types and the key
/// declared with [`TableDef::with_key`] — and keep the cached columnar view
/// consistent via a per-table version stamp.
#[derive(Debug)]
pub struct Table {
    pub def: TableDef,
    pub rows: Vec<Row>,
    /// Key values seen so far, for O(1) duplicate-key detection.
    key_seen: HashSet<Row>,
    /// Bumped by every mutation; pairs with `columnar` so cached column
    /// vectors are served only while they match the current contents.
    version: u64,
    /// Lazily transposed column-major view served to the vectorized
    /// executor, stamped with the version it was built at. Behind an
    /// `RwLock` so concurrent readers of a shared table can build it
    /// without `&mut` access.
    columnar: ColumnarCell,
}

impl Clone for Table {
    fn clone(&self) -> Table {
        Table {
            def: self.def.clone(),
            rows: self.rows.clone(),
            key_seen: self.key_seen.clone(),
            version: self.version,
            columnar: ColumnarCell::default(),
        }
    }
}

impl PartialEq for Table {
    fn eq(&self, other: &Table) -> bool {
        self.def == other.def && self.rows == other.rows
    }
}

impl Table {
    /// An empty table.
    pub fn new(def: TableDef) -> Table {
        Table {
            def,
            rows: Vec::new(),
            key_seen: HashSet::new(),
            version: 0,
            columnar: ColumnarCell::default(),
        }
    }

    /// The non-`NULL` key projection of a row, when the table declares a key
    /// (rows whose key contains `NULL` never participate in uniqueness).
    fn key_of(&self, row: &Row) -> Option<Row> {
        if self.def.key.is_empty() {
            return None;
        }
        self.def
            .key
            .iter()
            .map(|k| {
                self.def
                    .column_index(k)
                    .map(|i| row[i].clone())
                    .filter(|v| !v.is_null())
            })
            .collect()
    }

    /// Insert a row after checking its arity, column types and — when the
    /// table declares a key — key uniqueness. A row whose key contains
    /// `NULL` is never considered a duplicate (SQL `UNIQUE` semantics; the
    /// natural indexing scheme pads key columns with `NULL`).
    pub fn insert(&mut self, row: Row) -> Result<(), EngineError> {
        if row.len() != self.def.arity() {
            return Err(EngineError::ArityMismatch {
                table: self.def.name.clone(),
                expected: self.def.arity(),
                got: row.len(),
            });
        }
        for ((name, ty), v) in self.def.columns.iter().zip(&row) {
            if !ty.admits(v) {
                return Err(EngineError::ColumnTypeMismatch {
                    table: self.def.name.clone(),
                    column: name.clone(),
                    expected: *ty,
                    got: v.type_name().to_string(),
                });
            }
        }
        if let Some(key) = self.key_of(&row) {
            if !self.key_seen.insert(key.clone()) {
                return Err(EngineError::DuplicateKey {
                    table: self.def.name.clone(),
                    key,
                });
            }
        }
        self.rows.push(row);
        self.version += 1;
        Ok(())
    }

    /// Delete the first row equal to `row`. Errors when no such row exists;
    /// the row's key (if any) becomes available for re-insertion.
    pub fn delete(&mut self, row: &Row) -> Result<(), EngineError> {
        let idx =
            self.rows
                .iter()
                .position(|r| r == row)
                .ok_or_else(|| EngineError::NoSuchRow {
                    table: self.def.name.clone(),
                    row: row.clone(),
                })?;
        self.delete_at(idx);
        Ok(())
    }

    /// Delete the row whose key columns equal `key`, returning the deleted
    /// row. The table must declare a key.
    pub fn delete_by_key(&mut self, key: &Row) -> Result<Row, EngineError> {
        let idx = self.position_by_key(key)?;
        let row = self.rows[idx].clone();
        self.delete_at(idx);
        Ok(row)
    }

    /// Replace the row whose key columns equal `key` with `row`, returning
    /// the previous row. The replacement is validated like an insert (arity,
    /// column types, key uniqueness against every *other* row), and the
    /// updated row moves to the end of the table — an update is a delete
    /// plus an insert, exactly the normal form the delta layer emits.
    pub fn update(&mut self, key: &Row, row: Row) -> Result<Row, EngineError> {
        let idx = self.position_by_key(key)?;
        let old = self.rows[idx].clone();
        self.delete_at(idx);
        match self.insert(row) {
            Ok(()) => Ok(old),
            Err(e) => {
                // Roll the delete back so a rejected update leaves the table
                // untouched (the old row returns at the end; multiset
                // contents are what the engine guarantees).
                self.insert(old).expect("reinserting the old row succeeds");
                Err(e)
            }
        }
    }

    fn position_by_key(&self, key: &Row) -> Result<usize, EngineError> {
        if self.def.key.is_empty() {
            return Err(EngineError::NoDeclaredKey(self.def.name.clone()));
        }
        self.rows
            .iter()
            .position(|r| self.key_of(r).as_deref() == Some(key))
            .ok_or_else(|| EngineError::NoSuchRow {
                table: self.def.name.clone(),
                row: key.clone(),
            })
    }

    fn delete_at(&mut self, idx: usize) {
        let row = self.rows.remove(idx);
        if let Some(key) = self.key_of(&row) {
            self.key_seen.remove(&key);
        }
        self.version += 1;
    }

    /// The column-major view of the table: one shared vector per column, in
    /// declaration order. Built lazily on first use (thread-safely: any
    /// number of concurrent readers may trigger the build) and cached until
    /// the next mutation; the vectorized executor scans these vectors
    /// zero-copy, and the `Arc`s let batches outlive the borrow and cross
    /// threads. The cache is stamped with the table version it was built at,
    /// so deletes and updates invalidate it just like inserts.
    pub fn columnar(&self) -> Arc<Vec<Arc<Vec<SqlValue>>>> {
        if let Some(cols) = self.columnar.get(self.version) {
            return cols;
        }
        let mut columns: Vec<Vec<SqlValue>> = (0..self.def.arity())
            .map(|_| Vec::with_capacity(self.rows.len()))
            .collect();
        for row in &self.rows {
            for (c, v) in row.iter().enumerate() {
                columns[c].push(v.clone());
            }
        }
        let built: Arc<Vec<Arc<Vec<SqlValue>>>> =
            Arc::new(columns.into_iter().map(Arc::new).collect());
        self.columnar.put(self.version, built.clone());
        built
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// The catalog of stored tables — an in-memory stand-in for a database.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Storage {
    tables: BTreeMap<String, Table>,
}

impl Storage {
    /// An empty storage.
    pub fn new() -> Storage {
        Storage::default()
    }

    /// Create a table.
    pub fn create_table(&mut self, def: TableDef) -> Result<(), EngineError> {
        if self.tables.contains_key(&def.name) {
            return Err(EngineError::TableExists(def.name));
        }
        self.tables.insert(def.name.clone(), Table::new(def));
        Ok(())
    }

    /// Insert a row into a table.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), EngineError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| EngineError::NoSuchTable(table.to_string()))?
            .insert(row)
    }

    /// Bulk-insert rows into a table.
    pub fn insert_all<I: IntoIterator<Item = Row>>(
        &mut self,
        table: &str,
        rows: I,
    ) -> Result<(), EngineError> {
        for row in rows {
            self.insert(table, row)?;
        }
        Ok(())
    }

    /// Delete the first row of `table` equal to `row`.
    pub fn delete(&mut self, table: &str, row: &Row) -> Result<(), EngineError> {
        self.table_mut(table)?.delete(row)
    }

    /// Delete the row of `table` whose key equals `key`, returning it.
    pub fn delete_by_key(&mut self, table: &str, key: &Row) -> Result<Row, EngineError> {
        self.table_mut(table)?.delete_by_key(key)
    }

    /// Replace the row of `table` whose key equals `key`, returning the
    /// previous row.
    pub fn update(&mut self, table: &str, key: &Row, row: Row) -> Result<Row, EngineError> {
        self.table_mut(table)?.update(key, row)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table, EngineError> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::NoSuchTable(name.to_string()))
    }

    /// Look up a table mutably.
    pub(crate) fn table_mut(&mut self, name: &str) -> Result<&mut Table, EngineError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| EngineError::NoSuchTable(name.to_string()))
    }

    /// Does the table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Iterate over tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

/// A columnar query result: the native output of the vectorized executor.
///
/// One shared (`Arc`) value vector per named column, plus an explicit row
/// count (a result may have zero columns but a positive row count, e.g.
/// `SELECT` over an empty projection). Columns are shared, not owned:
/// cloning a `ColumnarResult` is a handful of refcount bumps, and consumers
/// that decode columns (the shredding stitcher) take them by value without
/// copying cell data. The row-major [`ResultSet`] is derived from this via
/// [`ColumnarResult::into_result_set`] — the transpose only happens for
/// consumers that genuinely want rows (the interpreter oracle, text tables,
/// the baselines' row decoders).
#[derive(Debug, Clone)]
pub struct ColumnarResult {
    /// Column names, in `SELECT` order.
    pub columns: Vec<String>,
    cols: Vec<Arc<Vec<SqlValue>>>,
    rows: usize,
}

impl ColumnarResult {
    /// Assemble a columnar result. Every column vector must hold exactly
    /// `rows` values.
    pub fn new(columns: Vec<String>, cols: Vec<Arc<Vec<SqlValue>>>, rows: usize) -> ColumnarResult {
        debug_assert_eq!(columns.len(), cols.len());
        debug_assert!(cols.iter().all(|c| c.len() == rows));
        ColumnarResult {
            columns,
            cols,
            rows,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The shared data of the `idx`-th column.
    pub fn column(&self, idx: usize) -> &Arc<Vec<SqlValue>> {
        &self.cols[idx]
    }

    /// The shared data of a column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Arc<Vec<SqlValue>>> {
        self.column_index(name).map(|i| &self.cols[i])
    }

    /// The value at (row, column name), if both exist.
    pub fn value(&self, row: usize, column: &str) -> Option<&SqlValue> {
        self.column_by_name(column).and_then(|c| c.get(row))
    }

    /// Take ownership of the shared column vectors, dropping the names.
    /// This is the zero-copy hand-off into the columnar decode + stitch
    /// path: the `Arc`s move, no cell is cloned.
    pub fn into_columns(self) -> Vec<Arc<Vec<SqlValue>>> {
        self.cols
    }

    /// The row→column converter: transpose a row-major result. The inverse
    /// of [`into_result_set`](ColumnarResult::into_result_set), for callers
    /// holding rows (a parsed fixture, an interpreter result) that want to
    /// feed a columnar consumer. Nothing on the engine's hot paths needs
    /// it — plans are columnar natively.
    pub fn from_result_set(rs: ResultSet) -> ColumnarResult {
        let width = rs.columns.len();
        let rows = rs.rows.len();
        let mut cols: Vec<Vec<SqlValue>> = (0..width).map(|_| Vec::with_capacity(rows)).collect();
        for row in rs.rows {
            for (c, v) in row.into_iter().enumerate() {
                cols[c].push(v);
            }
        }
        ColumnarResult {
            columns: rs.columns,
            cols: cols.into_iter().map(Arc::new).collect(),
            rows,
        }
    }

    /// The column→row converter: transpose into a row-major [`ResultSet`].
    /// This is the compatibility shim for row-oriented consumers (baseline
    /// decoders, differential tests against the interpreter); the columnar
    /// stitch path never calls it.
    pub fn into_result_set(self) -> ResultSet {
        let rows = (0..self.rows)
            .map(|r| self.cols.iter().map(|c| c[r].clone()).collect())
            .collect();
        ResultSet {
            columns: self.columns,
            rows,
        }
    }
}

impl PartialEq for ColumnarResult {
    fn eq(&self, other: &ColumnarResult) -> bool {
        self.columns == other.columns && self.rows == other.rows && self.cols == other.cols
    }
}

/// A result set: named columns plus rows, as returned by the executor.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// An empty result set with the given columns.
    pub fn empty(columns: Vec<String>) -> ResultSet {
        ResultSet {
            columns,
            rows: Vec::new(),
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The value at (row, column name), if both exist.
    pub fn value(&self, row: usize, column: &str) -> Option<&SqlValue> {
        let idx = self.column_index(column)?;
        self.rows.get(row).and_then(|r| r.get(idx))
    }

    /// Render the result set as an aligned text table (for examples and the
    /// experiments binary).
    pub fn to_text_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def() -> TableDef {
        TableDef::new(
            "t",
            vec![("id", ColumnType::Int), ("name", ColumnType::Text)],
        )
        .with_key(vec!["id"])
    }

    #[test]
    fn insert_checks_arity_and_types() {
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        assert!(s
            .insert("t", vec![SqlValue::Int(1), SqlValue::str("a")])
            .is_ok());
        assert!(matches!(
            s.insert("t", vec![SqlValue::Int(1)]),
            Err(EngineError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.insert("t", vec![SqlValue::str("x"), SqlValue::str("a")]),
            Err(EngineError::ColumnTypeMismatch { .. })
        ));
    }

    #[test]
    fn null_is_admitted_by_every_column_type() {
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        assert!(s.insert("t", vec![SqlValue::Null, SqlValue::Null]).is_ok());
    }

    #[test]
    fn declared_keys_reject_duplicate_rows() {
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        s.insert("t", vec![SqlValue::Int(1), SqlValue::str("a")])
            .unwrap();
        s.insert("t", vec![SqlValue::Int(2), SqlValue::str("a")])
            .unwrap();
        let err = s
            .insert("t", vec![SqlValue::Int(1), SqlValue::str("b")])
            .unwrap_err();
        assert!(
            matches!(&err, EngineError::DuplicateKey { table, key }
                if table == "t" && key == &vec![SqlValue::Int(1)]),
            "got: {}",
            err
        );
        assert_eq!(s.table("t").unwrap().len(), 2, "the duplicate is rejected");
    }

    #[test]
    fn null_keys_and_keyless_tables_admit_repeats() {
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        // NULL never collides with NULL (SQL UNIQUE semantics).
        s.insert("t", vec![SqlValue::Null, SqlValue::str("a")])
            .unwrap();
        s.insert("t", vec![SqlValue::Null, SqlValue::str("b")])
            .unwrap();
        // A table without a key accepts fully duplicate rows.
        s.create_table(TableDef::new("bag", vec![("x", ColumnType::Int)]))
            .unwrap();
        s.insert("bag", vec![SqlValue::Int(7)]).unwrap();
        s.insert("bag", vec![SqlValue::Int(7)]).unwrap();
        assert_eq!(s.table("bag").unwrap().len(), 2);
    }

    #[test]
    fn the_columnar_view_transposes_rows_and_tracks_inserts() {
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        s.insert("t", vec![SqlValue::Int(1), SqlValue::str("a")])
            .unwrap();
        {
            let cols = s.table("t").unwrap().columnar();
            assert_eq!(cols.len(), 2);
            assert_eq!(*cols[0], vec![SqlValue::Int(1)]);
            assert_eq!(*cols[1], vec![SqlValue::str("a")]);
        }
        // Inserting invalidates the cached view.
        s.insert("t", vec![SqlValue::Int(2), SqlValue::str("b")])
            .unwrap();
        let cols = s.table("t").unwrap().columnar();
        assert_eq!(*cols[0], vec![SqlValue::Int(1), SqlValue::Int(2)]);
    }

    #[test]
    fn the_columnar_view_is_invalidated_by_every_mutation() {
        // Regression test for the stale-columnar-view hazard: the historical
        // `OnceLock` cache only invalidated on insert, so a read after a
        // delete or update served the old transposition.
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        for (id, name) in [(1, "a"), (2, "b"), (3, "c")] {
            s.insert("t", vec![SqlValue::Int(id), SqlValue::str(name)])
                .unwrap();
        }
        // Read once to populate the cache.
        assert_eq!(s.table("t").unwrap().columnar()[0].len(), 3);
        // Delete-by-value, then re-read: the view must shrink.
        s.delete("t", &vec![SqlValue::Int(2), SqlValue::str("b")])
            .unwrap();
        let cols = s.table("t").unwrap().columnar();
        assert_eq!(*cols[0], vec![SqlValue::Int(1), SqlValue::Int(3)]);
        // Update-by-key, then re-read: the view must show the new row (at
        // the end: an update is delete + insert).
        s.update(
            "t",
            &vec![SqlValue::Int(1)],
            vec![SqlValue::Int(1), SqlValue::str("z")],
        )
        .unwrap();
        let cols = s.table("t").unwrap().columnar();
        assert_eq!(*cols[1], vec![SqlValue::str("c"), SqlValue::str("z")]);
        // Keyed delete, then re-read.
        s.delete_by_key("t", &vec![SqlValue::Int(3)]).unwrap();
        let cols = s.table("t").unwrap().columnar();
        assert_eq!(*cols[0], vec![SqlValue::Int(1)]);
        assert_eq!(*cols[1], vec![SqlValue::str("z")]);
    }

    #[test]
    fn deletes_and_updates_maintain_key_bookkeeping() {
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        s.insert("t", vec![SqlValue::Int(1), SqlValue::str("a")])
            .unwrap();
        // Deleting frees the key for re-insertion.
        s.delete("t", &vec![SqlValue::Int(1), SqlValue::str("a")])
            .unwrap();
        s.insert("t", vec![SqlValue::Int(1), SqlValue::str("b")])
            .unwrap();
        // A second row, then a conflicting update is rejected atomically.
        s.insert("t", vec![SqlValue::Int(2), SqlValue::str("c")])
            .unwrap();
        let err = s
            .update(
                "t",
                &vec![SqlValue::Int(2)],
                vec![SqlValue::Int(1), SqlValue::str("dup")],
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::DuplicateKey { .. }));
        assert_eq!(s.table("t").unwrap().len(), 2);
        // Missing rows and keyless keyed-writes are reported.
        assert!(matches!(
            s.delete("t", &vec![SqlValue::Int(9), SqlValue::Null]),
            Err(EngineError::NoSuchRow { .. })
        ));
        s.create_table(TableDef::new("bag", vec![("x", ColumnType::Int)]))
            .unwrap();
        assert!(matches!(
            s.delete_by_key("bag", &vec![SqlValue::Int(1)]),
            Err(EngineError::NoDeclaredKey(_))
        ));
    }

    #[test]
    fn duplicate_table_creation_fails() {
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        assert!(matches!(
            s.create_table(def()),
            Err(EngineError::TableExists(_))
        ));
    }

    #[test]
    fn missing_table_lookup_fails() {
        let s = Storage::new();
        assert!(matches!(s.table("nope"), Err(EngineError::NoSuchTable(_))));
    }

    #[test]
    fn columnar_result_round_trips_through_rows() {
        let rs = ResultSet {
            columns: vec!["a".to_string(), "b".to_string()],
            rows: vec![
                vec![SqlValue::Int(1), SqlValue::str("x")],
                vec![SqlValue::Int(2), SqlValue::str("y")],
            ],
        };
        let cr = ColumnarResult::from_result_set(rs.clone());
        assert_eq!(cr.len(), 2);
        assert_eq!(cr.width(), 2);
        assert_eq!(cr.value(1, "b"), Some(&SqlValue::str("y")));
        assert_eq!(
            **cr.column_by_name("a").unwrap(),
            vec![SqlValue::Int(1), SqlValue::Int(2)]
        );
        // Cloning shares columns (refcount bump), and both transposes are
        // mutually inverse.
        assert_eq!(cr.clone().into_result_set(), rs);
        assert_eq!(
            ColumnarResult::from_result_set(cr.clone().into_result_set()),
            cr
        );
    }

    #[test]
    fn result_set_accessors() {
        let rs = ResultSet {
            columns: vec!["a".to_string(), "b".to_string()],
            rows: vec![vec![SqlValue::Int(1), SqlValue::str("x")]],
        };
        assert_eq!(rs.value(0, "b"), Some(&SqlValue::str("x")));
        assert_eq!(rs.value(0, "c"), None);
        assert_eq!(rs.len(), 1);
        let text = rs.to_text_table();
        assert!(text.contains('a'));
        assert!(text.contains("'x'"));
    }
}
