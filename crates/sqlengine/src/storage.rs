//! In-memory storage: tables, schemas and the catalog.
//!
//! This replaces the PostgreSQL instance used by the paper's evaluation. Rows
//! are stored column-positionally per table; the executor works directly over
//! these vectors.

use crate::error::EngineError;
use crate::value::{Row, SqlValue};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    Int,
    Bool,
    Text,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => write!(f, "integer"),
            ColumnType::Bool => write!(f, "boolean"),
            ColumnType::Text => write!(f, "text"),
        }
    }
}

impl ColumnType {
    /// Does a value inhabit this column type? `NULL` inhabits every type.
    pub fn admits(&self, v: &SqlValue) -> bool {
        matches!(
            (self, v),
            (_, SqlValue::Null)
                | (ColumnType::Int, SqlValue::Int(_))
                | (ColumnType::Bool, SqlValue::Bool(_))
                | (ColumnType::Text, SqlValue::Str(_))
        )
    }
}

/// The schema of a stored table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub name: String,
    pub columns: Vec<(String, ColumnType)>,
    /// Key columns (unique per row) if declared; used by natural indexing.
    pub key: Vec<String>,
}

impl TableDef {
    /// A new table definition without a key.
    pub fn new<S: Into<String>>(name: S, columns: Vec<(&str, ColumnType)>) -> TableDef {
        TableDef {
            name: name.into(),
            columns: columns
                .into_iter()
                .map(|(c, t)| (c.to_string(), t))
                .collect(),
            key: Vec::new(),
        }
    }

    /// Declare key columns.
    pub fn with_key(mut self, key: Vec<&str>) -> TableDef {
        self.key = key.into_iter().map(|s| s.to_string()).collect();
        self
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(c, _)| c == name)
    }

    /// Names of all columns, in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|(c, _)| c.clone()).collect()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// A stored table: a definition plus its rows.
///
/// Rows must be added through [`Table::insert`] (or the [`Storage`] entry
/// points), which enforces the schema — arity, column types and the key
/// declared with [`TableDef::with_key`] — and keeps the cached columnar view
/// consistent.
#[derive(Debug, Clone)]
pub struct Table {
    pub def: TableDef,
    pub rows: Vec<Row>,
    /// Key values seen so far, for O(1) duplicate-key detection.
    key_seen: HashSet<Row>,
    /// Lazily transposed column-major view served to the vectorized
    /// executor; invalidated by `insert`. A `OnceLock` so concurrent readers
    /// of a shared table can race to initialise it without `&mut` access.
    columnar: OnceLock<Vec<Arc<Vec<SqlValue>>>>,
}

impl PartialEq for Table {
    fn eq(&self, other: &Table) -> bool {
        self.def == other.def && self.rows == other.rows
    }
}

impl Table {
    /// An empty table.
    pub fn new(def: TableDef) -> Table {
        Table {
            def,
            rows: Vec::new(),
            key_seen: HashSet::new(),
            columnar: OnceLock::new(),
        }
    }

    /// Insert a row after checking its arity, column types and — when the
    /// table declares a key — key uniqueness. A row whose key contains
    /// `NULL` is never considered a duplicate (SQL `UNIQUE` semantics; the
    /// natural indexing scheme pads key columns with `NULL`).
    pub fn insert(&mut self, row: Row) -> Result<(), EngineError> {
        if row.len() != self.def.arity() {
            return Err(EngineError::ArityMismatch {
                table: self.def.name.clone(),
                expected: self.def.arity(),
                got: row.len(),
            });
        }
        for ((name, ty), v) in self.def.columns.iter().zip(&row) {
            if !ty.admits(v) {
                return Err(EngineError::ColumnTypeMismatch {
                    table: self.def.name.clone(),
                    column: name.clone(),
                    expected: *ty,
                    got: v.type_name().to_string(),
                });
            }
        }
        if !self.def.key.is_empty() {
            let key: Option<Row> = self
                .def
                .key
                .iter()
                .map(|k| {
                    self.def
                        .column_index(k)
                        .map(|i| row[i].clone())
                        .filter(|v| !v.is_null())
                })
                .collect();
            if let Some(key) = key {
                if !self.key_seen.insert(key.clone()) {
                    return Err(EngineError::DuplicateKey {
                        table: self.def.name.clone(),
                        key,
                    });
                }
            }
        }
        self.rows.push(row);
        self.columnar.take();
        Ok(())
    }

    /// The column-major view of the table: one shared vector per column, in
    /// declaration order. Built lazily on first use (thread-safely: any
    /// number of concurrent readers may trigger the build) and cached until
    /// the next insert; the vectorized executor scans these vectors
    /// zero-copy, and the `Arc`s let batches outlive the borrow and cross
    /// threads.
    pub fn columnar(&self) -> &[Arc<Vec<SqlValue>>] {
        self.columnar.get_or_init(|| {
            let mut columns: Vec<Vec<SqlValue>> = (0..self.def.arity())
                .map(|_| Vec::with_capacity(self.rows.len()))
                .collect();
            for row in &self.rows {
                for (c, v) in row.iter().enumerate() {
                    columns[c].push(v.clone());
                }
            }
            columns.into_iter().map(Arc::new).collect()
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// The catalog of stored tables — an in-memory stand-in for a database.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Storage {
    tables: BTreeMap<String, Table>,
}

impl Storage {
    /// An empty storage.
    pub fn new() -> Storage {
        Storage::default()
    }

    /// Create a table.
    pub fn create_table(&mut self, def: TableDef) -> Result<(), EngineError> {
        if self.tables.contains_key(&def.name) {
            return Err(EngineError::TableExists(def.name));
        }
        self.tables.insert(def.name.clone(), Table::new(def));
        Ok(())
    }

    /// Insert a row into a table.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), EngineError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| EngineError::NoSuchTable(table.to_string()))?
            .insert(row)
    }

    /// Bulk-insert rows into a table.
    pub fn insert_all<I: IntoIterator<Item = Row>>(
        &mut self,
        table: &str,
        rows: I,
    ) -> Result<(), EngineError> {
        for row in rows {
            self.insert(table, row)?;
        }
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table, EngineError> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::NoSuchTable(name.to_string()))
    }

    /// Does the table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Iterate over tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

/// A columnar query result: the native output of the vectorized executor.
///
/// One shared (`Arc`) value vector per named column, plus an explicit row
/// count (a result may have zero columns but a positive row count, e.g.
/// `SELECT` over an empty projection). Columns are shared, not owned:
/// cloning a `ColumnarResult` is a handful of refcount bumps, and consumers
/// that decode columns (the shredding stitcher) take them by value without
/// copying cell data. The row-major [`ResultSet`] is derived from this via
/// [`ColumnarResult::into_result_set`] — the transpose only happens for
/// consumers that genuinely want rows (the interpreter oracle, text tables,
/// the baselines' row decoders).
#[derive(Debug, Clone)]
pub struct ColumnarResult {
    /// Column names, in `SELECT` order.
    pub columns: Vec<String>,
    cols: Vec<Arc<Vec<SqlValue>>>,
    rows: usize,
}

impl ColumnarResult {
    /// Assemble a columnar result. Every column vector must hold exactly
    /// `rows` values.
    pub fn new(columns: Vec<String>, cols: Vec<Arc<Vec<SqlValue>>>, rows: usize) -> ColumnarResult {
        debug_assert_eq!(columns.len(), cols.len());
        debug_assert!(cols.iter().all(|c| c.len() == rows));
        ColumnarResult {
            columns,
            cols,
            rows,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The shared data of the `idx`-th column.
    pub fn column(&self, idx: usize) -> &Arc<Vec<SqlValue>> {
        &self.cols[idx]
    }

    /// The shared data of a column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Arc<Vec<SqlValue>>> {
        self.column_index(name).map(|i| &self.cols[i])
    }

    /// The value at (row, column name), if both exist.
    pub fn value(&self, row: usize, column: &str) -> Option<&SqlValue> {
        self.column_by_name(column).and_then(|c| c.get(row))
    }

    /// Take ownership of the shared column vectors, dropping the names.
    /// This is the zero-copy hand-off into the columnar decode + stitch
    /// path: the `Arc`s move, no cell is cloned.
    pub fn into_columns(self) -> Vec<Arc<Vec<SqlValue>>> {
        self.cols
    }

    /// The row→column converter: transpose a row-major result. The inverse
    /// of [`into_result_set`](ColumnarResult::into_result_set), for callers
    /// holding rows (a parsed fixture, an interpreter result) that want to
    /// feed a columnar consumer. Nothing on the engine's hot paths needs
    /// it — plans are columnar natively.
    pub fn from_result_set(rs: ResultSet) -> ColumnarResult {
        let width = rs.columns.len();
        let rows = rs.rows.len();
        let mut cols: Vec<Vec<SqlValue>> = (0..width).map(|_| Vec::with_capacity(rows)).collect();
        for row in rs.rows {
            for (c, v) in row.into_iter().enumerate() {
                cols[c].push(v);
            }
        }
        ColumnarResult {
            columns: rs.columns,
            cols: cols.into_iter().map(Arc::new).collect(),
            rows,
        }
    }

    /// The column→row converter: transpose into a row-major [`ResultSet`].
    /// This is the compatibility shim for row-oriented consumers (baseline
    /// decoders, differential tests against the interpreter); the columnar
    /// stitch path never calls it.
    pub fn into_result_set(self) -> ResultSet {
        let rows = (0..self.rows)
            .map(|r| self.cols.iter().map(|c| c[r].clone()).collect())
            .collect();
        ResultSet {
            columns: self.columns,
            rows,
        }
    }
}

impl PartialEq for ColumnarResult {
    fn eq(&self, other: &ColumnarResult) -> bool {
        self.columns == other.columns && self.rows == other.rows && self.cols == other.cols
    }
}

/// A result set: named columns plus rows, as returned by the executor.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// An empty result set with the given columns.
    pub fn empty(columns: Vec<String>) -> ResultSet {
        ResultSet {
            columns,
            rows: Vec::new(),
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The value at (row, column name), if both exist.
    pub fn value(&self, row: usize, column: &str) -> Option<&SqlValue> {
        let idx = self.column_index(column)?;
        self.rows.get(row).and_then(|r| r.get(idx))
    }

    /// Render the result set as an aligned text table (for examples and the
    /// experiments binary).
    pub fn to_text_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def() -> TableDef {
        TableDef::new(
            "t",
            vec![("id", ColumnType::Int), ("name", ColumnType::Text)],
        )
        .with_key(vec!["id"])
    }

    #[test]
    fn insert_checks_arity_and_types() {
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        assert!(s
            .insert("t", vec![SqlValue::Int(1), SqlValue::str("a")])
            .is_ok());
        assert!(matches!(
            s.insert("t", vec![SqlValue::Int(1)]),
            Err(EngineError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.insert("t", vec![SqlValue::str("x"), SqlValue::str("a")]),
            Err(EngineError::ColumnTypeMismatch { .. })
        ));
    }

    #[test]
    fn null_is_admitted_by_every_column_type() {
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        assert!(s.insert("t", vec![SqlValue::Null, SqlValue::Null]).is_ok());
    }

    #[test]
    fn declared_keys_reject_duplicate_rows() {
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        s.insert("t", vec![SqlValue::Int(1), SqlValue::str("a")])
            .unwrap();
        s.insert("t", vec![SqlValue::Int(2), SqlValue::str("a")])
            .unwrap();
        let err = s
            .insert("t", vec![SqlValue::Int(1), SqlValue::str("b")])
            .unwrap_err();
        assert!(
            matches!(&err, EngineError::DuplicateKey { table, key }
                if table == "t" && key == &vec![SqlValue::Int(1)]),
            "got: {}",
            err
        );
        assert_eq!(s.table("t").unwrap().len(), 2, "the duplicate is rejected");
    }

    #[test]
    fn null_keys_and_keyless_tables_admit_repeats() {
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        // NULL never collides with NULL (SQL UNIQUE semantics).
        s.insert("t", vec![SqlValue::Null, SqlValue::str("a")])
            .unwrap();
        s.insert("t", vec![SqlValue::Null, SqlValue::str("b")])
            .unwrap();
        // A table without a key accepts fully duplicate rows.
        s.create_table(TableDef::new("bag", vec![("x", ColumnType::Int)]))
            .unwrap();
        s.insert("bag", vec![SqlValue::Int(7)]).unwrap();
        s.insert("bag", vec![SqlValue::Int(7)]).unwrap();
        assert_eq!(s.table("bag").unwrap().len(), 2);
    }

    #[test]
    fn the_columnar_view_transposes_rows_and_tracks_inserts() {
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        s.insert("t", vec![SqlValue::Int(1), SqlValue::str("a")])
            .unwrap();
        {
            let cols = s.table("t").unwrap().columnar();
            assert_eq!(cols.len(), 2);
            assert_eq!(*cols[0], vec![SqlValue::Int(1)]);
            assert_eq!(*cols[1], vec![SqlValue::str("a")]);
        }
        // Inserting invalidates the cached view.
        s.insert("t", vec![SqlValue::Int(2), SqlValue::str("b")])
            .unwrap();
        let cols = s.table("t").unwrap().columnar();
        assert_eq!(*cols[0], vec![SqlValue::Int(1), SqlValue::Int(2)]);
    }

    #[test]
    fn duplicate_table_creation_fails() {
        let mut s = Storage::new();
        s.create_table(def()).unwrap();
        assert!(matches!(
            s.create_table(def()),
            Err(EngineError::TableExists(_))
        ));
    }

    #[test]
    fn missing_table_lookup_fails() {
        let s = Storage::new();
        assert!(matches!(s.table("nope"), Err(EngineError::NoSuchTable(_))));
    }

    #[test]
    fn columnar_result_round_trips_through_rows() {
        let rs = ResultSet {
            columns: vec!["a".to_string(), "b".to_string()],
            rows: vec![
                vec![SqlValue::Int(1), SqlValue::str("x")],
                vec![SqlValue::Int(2), SqlValue::str("y")],
            ],
        };
        let cr = ColumnarResult::from_result_set(rs.clone());
        assert_eq!(cr.len(), 2);
        assert_eq!(cr.width(), 2);
        assert_eq!(cr.value(1, "b"), Some(&SqlValue::str("y")));
        assert_eq!(
            **cr.column_by_name("a").unwrap(),
            vec![SqlValue::Int(1), SqlValue::Int(2)]
        );
        // Cloning shares columns (refcount bump), and both transposes are
        // mutually inverse.
        assert_eq!(cr.clone().into_result_set(), rs);
        assert_eq!(
            ColumnarResult::from_result_set(cr.clone().into_result_set()),
            cr
        );
    }

    #[test]
    fn result_set_accessors() {
        let rs = ResultSet {
            columns: vec!["a".to_string(), "b".to_string()],
            rows: vec![vec![SqlValue::Int(1), SqlValue::str("x")]],
        };
        assert_eq!(rs.value(0, "b"), Some(&SqlValue::str("x")));
        assert_eq!(rs.value(0, "c"), None);
        assert_eq!(rs.len(), 1);
        let text = rs.to_text_table();
        assert!(text.contains('a'));
        assert!(text.contains("'x'"));
    }
}
