//! Query execution.
//!
//! [`Engine`] offers two execution paths:
//!
//! * the **vectorized default** — [`Engine::prepare`] compiles the AST into a
//!   [`PhysicalPlan`] once and [`Engine::execute_plan`] runs it column-wise
//!   (see [`crate::plan`] and [`crate::vexec`]); [`Engine::execute`] chains
//!   the two for ad-hoc queries;
//! * the **interpreter** — [`Engine::execute_interpreted`] evaluates the AST
//!   directly, re-deriving its join strategy on every call. It is kept as
//!   the executable oracle the vectorized path is differentially tested
//!   against.
//!
//! The interpreter performs the planning PostgreSQL would do for the query
//! shapes the translation emits:
//!
//! * `FROM` lists are joined left to right, using **hash joins** for
//!   equi-join conjuncts and falling back to nested-loop (cross product)
//!   joins otherwise — this is what makes the relative performance of
//!   shredding vs. loop-lifting comparable to the paper's PostgreSQL numbers,
//!   where loop-lifting's `ROW_NUMBER` over a cross product is the pathology.
//! * `WHERE` conjuncts are applied as soon as every alias they mention is
//!   bound (predicate pushdown within the join loop).
//! * `ROW_NUMBER() OVER (ORDER BY …)` is computed per select block after the
//!   join, with a deterministic total order.
//! * `WITH` binds a named result set used by `FROM` references.
//! * `EXISTS` subqueries are evaluated with correlation to the enclosing row.

use crate::ast::{BinOp, Expr, FromItem, Query, Select, TableSource};
use crate::delta::{StorageDelta, WriteBatch};
use crate::error::EngineError;
use crate::plan::PhysicalPlan;
use crate::storage::{ColumnarResult, ResultSet, Storage};
use crate::value::{compare_rows, ParamValues, Row, SqlValue};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A SQL engine: storage plus an execution entry point.
///
/// An `Engine` is `Send + Sync`: storage sits behind an `RwLock`, so any
/// number of concurrent executions share read guards (the lazily built
/// columnar views sit behind version-stamped cells and the plan counter is
/// atomic) while write batches ([`Engine::apply_batch`]) take the write
/// lock. One engine instance — typically behind an `Arc` — serves any
/// number of threads concurrently.
#[derive(Debug, Default)]
pub struct Engine {
    storage: RwLock<Storage>,
    plans_built: AtomicU64,
}

impl Clone for Engine {
    fn clone(&self) -> Engine {
        Engine {
            storage: RwLock::new(self.storage().clone()),
            plans_built: AtomicU64::new(self.plans_built.load(Ordering::Relaxed)),
        }
    }
}

impl Engine {
    /// An engine over empty storage.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine over existing storage.
    pub fn with_storage(storage: Storage) -> Engine {
        Engine {
            storage: RwLock::new(storage),
            plans_built: AtomicU64::new(0),
        }
    }

    /// A read guard over the engine's storage. Any number of guards may be
    /// live at once; a write batch waits for them to drop.
    pub fn storage(&self) -> RwLockReadGuard<'_, Storage> {
        self.storage.read().expect("engine storage lock")
    }

    /// A write guard over the engine's storage, for callers that stage
    /// validation, subscription maintenance and commit under one exclusion
    /// span.
    pub fn storage_mut(&self) -> RwLockWriteGuard<'_, Storage> {
        self.storage.write().expect("engine storage lock")
    }

    /// Validate and commit a write batch under the storage write lock,
    /// returning the typed [`StorageDelta`] it induced (see
    /// [`Storage::apply_batch`]).
    pub fn apply_batch(&self, batch: &WriteBatch) -> Result<StorageDelta, EngineError> {
        self.storage_mut().apply_batch(batch)
    }

    /// Compile a query AST into a physical plan, consulting storage for
    /// table layouts and cardinalities (the hash-join build-side choice).
    /// The returned plan can be executed any number of times with
    /// [`execute_plan`](Engine::execute_plan) without re-planning.
    pub fn prepare(&self, query: &Query) -> Result<PhysicalPlan, EngineError> {
        self.plans_built.fetch_add(1, Ordering::Relaxed);
        crate::plan::plan_query(query, &*self.storage())
    }

    /// Run a pre-compiled, parameter-free physical plan on the vectorized
    /// executor, producing a columnar result.
    pub fn execute_plan(&self, plan: &PhysicalPlan) -> Result<ColumnarResult, EngineError> {
        crate::vexec::execute_plan(plan, &self.storage())
    }

    /// Run a pre-compiled physical plan with bound values for its param
    /// slots (`:name` placeholders). Binding happens at evaluation time —
    /// re-executing the same plan with different bindings does zero parsing
    /// or planning work.
    pub fn execute_plan_bound(
        &self,
        plan: &PhysicalPlan,
        params: &ParamValues,
    ) -> Result<ColumnarResult, EngineError> {
        crate::vexec::execute_plan_bound(plan, &self.storage(), params)
    }

    /// Like [`execute_plan_bound`](Engine::execute_plan_bound), but also
    /// collect per-operator actuals (batches, rows, inclusive elapsed time)
    /// for every plan node. Pair the returned profile with
    /// [`PhysicalPlan::render_analyzed`] for an `EXPLAIN ANALYZE` tree.
    pub fn execute_plan_profiled(
        &self,
        plan: &PhysicalPlan,
        params: &ParamValues,
    ) -> Result<(ColumnarResult, crate::vexec::PlanProfile), EngineError> {
        crate::vexec::execute_plan_profiled(plan, &self.storage(), params)
    }

    /// Like [`execute_plan_bound`](Engine::execute_plan_bound), but with
    /// explicit [`ExecOptions`]: `workers > 1` fans bounded morsels across
    /// a scoped worker pool (see [`crate::par`]), returning the same result
    /// the sequential path produces plus per-morsel [`ExecStats`].
    /// `workers == 1` is exactly the sequential executor.
    pub fn execute_plan_bound_opts(
        &self,
        plan: &PhysicalPlan,
        params: &ParamValues,
        opts: crate::par::ExecOptions,
    ) -> Result<(ColumnarResult, crate::par::ExecStats), EngineError> {
        crate::par::execute_plan_bound_opts(plan, &self.storage(), params, opts)
    }

    /// Like [`execute_plan_bound_opts`](Engine::execute_plan_bound_opts),
    /// but with pre-bound `WITH` results: each `(name, result)` pair is
    /// visible to free `CteScan`s of that name inside the plan. This is the
    /// execution path for package-level shared subplans (cross-stage CSE) —
    /// the shared definition runs once and its columnar result is re-bound,
    /// zero-copy, under each consuming stage's CTE name.
    pub fn execute_plan_bound_ctes_opts(
        &self,
        plan: &PhysicalPlan,
        params: &ParamValues,
        ctes: &[(String, ColumnarResult)],
        opts: crate::par::ExecOptions,
    ) -> Result<(ColumnarResult, crate::par::ExecStats), EngineError> {
        crate::par::execute_plan_bound_ctes_opts(plan, &self.storage(), params, ctes, opts)
    }

    /// Like [`execute_plan_profiled`](Engine::execute_plan_profiled), but
    /// with explicit [`ExecOptions`]. Under parallelism the per-operator
    /// actuals are aggregated atomically across workers, so `rows_out` and
    /// batch counts stay exact.
    pub fn execute_plan_profiled_opts(
        &self,
        plan: &PhysicalPlan,
        params: &ParamValues,
        opts: crate::par::ExecOptions,
    ) -> Result<
        (
            ColumnarResult,
            crate::vexec::PlanProfile,
            crate::par::ExecStats,
        ),
        EngineError,
    > {
        crate::par::execute_plan_profiled_opts(plan, &self.storage(), params, opts)
    }

    /// Execute a query AST: plan it and run the plan on the vectorized
    /// executor (the default path). Callers that execute the same query
    /// repeatedly should [`prepare`](Engine::prepare) once instead.
    pub fn execute(&self, query: &Query) -> Result<ColumnarResult, EngineError> {
        let plan = self.prepare(query)?;
        self.execute_plan(&plan)
    }

    /// Plan and execute a query AST with bound values for its `:name`
    /// placeholders.
    pub fn execute_bound(
        &self,
        query: &Query,
        params: &ParamValues,
    ) -> Result<ColumnarResult, EngineError> {
        let plan = self.prepare(query)?;
        self.execute_plan_bound(&plan, params)
    }

    /// Execute a query AST on the row-at-a-time interpreter. This is the
    /// original execution path, kept as the oracle the vectorized executor
    /// is differentially tested against.
    pub fn execute_interpreted(&self, query: &Query) -> Result<ResultSet, EngineError> {
        self.execute_interpreted_bound(query, &ParamValues::new())
    }

    /// Execute a query AST on the interpreter with bound values for its
    /// `:name` placeholders (the interpreter-side counterpart of
    /// [`execute_plan_bound`](Engine::execute_plan_bound)).
    pub fn execute_interpreted_bound(
        &self,
        query: &Query,
        params: &ParamValues,
    ) -> Result<ResultSet, EngineError> {
        let storage = self.storage();
        let ctx = ExecCtx {
            storage: &storage,
            params,
        };
        exec_query(query, &ctx, &CteEnv::default(), &Scope::default())
    }

    /// Parse and execute a SQL string (the dialect produced by the printer),
    /// transposed into a row-major result set — text consumers want rows.
    pub fn execute_sql(&self, sql: &str) -> Result<ResultSet, EngineError> {
        let query = crate::parser::parse_query(sql)?;
        self.execute(&query).map(ColumnarResult::into_result_set)
    }

    /// How many physical plans this engine has built (via
    /// [`prepare`](Engine::prepare) or ad-hoc [`execute`](Engine::execute)).
    /// Sessions that cache prepared plans assert this stays flat across
    /// repeat executions (including concurrent ones: the counter is atomic).
    pub fn plans_built(&self) -> u64 {
        self.plans_built.load(Ordering::Relaxed)
    }
}

/// Execution context: shared immutable state.
struct ExecCtx<'a> {
    storage: &'a Storage,
    params: &'a ParamValues,
}

/// Environment of `WITH`-bound result sets, innermost last.
#[derive(Default, Clone)]
struct CteEnv {
    bindings: Vec<(String, ResultSet)>,
}

impl CteEnv {
    fn lookup(&self, name: &str) -> Option<&ResultSet> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, rs)| rs)
    }

    fn extended(&self, name: &str, rs: ResultSet) -> CteEnv {
        let mut bindings = self.bindings.clone();
        bindings.push((name.to_string(), rs));
        CteEnv { bindings }
    }
}

/// A scope of bound row frames, used for correlated subquery evaluation. The
/// outermost frames come first; lookup searches innermost first.
#[derive(Default, Clone)]
struct Scope {
    frames: Vec<Frame>,
}

#[derive(Clone)]
struct Frame {
    alias: String,
    columns: Vec<String>,
    row: Row,
}

impl Scope {
    fn extended_with(&self, frames: Vec<Frame>) -> Scope {
        let mut all = self.frames.clone();
        all.extend(frames);
        Scope { frames: all }
    }

    fn lookup(&self, table: &Option<String>, column: &str) -> Result<SqlValue, EngineError> {
        match table {
            Some(alias) => {
                for frame in self.frames.iter().rev() {
                    if &frame.alias == alias {
                        if let Some(idx) = frame.columns.iter().position(|c| c == column) {
                            return Ok(frame.row[idx].clone());
                        }
                        return Err(EngineError::UnknownColumn {
                            qualifier: Some(alias.clone()),
                            name: column.to_string(),
                        });
                    }
                }
                Err(EngineError::UnknownAlias(alias.clone()))
            }
            None => {
                let mut found: Option<SqlValue> = None;
                for frame in self.frames.iter().rev() {
                    if let Some(idx) = frame.columns.iter().position(|c| c == column) {
                        if found.is_some() {
                            return Err(EngineError::AmbiguousColumn(column.to_string()));
                        }
                        found = Some(frame.row[idx].clone());
                    }
                }
                found.ok_or_else(|| EngineError::UnknownColumn {
                    qualifier: None,
                    name: column.to_string(),
                })
            }
        }
    }
}

/// A relation bound in the `FROM` clause, fully materialised.
struct BoundRelation {
    alias: String,
    columns: Vec<String>,
    rows: Vec<Row>,
}

fn exec_query(
    query: &Query,
    ctx: &ExecCtx<'_>,
    ctes: &CteEnv,
    outer: &Scope,
) -> Result<ResultSet, EngineError> {
    match query {
        Query::Select(s) => exec_select(s, ctx, ctes, outer),
        Query::UnionAll(branches) => {
            let mut iter = branches.iter();
            let first = iter
                .next()
                .ok_or_else(|| EngineError::TypeError("empty UNION ALL".to_string()))?;
            let mut acc = exec_query(first, ctx, ctes, outer)?;
            for branch in iter {
                let next = exec_query(branch, ctx, ctes, outer)?;
                if next.columns.len() != acc.columns.len() {
                    return Err(EngineError::TypeError(format!(
                        "UNION ALL branches have {} and {} columns",
                        acc.columns.len(),
                        next.columns.len()
                    )));
                }
                acc.rows.extend(next.rows);
            }
            Ok(acc)
        }
        Query::ExceptAll(left, right) => {
            let left_rs = exec_query(left, ctx, ctes, outer)?;
            let right_rs = exec_query(right, ctx, ctes, outer)?;
            let mut counts: HashMap<Row, usize> = HashMap::new();
            for row in right_rs.rows {
                *counts.entry(row).or_insert(0) += 1;
            }
            let mut rows = Vec::new();
            for row in left_rs.rows {
                match counts.get_mut(&row) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => rows.push(row),
                }
            }
            Ok(ResultSet {
                columns: left_rs.columns,
                rows,
            })
        }
        Query::With {
            name,
            definition,
            body,
        } => {
            let bound = exec_select(definition, ctx, ctes, outer)?;
            let extended = ctes.extended(name, bound);
            exec_query(body, ctx, &extended, outer)
        }
    }
}

fn exec_select(
    select: &Select,
    ctx: &ExecCtx<'_>,
    ctes: &CteEnv,
    outer: &Scope,
) -> Result<ResultSet, EngineError> {
    // 1. Materialise the FROM relations.
    let relations = select
        .from
        .iter()
        .map(|f| bind_from_item(f, ctx, ctes, outer))
        .collect::<Result<Vec<_>, _>>()?;

    // 2. Split the WHERE clause into conjuncts and join.
    let conjuncts = select
        .where_clause
        .as_ref()
        .map(|w| w.conjuncts())
        .unwrap_or_default();
    let joined = join_relations(&relations, &conjuncts, ctx, ctes, outer)?;

    // 3. Precompute ROW_NUMBER assignments over the joined rows.
    let row_number_specs = collect_row_number_specs(select);
    let row_numbers =
        compute_row_numbers(&row_number_specs, &joined, &relations, ctx, ctes, outer)?;

    // 4. Project.
    let columns: Vec<String> = select.items.iter().map(|i| i.alias.clone()).collect();
    let mut out_rows = Vec::with_capacity(joined.len());
    let mut sort_keys: Vec<Vec<SqlValue>> = Vec::new();
    for (row_idx, combo) in joined.iter().enumerate() {
        let scope = scope_for(outer, &relations, combo);
        let numbering = RowNumbers {
            specs: &row_number_specs,
            values: row_numbers.get(row_idx).map(Vec::as_slice).unwrap_or(&[]),
        };
        let mut out = Vec::with_capacity(select.items.len());
        for item in &select.items {
            out.push(eval_expr(&item.expr, &scope, ctx, ctes, Some(&numbering))?);
        }
        if !select.order_by.is_empty() {
            let mut key = Vec::with_capacity(select.order_by.len());
            for k in &select.order_by {
                key.push(eval_expr(k, &scope, ctx, ctes, Some(&numbering))?);
            }
            sort_keys.push(key);
        }
        out_rows.push(out);
    }

    // 5. ORDER BY: a stable sort over the precomputed keys. The permutation
    //    is applied by moving each row exactly once — no per-row clones.
    if !select.order_by.is_empty() {
        let mut indexed: Vec<(usize, Row)> = out_rows.into_iter().enumerate().collect();
        indexed.sort_by(|(a, _), (b, _)| compare_rows(&sort_keys[*a], &sort_keys[*b]));
        out_rows = indexed.into_iter().map(|(_, row)| row).collect();
    }

    // 6. DISTINCT.
    if select.distinct {
        let mut seen = std::collections::HashSet::new();
        out_rows.retain(|r| seen.insert(r.clone()));
    }

    Ok(ResultSet {
        columns,
        rows: out_rows,
    })
}

fn bind_from_item(
    item: &FromItem,
    ctx: &ExecCtx<'_>,
    ctes: &CteEnv,
    outer: &Scope,
) -> Result<BoundRelation, EngineError> {
    let (columns, rows) = match &item.source {
        TableSource::Named(name) => {
            if let Some(rs) = ctes.lookup(name) {
                (rs.columns.clone(), rs.rows.clone())
            } else {
                let table = ctx.storage.table(name)?;
                (table.def.column_names(), table.rows.clone())
            }
        }
        TableSource::Subquery(q) => {
            let rs = exec_query(q, ctx, ctes, outer)?;
            (rs.columns, rs.rows)
        }
    };
    Ok(BoundRelation {
        alias: item.alias.clone(),
        columns,
        rows,
    })
}

/// Join the FROM relations left to right, using a hash join whenever an
/// equi-join conjunct connects the next relation to the rows joined so far,
/// and applying every conjunct as soon as all its aliases are bound.
///
/// The joined result is a vector of index combinations: `combo[i]` is the row
/// index into `relations[i]`.
fn join_relations(
    relations: &[BoundRelation],
    conjuncts: &[Expr],
    ctx: &ExecCtx<'_>,
    ctes: &CteEnv,
    outer: &Scope,
) -> Result<Vec<Vec<usize>>, EngineError> {
    let from_aliases: Vec<&str> = relations.iter().map(|r| r.alias.as_str()).collect();
    let mut pending: Vec<Expr> = conjuncts.to_vec();
    // Rows joined so far, as index combinations into the bound relations.
    let mut joined: Vec<Vec<usize>> = vec![Vec::new()];
    let mut bound_aliases: Vec<String> = Vec::new();

    for (rel_idx, rel) in relations.iter().enumerate() {
        // Partition pending conjuncts into equi-join keys usable for a hash
        // join with this relation, conjuncts that become fully bound once this
        // relation is added, and the rest.
        let mut hash_keys: Vec<(Expr, Expr)> = Vec::new(); // (bound side, new side)
        let mut now_applicable: Vec<Expr> = Vec::new();
        let mut still_pending: Vec<Expr> = Vec::new();

        for conj in pending.drain(..) {
            let refs = conj.referenced_aliases();
            let from_refs: Vec<&String> = refs
                .iter()
                .filter(|a| from_aliases.contains(&a.as_str()))
                .collect();
            let all_bound_after = from_refs
                .iter()
                .all(|a| bound_aliases.contains(a) || *a == &rel.alias)
                && !conj.contains_unqualified_column()
                && !conj.contains_exists();
            if !all_bound_after {
                still_pending.push(conj);
                continue;
            }
            // Prefer using pure equi-joins as hash keys. One side must
            // reference only bound aliases and the other only the incoming
            // relation (the build side is evaluated in a scope holding just
            // that relation's frame, so a mixed-side expression like
            // `b.y + a.z` must stay a filter — the planner applies the same
            // rule).
            if let Expr::BinOp {
                op: BinOp::Eq,
                left,
                right,
            } = &conj
            {
                let l_refs = left.referenced_aliases();
                let r_refs = right.referenced_aliases();
                let l_new = l_refs.iter().any(|a| a == &rel.alias);
                let r_new = r_refs.iter().any(|a| a == &rel.alias);
                let l_bound_only = l_refs.iter().all(|a| bound_aliases.contains(a));
                let r_bound_only = r_refs.iter().all(|a| bound_aliases.contains(a));
                let l_new_only = l_refs.iter().all(|a| a == &rel.alias);
                let r_new_only = r_refs.iter().all(|a| a == &rel.alias);
                if l_bound_only && r_new && r_new_only && !l_new && !bound_aliases.is_empty() {
                    hash_keys.push(((**left).clone(), (**right).clone()));
                    continue;
                }
                if r_bound_only && l_new && l_new_only && !r_new && !bound_aliases.is_empty() {
                    hash_keys.push(((**right).clone(), (**left).clone()));
                    continue;
                }
            }
            now_applicable.push(conj);
        }
        pending = still_pending;

        let next = if !hash_keys.is_empty() {
            hash_join(&joined, relations, rel_idx, &hash_keys, ctx, ctes, outer)?
        } else {
            nested_loop_join(&joined, rel.rows.len())
        };

        bound_aliases.push(rel.alias.clone());

        // Apply the now-applicable conjuncts as filters.
        let mut filtered = Vec::with_capacity(next.len());
        'rows: for combo in next {
            let scope = scope_for(outer, &relations[..=rel_idx], &combo);
            for conj in &now_applicable {
                let v = eval_expr(conj, &scope, ctx, ctes, None)?;
                if v.as_bool() != Some(true) {
                    continue 'rows;
                }
            }
            filtered.push(combo);
        }
        joined = filtered;
    }

    // Apply any remaining conjuncts (correlated EXISTS, unqualified columns).
    if !pending.is_empty() {
        let mut filtered = Vec::with_capacity(joined.len());
        'rows2: for combo in joined {
            let scope = scope_for(outer, relations, &combo);
            for conj in &pending {
                let v = eval_expr(conj, &scope, ctx, ctes, None)?;
                if v.as_bool() != Some(true) {
                    continue 'rows2;
                }
            }
            filtered.push(combo);
        }
        joined = filtered;
    }

    Ok(joined)
}

fn nested_loop_join(joined: &[Vec<usize>], new_len: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::with_capacity(joined.len() * new_len.max(1));
    for combo in joined {
        for i in 0..new_len {
            let mut c = combo.clone();
            c.push(i);
            out.push(c);
        }
    }
    out
}

fn hash_join(
    joined: &[Vec<usize>],
    relations: &[BoundRelation],
    rel_idx: usize,
    keys: &[(Expr, Expr)],
    ctx: &ExecCtx<'_>,
    ctes: &CteEnv,
    outer: &Scope,
) -> Result<Vec<Vec<usize>>, EngineError> {
    let rel = &relations[rel_idx];
    // Build: hash each row of the new relation by its key values.
    let mut table: HashMap<Vec<SqlValue>, Vec<usize>> = HashMap::new();
    for (i, row) in rel.rows.iter().enumerate() {
        let frame = Frame {
            alias: rel.alias.clone(),
            columns: rel.columns.clone(),
            row: row.clone(),
        };
        let scope = outer.extended_with(vec![frame]);
        let mut key = Vec::with_capacity(keys.len());
        let mut has_null = false;
        for (_, new_side) in keys {
            let v = eval_expr(new_side, &scope, ctx, ctes, None)?;
            if v.is_null() {
                has_null = true;
            }
            key.push(v);
        }
        if !has_null {
            table.entry(key).or_default().push(i);
        }
    }
    // Probe with the rows joined so far.
    let mut out = Vec::new();
    for combo in joined {
        let scope = scope_for(outer, &relations[..rel_idx], combo);
        let mut key = Vec::with_capacity(keys.len());
        let mut has_null = false;
        for (bound_side, _) in keys {
            let v = eval_expr(bound_side, &scope, ctx, ctes, None)?;
            if v.is_null() {
                has_null = true;
            }
            key.push(v);
        }
        if has_null {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for &i in matches {
                let mut c = combo.clone();
                c.push(i);
                out.push(c);
            }
        }
    }
    Ok(out)
}

fn scope_for(outer: &Scope, relations: &[BoundRelation], combo: &[usize]) -> Scope {
    let frames = relations
        .iter()
        .zip(combo.iter())
        .map(|(rel, &idx)| Frame {
            alias: rel.alias.clone(),
            columns: rel.columns.clone(),
            row: rel.rows[idx].clone(),
        })
        .collect();
    outer.extended_with(frames)
}

/// The distinct `ROW_NUMBER` window specifications of a select block (also
/// used by the physical planner).
pub(crate) fn collect_row_number_specs(select: &Select) -> Vec<Vec<Expr>> {
    fn collect(e: &Expr, acc: &mut Vec<Vec<Expr>>) {
        match e {
            Expr::RowNumber { order_by } if !acc.contains(order_by) => {
                acc.push(order_by.clone());
            }
            Expr::BinOp { left, right, .. } => {
                collect(left, acc);
                collect(right, acc);
            }
            Expr::Not(inner) => collect(inner, acc),
            _ => {}
        }
    }
    let mut acc = Vec::new();
    for item in &select.items {
        collect(&item.expr, &mut acc);
    }
    acc
}

/// For each joined row, the `ROW_NUMBER` value of each window specification.
fn compute_row_numbers(
    specs: &[Vec<Expr>],
    joined: &[Vec<usize>],
    relations: &[BoundRelation],
    ctx: &ExecCtx<'_>,
    ctes: &CteEnv,
    outer: &Scope,
) -> Result<Vec<Vec<i64>>, EngineError> {
    let mut out = vec![vec![0i64; specs.len()]; joined.len()];
    for (spec_idx, order_by) in specs.iter().enumerate() {
        // Evaluate the sort key of every row, sort (stably) and number.
        let mut keys: Vec<(usize, Vec<SqlValue>)> = Vec::with_capacity(joined.len());
        for (row_idx, combo) in joined.iter().enumerate() {
            let scope = scope_for(outer, relations, combo);
            let mut key = Vec::with_capacity(order_by.len());
            for k in order_by {
                key.push(eval_expr(k, &scope, ctx, ctes, None)?);
            }
            keys.push((row_idx, key));
        }
        keys.sort_by(|a, b| compare_rows(&a.1, &b.1));
        for (number, (row_idx, _)) in keys.into_iter().enumerate() {
            out[row_idx][spec_idx] = (number + 1) as i64;
        }
    }
    Ok(out)
}

/// `ROW_NUMBER` values for the current row, keyed by window specification.
struct RowNumbers<'a> {
    specs: &'a [Vec<Expr>],
    values: &'a [i64],
}

fn eval_expr(
    expr: &Expr,
    scope: &Scope,
    ctx: &ExecCtx<'_>,
    ctes: &CteEnv,
    row_numbers: Option<&RowNumbers<'_>>,
) -> Result<SqlValue, EngineError> {
    match expr {
        Expr::Column { table, column } => scope.lookup(table, column),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(name) => ctx
            .params
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnboundParameter(name.clone())),
        Expr::BinOp { op, left, right } => {
            let l = eval_expr(left, scope, ctx, ctes, row_numbers)?;
            let r = eval_expr(right, scope, ctx, ctes, row_numbers)?;
            eval_binop(*op, l, r)
        }
        Expr::Not(inner) => {
            let v = eval_expr(inner, scope, ctx, ctes, row_numbers)?;
            match v {
                SqlValue::Bool(b) => Ok(SqlValue::Bool(!b)),
                SqlValue::Null => Ok(SqlValue::Null),
                other => Err(EngineError::TypeError(format!(
                    "NOT applied to {}",
                    other.type_name()
                ))),
            }
        }
        Expr::Exists(q) => {
            let rs = exec_query(q, ctx, ctes, scope)?;
            Ok(SqlValue::Bool(!rs.is_empty()))
        }
        Expr::RowNumber { order_by } => match row_numbers {
            Some(rn) => {
                let idx =
                    rn.specs.iter().position(|s| s == order_by).ok_or_else(|| {
                        EngineError::TypeError("unplanned ROW_NUMBER".to_string())
                    })?;
                Ok(SqlValue::Int(rn.values[idx]))
            }
            None => Err(EngineError::TypeError(
                "ROW_NUMBER is only allowed in the select list".to_string(),
            )),
        },
    }
}

/// Scalar binary-operator semantics, shared between the interpreter and the
/// vectorized executor so the two paths cannot diverge.
pub(crate) fn eval_binop(op: BinOp, l: SqlValue, r: SqlValue) -> Result<SqlValue, EngineError> {
    use BinOp::*;
    // SQL three-valued logic, simplified: any NULL operand yields NULL except
    // for AND/OR short-circuit cases that are determined by the other operand.
    if l.is_null() || r.is_null() {
        return Ok(match op {
            And => {
                if l.as_bool() == Some(false) || r.as_bool() == Some(false) {
                    SqlValue::Bool(false)
                } else {
                    SqlValue::Null
                }
            }
            Or => {
                if l.as_bool() == Some(true) || r.as_bool() == Some(true) {
                    SqlValue::Bool(true)
                } else {
                    SqlValue::Null
                }
            }
            _ => SqlValue::Null,
        });
    }
    let type_err =
        |msg: &str| EngineError::TypeError(format!("{}: {} {} {}", msg, l, op.symbol(), r));
    match op {
        Eq => Ok(SqlValue::Bool(l.sql_eq(&r))),
        Neq => Ok(SqlValue::Bool(!l.sql_eq(&r))),
        Lt | Le | Gt | Ge => {
            if std::mem::discriminant(&l) != std::mem::discriminant(&r) {
                return Err(type_err("cannot compare"));
            }
            let c = l.sql_cmp(&r);
            let b = match op {
                Lt => c == std::cmp::Ordering::Less,
                Le => c != std::cmp::Ordering::Greater,
                Gt => c == std::cmp::Ordering::Greater,
                Ge => c != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(SqlValue::Bool(b))
        }
        And | Or => match (l.as_bool(), r.as_bool()) {
            (Some(a), Some(b)) => Ok(SqlValue::Bool(if op == And { a && b } else { a || b })),
            _ => Err(type_err("boolean operands required")),
        },
        Add | Sub | Mul | Div | Mod => match (l.as_int(), r.as_int()) {
            (Some(a), Some(b)) => {
                let v = match op {
                    Add => a.wrapping_add(b),
                    Sub => a.wrapping_sub(b),
                    Mul => a.wrapping_mul(b),
                    Div => {
                        if b == 0 {
                            return Err(EngineError::DivisionByZero);
                        }
                        a / b
                    }
                    Mod => {
                        if b == 0 {
                            return Err(EngineError::DivisionByZero);
                        }
                        a % b
                    }
                    _ => unreachable!(),
                };
                Ok(SqlValue::Int(v))
            }
            _ => Err(type_err("integer operands required")),
        },
        Concat => match (l.as_str(), r.as_str()) {
            (Some(a), Some(b)) => Ok(SqlValue::str(format!("{}{}", a, b))),
            _ => Err(type_err("text operands required")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{ColumnType, TableDef};

    fn engine() -> Engine {
        let mut storage = Storage::new();
        storage
            .create_table(
                TableDef::new(
                    "employees",
                    vec![
                        ("id", ColumnType::Int),
                        ("dept", ColumnType::Text),
                        ("name", ColumnType::Text),
                        ("salary", ColumnType::Int),
                    ],
                )
                .with_key(vec!["id"]),
            )
            .unwrap();
        storage
            .create_table(
                TableDef::new(
                    "tasks",
                    vec![
                        ("id", ColumnType::Int),
                        ("employee", ColumnType::Text),
                        ("task", ColumnType::Text),
                    ],
                )
                .with_key(vec!["id"]),
            )
            .unwrap();
        let employees = vec![
            (1, "Product", "Alex", 20000),
            (2, "Product", "Bert", 900),
            (3, "Research", "Cora", 50000),
            (4, "Sales", "Erik", 2000000),
        ];
        for (id, dept, name, salary) in employees {
            storage
                .insert(
                    "employees",
                    vec![
                        SqlValue::Int(id),
                        SqlValue::str(dept),
                        SqlValue::str(name),
                        SqlValue::Int(salary),
                    ],
                )
                .unwrap();
        }
        let tasks = vec![
            (1, "Alex", "build"),
            (2, "Bert", "build"),
            (3, "Cora", "abstract"),
        ];
        for (id, emp, task) in tasks {
            storage
                .insert(
                    "tasks",
                    vec![SqlValue::Int(id), SqlValue::str(emp), SqlValue::str(task)],
                )
                .unwrap();
        }
        Engine::with_storage(storage)
    }

    #[test]
    fn simple_filter() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "name"), "name")
                .from_named("employees", "e")
                .filter(Expr::binop(
                    BinOp::Gt,
                    Expr::col("e", "salary"),
                    Expr::lit(10000),
                )),
        );
        let rs = engine().execute(&q).unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn equi_join_uses_hash_join_and_matches() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "name"), "name")
                .item(Expr::col("t", "task"), "task")
                .from_named("employees", "e")
                .from_named("tasks", "t")
                .filter(Expr::eq(Expr::col("e", "name"), Expr::col("t", "employee"))),
        );
        let rs = engine().execute(&q).unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn cross_product_without_predicate() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("a", "id"), "x")
                .item(Expr::col("b", "id"), "y")
                .from_named("employees", "a")
                .from_named("employees", "b"),
        );
        let rs = engine().execute(&q).unwrap();
        assert_eq!(rs.len(), 16);
    }

    #[test]
    fn union_all_preserves_duplicates() {
        let s = Select::new()
            .item(Expr::col("e", "dept"), "dept")
            .from_named("employees", "e");
        let q = Query::UnionAll(vec![Query::select(s.clone()), Query::select(s)]);
        let rs = engine().execute(&q).unwrap();
        assert_eq!(rs.len(), 8);
    }

    #[test]
    fn except_all_is_bag_difference() {
        let all = Select::new()
            .item(Expr::col("e", "dept"), "dept")
            .from_named("employees", "e");
        let product = Select::new()
            .item(Expr::col("e", "dept"), "dept")
            .from_named("employees", "e")
            .filter(Expr::eq(Expr::col("e", "dept"), Expr::lit("Product")));
        let q = Query::ExceptAll(
            Box::new(Query::select(all)),
            Box::new(Query::select(product)),
        );
        let rs = engine().execute(&q).unwrap();
        // 4 rows minus the 2 Product rows.
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn with_binds_a_result_set() {
        let def = Select::new()
            .item(Expr::col("e", "name"), "n")
            .from_named("employees", "e")
            .filter(Expr::binop(
                BinOp::Lt,
                Expr::col("e", "salary"),
                Expr::lit(1000),
            ));
        let body = Query::select(
            Select::new()
                .item(Expr::col("q", "n"), "n")
                .from_named("q", "q"),
        );
        let q = Query::with("q", def, body);
        let rs = engine().execute(&q).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.value(0, "n"), Some(&SqlValue::str("Bert")));
    }

    #[test]
    fn row_number_is_deterministic_and_dense() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "name"), "name")
                .item(Expr::row_number(vec![Expr::col("e", "name")]), "rn")
                .from_named("employees", "e"),
        );
        let rs = engine().execute(&q).unwrap().into_result_set();
        // Alex < Bert < Cora < Erik alphabetically.
        let mut pairs: Vec<(String, i64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        pairs.sort_by_key(|(_, rn)| *rn);
        assert_eq!(
            pairs,
            vec![
                ("Alex".to_string(), 1),
                ("Bert".to_string(), 2),
                ("Cora".to_string(), 3),
                ("Erik".to_string(), 4)
            ]
        );
    }

    #[test]
    fn correlated_exists_subquery() {
        // Employees that have at least one task.
        let sub = Query::select(
            Select::new()
                .item(Expr::lit(1), "one")
                .from_named("tasks", "t")
                .filter(Expr::eq(Expr::col("t", "employee"), Expr::col("e", "name"))),
        );
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "name"), "name")
                .from_named("employees", "e")
                .filter(Expr::Exists(Box::new(sub))),
        );
        let rs = engine().execute(&q).unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn not_exists_subquery() {
        let sub = Query::select(
            Select::new()
                .item(Expr::lit(1), "one")
                .from_named("tasks", "t")
                .filter(Expr::eq(Expr::col("t", "employee"), Expr::col("e", "name"))),
        );
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "name"), "name")
                .from_named("employees", "e")
                .filter(Expr::not(Expr::Exists(Box::new(sub)))),
        );
        let rs = engine().execute(&q).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.value(0, "name"), Some(&SqlValue::str("Erik")));
    }

    #[test]
    fn order_by_sorts_output() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "name"), "name")
                .from_named("employees", "e")
                .order_by(Expr::col("e", "salary")),
        );
        let rs = engine().execute(&q).unwrap();
        assert_eq!(rs.value(0, "name"), Some(&SqlValue::str("Bert")));
        assert_eq!(rs.value(3, "name"), Some(&SqlValue::str("Erik")));
    }

    #[test]
    fn distinct_removes_duplicates() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "dept"), "dept")
                .from_named("employees", "e")
                .distinct(),
        );
        let rs = engine().execute(&q).unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn subquery_in_from_clause() {
        let inner = Query::select(
            Select::new()
                .item(Expr::col("e", "dept"), "dept")
                .item(Expr::col("e", "salary"), "salary")
                .from_named("employees", "e"),
        );
        let q = Query::select(
            Select::new()
                .item(Expr::col("s", "dept"), "dept")
                .from_item(TableSource::Subquery(Box::new(inner)), "s")
                .filter(Expr::binop(
                    BinOp::Ge,
                    Expr::col("s", "salary"),
                    Expr::lit(50000),
                )),
        );
        let rs = engine().execute(&q).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "missing"), "x")
                .from_named("employees", "e"),
        );
        assert!(matches!(
            engine().execute(&q),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn unknown_table_is_an_error() {
        let q = Query::select(
            Select::new()
                .item(Expr::lit(1), "x")
                .from_named("missing", "m"),
        );
        assert!(matches!(
            engine().execute(&q),
            Err(EngineError::NoSuchTable(_))
        ));
    }

    #[test]
    fn null_comparisons_filter_rows_out() {
        let mut storage = Storage::new();
        storage
            .create_table(TableDef::new("t", vec![("a", ColumnType::Int)]))
            .unwrap();
        storage.insert("t", vec![SqlValue::Null]).unwrap();
        storage.insert("t", vec![SqlValue::Int(1)]).unwrap();
        let engine = Engine::with_storage(storage);
        let q = Query::select(
            Select::new()
                .item(Expr::col("t", "a"), "a")
                .from_named("t", "t")
                .filter(Expr::eq(Expr::col("t", "a"), Expr::lit(1))),
        );
        let rs = engine.execute(&q).unwrap();
        assert_eq!(rs.len(), 1);
    }
}
