//! Vectorized execution of [`PhysicalPlan`] trees over columnar batches.
//!
//! Where the interpreter in [`crate::exec`] walks the AST row by row —
//! cloning a scope frame per joined row combination — this executor runs a
//! pre-compiled plan over a columnar representation:
//!
//! * a [`Batch`] holds one `Vec<SqlValue>` per column, shared by `Arc` so
//!   table scans and CTE references are zero-copy and batches are
//!   `Send + Sync` (plans execute against `&Storage` with no interior
//!   mutation, so any number of threads can run plans over one engine),
//! * filters and sorts produce **selection vectors** instead of moving data,
//! * expressions are evaluated column-at-a-time ([`VExpr::Col`] is a resolved
//!   position, so there is no name lookup per row),
//! * only joins, projections and row-numbering materialise new columns.
//!
//! Correlated subqueries (`EXISTS`, semi/anti joins) necessarily fall back to
//! one subplan execution per outer row; the row's values are pushed as a
//! scope frame that the subplan's [`VExpr::Outer`] references resolve
//! against, mirroring the interpreter's correlation semantics exactly. The
//! interpreter remains the executable oracle this module is differentially
//! tested against (see `tests/vexec_differential.rs`).

use crate::error::EngineError;
use crate::exec::eval_binop;
use crate::plan::{BuildSide, OpActuals, PhysicalPlan, VExpr};
use crate::storage::{ColumnarResult, Storage};
use crate::value::{compare_rows, ParamValues, Row, SqlValue};
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Execute a parameter-free physical plan against storage, producing a
/// columnar result.
pub fn execute_plan(plan: &PhysicalPlan, storage: &Storage) -> Result<ColumnarResult, EngineError> {
    execute_plan_bound(plan, storage, &ParamValues::new())
}

/// Execute a physical plan against storage with bound values for its param
/// slots. The plan itself is immutable — the same compiled plan can be run
/// any number of times with different bindings and no re-planning. The
/// result stays columnar: the batch's `Arc`-shared columns are handed over
/// without a row-major transpose (see [`ColumnarResult`]).
pub fn execute_plan_bound(
    plan: &PhysicalPlan,
    storage: &Storage,
    params: &ParamValues,
) -> Result<ColumnarResult, EngineError> {
    let ctx = VecCtx {
        storage,
        params,
        prof: None,
    };
    let batch = exec(plan, &ctx, &CteEnv::default(), &ScopeStack::default())?;
    Ok(batch.into_columnar())
}

/// Per-operator actuals for one profiled plan execution, indexed by the
/// node's pre-order index in [`PhysicalPlan::nodes`]. Feed `ops` to
/// [`PhysicalPlan::render_analyzed`] for an `EXPLAIN ANALYZE`-style tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanProfile {
    pub ops: Vec<OpActuals>,
}

/// Like [`execute_plan_bound`], but with per-operator profiling: every
/// `exec` of a plan node additionally accumulates its batch count, output
/// rows and inclusive wall time into a [`PlanProfile`]. The result path is
/// unchanged (same zero-copy columnar hand-over); the only per-node overhead
/// is two `Instant` reads and a pointer-keyed map lookup.
pub fn execute_plan_profiled(
    plan: &PhysicalPlan,
    storage: &Storage,
    params: &ParamValues,
) -> Result<(ColumnarResult, PlanProfile), EngineError> {
    let nodes = plan.nodes();
    let prof = Profiler {
        ids: nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (*n as *const PhysicalPlan as usize, i))
            .collect(),
        cells: (0..nodes.len()).map(|_| ProfCell::default()).collect(),
    };
    let ctx = VecCtx {
        storage,
        params,
        prof: Some(&prof),
    };
    let batch = exec(plan, &ctx, &CteEnv::default(), &ScopeStack::default())?;
    let result = batch.into_columnar();

    let rows_out: Vec<u64> = prof.cells.iter().map(|c| c.rows_out.get()).collect();
    let ops = nodes
        .iter()
        .enumerate()
        .map(|(i, node)| OpActuals {
            batches: prof.cells[i].batches.get(),
            // Actual input rows = what the direct children actually produced
            // (every child execution is triggered by this node).
            rows_in: node
                .children()
                .iter()
                .map(|ch| rows_out[prof.ids[&(*ch as *const PhysicalPlan as usize)]])
                .sum(),
            rows_out: rows_out[i],
            nanos: prof.cells[i].nanos.get(),
        })
        .collect();
    Ok((result, PlanProfile { ops }))
}

/// Accumulator for per-node actuals, keyed by node address (unique within
/// one plan tree). `Cell`s, not atomics: one profiler belongs to exactly one
/// single-threaded plan execution.
struct Profiler {
    ids: HashMap<usize, usize>,
    cells: Vec<ProfCell>,
}

#[derive(Default)]
struct ProfCell {
    batches: Cell<u64>,
    rows_out: Cell<u64>,
    nanos: Cell<u64>,
}

/// One column of a batch schema: binding alias (absent after projection) and
/// column name.
type SchemaCol = (Option<String>, String);

/// A columnar batch: a schema, shared column vectors and an optional
/// selection vector picking the live rows.
#[derive(Debug, Clone)]
pub struct Batch {
    schema: Arc<Vec<SchemaCol>>,
    columns: Vec<Arc<Vec<SqlValue>>>,
    sel: Option<Arc<Vec<usize>>>,
    /// Number of physical rows in `columns` (needed explicitly because a
    /// batch may have zero columns but a positive row count).
    base_rows: usize,
}

impl Batch {
    /// Number of live (selected) rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(sel) => sel.len(),
            None => self.base_rows,
        }
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical row index of logical row `i`.
    fn phys(&self, i: usize) -> usize {
        match &self.sel {
            Some(sel) => sel[i],
            None => i,
        }
    }

    /// The values of logical row `i`, gathered across columns.
    fn row(&self, i: usize) -> Row {
        let p = self.phys(i);
        self.columns.iter().map(|c| c[p].clone()).collect()
    }

    /// Gather one column into a dense vector (respecting the selection).
    fn gather(&self, col: usize) -> Vec<SqlValue> {
        let data = &self.columns[col];
        match &self.sel {
            None => data.as_ref().clone(),
            Some(sel) => sel.iter().map(|&p| data[p].clone()).collect(),
        }
    }

    /// Compact the selection away so columns can be extended or shared.
    fn materialised(&self) -> Batch {
        match &self.sel {
            None => self.clone(),
            Some(_) => Batch {
                schema: self.schema.clone(),
                columns: (0..self.columns.len())
                    .map(|c| Arc::new(self.gather(c)))
                    .collect(),
                sel: None,
                base_rows: self.len(),
            },
        }
    }

    /// Rebuild a batch from explicit rows (used by the set operations).
    fn from_rows(schema: Arc<Vec<SchemaCol>>, rows: Vec<Row>) -> Batch {
        let width = schema.len();
        let base_rows = rows.len();
        let mut columns: Vec<Vec<SqlValue>> =
            (0..width).map(|_| Vec::with_capacity(base_rows)).collect();
        for row in rows {
            for (c, v) in row.into_iter().enumerate() {
                columns[c].push(v);
            }
        }
        Batch {
            schema,
            columns: columns.into_iter().map(Arc::new).collect(),
            sel: None,
            base_rows,
        }
    }

    /// Hand the batch over as a [`ColumnarResult`]: compact the selection
    /// if there is one, then move the `Arc`-shared columns out. When the
    /// batch is already dense (no selection vector) this is zero-copy.
    fn into_columnar(self) -> ColumnarResult {
        let compact = match self.sel {
            None => self,
            Some(_) => self.materialised(),
        };
        let columns = compact.schema.iter().map(|(_, c)| c.clone()).collect();
        ColumnarResult::new(columns, compact.columns, compact.base_rows)
    }
}

/// Execution context shared by every node.
struct VecCtx<'a> {
    storage: &'a Storage,
    params: &'a ParamValues,
    /// Per-operator profiler; `None` keeps execution on the unprofiled path
    /// (the only cost is this `Option` check per node execution).
    prof: Option<&'a Profiler>,
}

/// Runtime environment of `WITH`-bound batches, innermost last. Cloning is
/// cheap: batches share their columns by `Arc`.
#[derive(Default, Clone)]
struct CteEnv {
    bindings: Vec<(String, Batch)>,
}

impl CteEnv {
    fn lookup(&self, name: &str) -> Option<&Batch> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b)
    }

    fn extended(&self, name: &str, batch: Batch) -> CteEnv {
        let mut bindings = self.bindings.clone();
        bindings.push((name.to_string(), batch));
        CteEnv { bindings }
    }
}

/// The scope stack for correlated subqueries: one frame per enclosing row,
/// innermost last.
#[derive(Default, Clone)]
struct ScopeStack {
    frames: Vec<ScopeFrame>,
}

#[derive(Clone)]
struct ScopeFrame {
    schema: Arc<Vec<SchemaCol>>,
    values: Row,
}

impl ScopeStack {
    fn pushed(&self, frame: ScopeFrame) -> ScopeStack {
        let mut frames = self.frames.clone();
        frames.push(frame);
        ScopeStack { frames }
    }

    fn lookup(&self, table: &Option<String>, column: &str) -> Result<SqlValue, EngineError> {
        match table {
            Some(alias) => {
                for frame in self.frames.iter().rev() {
                    if frame
                        .schema
                        .iter()
                        .any(|(a, _)| a.as_deref() == Some(alias.as_str()))
                    {
                        return match frame
                            .schema
                            .iter()
                            .position(|(a, c)| a.as_deref() == Some(alias.as_str()) && c == column)
                        {
                            Some(idx) => Ok(frame.values[idx].clone()),
                            None => Err(EngineError::UnknownColumn {
                                qualifier: Some(alias.clone()),
                                name: column.to_string(),
                            }),
                        };
                    }
                }
                Err(EngineError::UnknownAlias(alias.clone()))
            }
            None => {
                for frame in self.frames.iter().rev() {
                    if let Some(idx) = frame.schema.iter().position(|(_, c)| c == column) {
                        return Ok(frame.values[idx].clone());
                    }
                }
                Err(EngineError::UnknownColumn {
                    qualifier: None,
                    name: column.to_string(),
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Plan execution
// ---------------------------------------------------------------------------

/// Execute one plan node and, in debug builds, check the dynamic twin of the
/// static plan validator (`analysis::plan_check`): the produced batch's
/// column count matches the node's declared `output_columns()` arity, the
/// schema is as wide as the data, and every selection-vector entry is in
/// bounds of the physical rows.
fn exec(
    plan: &PhysicalPlan,
    ctx: &VecCtx<'_>,
    ctes: &CteEnv,
    scope: &ScopeStack,
) -> Result<Batch, EngineError> {
    let timer = ctx.prof.map(|p| (p, Instant::now()));
    let batch = exec_node(plan, ctx, ctes, scope)?;
    if let Some((prof, start)) = timer {
        if let Some(&id) = prof.ids.get(&(plan as *const PhysicalPlan as usize)) {
            let cell = &prof.cells[id];
            cell.batches.set(cell.batches.get() + 1);
            cell.rows_out.set(cell.rows_out.get() + batch.len() as u64);
            cell.nanos
                .set(cell.nanos.get() + start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
    debug_assert_eq!(
        batch.columns.len(),
        plan.output_columns().len(),
        "plan node produced a batch of {} columns but declares {} output columns",
        batch.columns.len(),
        plan.output_columns().len(),
    );
    debug_assert_eq!(
        batch.schema.len(),
        batch.columns.len(),
        "batch schema names {} columns but the batch holds {}",
        batch.schema.len(),
        batch.columns.len(),
    );
    if let Some(sel) = &batch.sel {
        debug_assert!(
            sel.iter().all(|&p| p < batch.base_rows),
            "selection vector references a physical row >= {}",
            batch.base_rows,
        );
    }
    Ok(batch)
}

fn exec_node(
    plan: &PhysicalPlan,
    ctx: &VecCtx<'_>,
    ctes: &CteEnv,
    scope: &ScopeStack,
) -> Result<Batch, EngineError> {
    match plan {
        PhysicalPlan::UnitRow => Ok(Batch {
            schema: Arc::new(Vec::new()),
            columns: Vec::new(),
            sel: None,
            base_rows: 1,
        }),
        PhysicalPlan::TableScan {
            table,
            alias,
            columns,
            ..
        } => {
            let table = ctx.storage.table(table)?;
            let names = table.def.column_names();
            // Column references were resolved to positions at plan time;
            // refuse to scan a table whose live layout differs from the one
            // the plan was compiled against (e.g. a plan compiled for one
            // schema executed on an engine loaded from another).
            if names != *columns {
                return Err(EngineError::TypeError(format!(
                    "physical plan for table {} was compiled against columns ({}) \
                     but storage has ({})",
                    table.def.name,
                    columns.join(", "),
                    names.join(", ")
                )));
            }
            let schema: Vec<SchemaCol> = names
                .into_iter()
                .map(|c| (Some(alias.clone()), c))
                .collect();
            Ok(Batch {
                schema: Arc::new(schema),
                columns: table.columnar().to_vec(),
                sel: None,
                base_rows: table.len(),
            })
        }
        PhysicalPlan::CteScan { name, alias, .. } => {
            let bound = ctes
                .lookup(name)
                .ok_or_else(|| EngineError::UnknownCte(name.clone()))?;
            Ok(realias(bound, alias))
        }
        PhysicalPlan::SubqueryScan { input, alias } => {
            let inner = exec(input, ctx, ctes, scope)?;
            Ok(realias(&inner, alias))
        }
        PhysicalPlan::NestedLoopJoin { left, right } => {
            let l = exec(left, ctx, ctes, scope)?;
            let r = exec(right, ctx, ctes, scope)?;
            let pairs: Vec<(usize, usize)> = (0..l.len())
                .flat_map(|i| (0..r.len()).map(move |j| (i, j)))
                .collect();
            Ok(join_gather(&l, &r, &pairs))
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            build,
        } => {
            let l = exec(left, ctx, ctes, scope)?;
            let r = exec(right, ctx, ctes, scope)?;
            let lk = eval_keys(left_keys, &l, ctx, ctes, scope)?;
            let rk = eval_keys(right_keys, &r, ctx, ctes, scope)?;
            let (build_keys, probe_keys, probe_is_left) = match build {
                BuildSide::Right => (rk, lk, true),
                BuildSide::Left => (lk, rk, false),
            };
            let mut table: HashMap<Row, Vec<usize>> = HashMap::new();
            'build: for (i, key) in build_keys.into_iter().enumerate() {
                for v in &key {
                    if v.is_null() {
                        continue 'build;
                    }
                }
                table.entry(key).or_default().push(i);
            }
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            'probe: for (i, key) in probe_keys.into_iter().enumerate() {
                for v in &key {
                    if v.is_null() {
                        continue 'probe;
                    }
                }
                if let Some(matches) = table.get(&key) {
                    for &j in matches {
                        if probe_is_left {
                            pairs.push((i, j));
                        } else {
                            pairs.push((j, i));
                        }
                    }
                }
            }
            Ok(join_gather(&l, &r, &pairs))
        }
        PhysicalPlan::Filter { input, predicate } => {
            let batch = exec(input, ctx, ctes, scope)?;
            let values = eval(predicate, &batch, ctx, ctes, scope)?;
            let sel: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| v.as_bool() == Some(true))
                .map(|(i, _)| batch.phys(i))
                .collect();
            Ok(Batch {
                sel: Some(Arc::new(sel)),
                ..batch
            })
        }
        PhysicalPlan::ExistsSemiJoin {
            input,
            subplan,
            anti,
        } => {
            let batch = exec(input, ctx, ctes, scope)?;
            let mut sel = Vec::new();
            for i in 0..batch.len() {
                let frame = ScopeFrame {
                    schema: batch.schema.clone(),
                    values: batch.row(i),
                };
                let inner = exec(subplan, ctx, ctes, &scope.pushed(frame))?;
                if inner.is_empty() == *anti {
                    sel.push(batch.phys(i));
                }
            }
            Ok(Batch {
                sel: Some(Arc::new(sel)),
                ..batch
            })
        }
        PhysicalPlan::RowNumber { input, specs } => {
            // Ties in a window's keys are broken by the batch's row order
            // (stable sort), which may differ from the interpreter's join
            // order when the planner chose a different build side — the same
            // latitude PostgreSQL has for tied ROW_NUMBER keys. The shredding
            // translation only numbers over key columns that uniquely
            // identify rows, so its stages are never affected.
            let batch = exec(input, ctx, ctes, scope)?.materialised();
            let len = batch.len();
            let mut schema = batch.schema.as_ref().clone();
            let mut columns = batch.columns.clone();
            for (spec_idx, keys) in specs.iter().enumerate() {
                let key_values = eval_keys(keys, &batch, ctx, ctes, scope)?;
                let mut order: Vec<usize> = (0..len).collect();
                order.sort_by(|&a, &b| compare_rows(&key_values[a], &key_values[b]));
                let mut rn = vec![SqlValue::Null; len];
                for (number, row_idx) in order.into_iter().enumerate() {
                    rn[row_idx] = SqlValue::Int((number + 1) as i64);
                }
                schema.push((None, format!("#rn{}", spec_idx)));
                columns.push(Arc::new(rn));
            }
            Ok(Batch {
                schema: Arc::new(schema),
                columns,
                sel: None,
                base_rows: len,
            })
        }
        PhysicalPlan::Sort { input, keys } => {
            let batch = exec(input, ctx, ctes, scope)?;
            let key_values = eval_keys(keys, &batch, ctx, ctes, scope)?;
            let mut order: Vec<usize> = (0..batch.len()).collect();
            order.sort_by(|&a, &b| compare_rows(&key_values[a], &key_values[b]));
            let sel: Vec<usize> = order.into_iter().map(|i| batch.phys(i)).collect();
            Ok(Batch {
                sel: Some(Arc::new(sel)),
                ..batch
            })
        }
        PhysicalPlan::Project {
            input,
            exprs,
            columns,
        } => {
            let batch = exec(input, ctx, ctes, scope)?;
            let len = batch.len();
            let schema: Vec<SchemaCol> = columns.iter().map(|c| (None, c.clone())).collect();
            let out = exprs
                .iter()
                .map(|e| eval(e, &batch, ctx, ctes, scope).map(Arc::new))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Batch {
                schema: Arc::new(schema),
                columns: out,
                sel: None,
                base_rows: len,
            })
        }
        PhysicalPlan::Distinct { input } => {
            let batch = exec(input, ctx, ctes, scope)?;
            let mut seen: HashSet<Row> = HashSet::new();
            let sel: Vec<usize> = (0..batch.len())
                .filter(|&i| seen.insert(batch.row(i)))
                .map(|i| batch.phys(i))
                .collect();
            Ok(Batch {
                sel: Some(Arc::new(sel)),
                ..batch
            })
        }
        PhysicalPlan::UnionAll(branches) => {
            let mut iter = branches.iter();
            let first = iter
                .next()
                .ok_or_else(|| EngineError::TypeError("empty UNION ALL".to_string()))?;
            let acc = exec(first, ctx, ctes, scope)?.materialised();
            let width = acc.columns.len();
            let mut columns: Vec<Vec<SqlValue>> = (0..width)
                .map(|c| acc.columns[c].as_ref().clone())
                .collect();
            let mut total = acc.base_rows;
            for branch in iter {
                let next = exec(branch, ctx, ctes, scope)?;
                if next.columns.len() != width {
                    return Err(EngineError::TypeError(format!(
                        "UNION ALL branches have {} and {} columns",
                        width,
                        next.columns.len()
                    )));
                }
                total += next.len();
                for (c, column) in columns.iter_mut().enumerate() {
                    column.extend(next.gather(c));
                }
            }
            Ok(Batch {
                schema: acc.schema,
                columns: columns.into_iter().map(Arc::new).collect(),
                sel: None,
                base_rows: total,
            })
        }
        PhysicalPlan::ExceptAll { left, right } => {
            let l = exec(left, ctx, ctes, scope)?;
            let r = exec(right, ctx, ctes, scope)?;
            let mut counts: HashMap<Row, usize> = HashMap::new();
            for i in 0..r.len() {
                *counts.entry(r.row(i)).or_insert(0) += 1;
            }
            let mut rows = Vec::new();
            for i in 0..l.len() {
                let row = l.row(i);
                match counts.get_mut(&row) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => rows.push(row),
                }
            }
            Ok(Batch::from_rows(l.schema.clone(), rows))
        }
        PhysicalPlan::With {
            name,
            definition,
            body,
        } => {
            let bound = exec(definition, ctx, ctes, scope)?;
            let extended = ctes.extended(name, bound);
            exec(body, ctx, &extended, scope)
        }
    }
}

/// Rebind a batch's columns under a new `FROM` alias (zero-copy).
fn realias(batch: &Batch, alias: &str) -> Batch {
    let schema: Vec<SchemaCol> = batch
        .schema
        .iter()
        .map(|(_, c)| (Some(alias.to_string()), c.clone()))
        .collect();
    let compact = batch.materialised();
    Batch {
        schema: Arc::new(schema),
        ..compact
    }
}

/// Materialise the concatenation of two batches at the given row pairs.
fn join_gather(left: &Batch, right: &Batch, pairs: &[(usize, usize)]) -> Batch {
    let mut schema = left.schema.as_ref().clone();
    schema.extend(right.schema.iter().cloned());
    let mut columns: Vec<Arc<Vec<SqlValue>>> =
        Vec::with_capacity(left.columns.len() + right.columns.len());
    for c in 0..left.columns.len() {
        let data = &left.columns[c];
        columns.push(Arc::new(
            pairs
                .iter()
                .map(|&(i, _)| data[left.phys(i)].clone())
                .collect(),
        ));
    }
    for c in 0..right.columns.len() {
        let data = &right.columns[c];
        columns.push(Arc::new(
            pairs
                .iter()
                .map(|&(_, j)| data[right.phys(j)].clone())
                .collect(),
        ));
    }
    Batch {
        schema: Arc::new(schema),
        columns,
        sel: None,
        base_rows: pairs.len(),
    }
}

/// Evaluate a list of key expressions, transposed to one key row per batch
/// row.
fn eval_keys(
    keys: &[VExpr],
    batch: &Batch,
    ctx: &VecCtx<'_>,
    ctes: &CteEnv,
    scope: &ScopeStack,
) -> Result<Vec<Row>, EngineError> {
    let len = batch.len();
    let columns = keys
        .iter()
        .map(|k| eval(k, batch, ctx, ctes, scope))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((0..len)
        .map(|i| columns.iter().map(|c| c[i].clone()).collect())
        .collect())
}

/// Column-at-a-time expression evaluation: one output value per live row.
fn eval(
    expr: &VExpr,
    batch: &Batch,
    ctx: &VecCtx<'_>,
    ctes: &CteEnv,
    scope: &ScopeStack,
) -> Result<Vec<SqlValue>, EngineError> {
    let len = batch.len();
    match expr {
        VExpr::Col { index, .. } => Ok(batch.gather(*index)),
        VExpr::Outer { table, column } => {
            // Constant within one batch: the enclosing row is fixed for the
            // whole subplan execution.
            let v = scope.lookup(table, column)?;
            Ok(vec![v; len])
        }
        VExpr::Lit(v) => Ok(vec![v.clone(); len]),
        VExpr::Param(name) => {
            let v = ctx
                .params
                .get(name)
                .ok_or_else(|| EngineError::UnboundParameter(name.clone()))?;
            Ok(vec![v.clone(); len])
        }
        VExpr::BinOp { op, left, right } => {
            let l = eval(left, batch, ctx, ctes, scope)?;
            let r = eval(right, batch, ctx, ctes, scope)?;
            l.into_iter()
                .zip(r)
                .map(|(a, b)| eval_binop(*op, a, b))
                .collect()
        }
        VExpr::Not(inner) => {
            let values = eval(inner, batch, ctx, ctes, scope)?;
            values
                .into_iter()
                .map(|v| match v {
                    SqlValue::Bool(b) => Ok(SqlValue::Bool(!b)),
                    SqlValue::Null => Ok(SqlValue::Null),
                    other => Err(EngineError::TypeError(format!(
                        "NOT applied to {}",
                        other.type_name()
                    ))),
                })
                .collect()
        }
        VExpr::Exists(subplan) => {
            let mut out = Vec::with_capacity(len);
            for i in 0..len {
                let frame = ScopeFrame {
                    schema: batch.schema.clone(),
                    values: batch.row(i),
                };
                let inner = exec(subplan, ctx, ctes, &scope.pushed(frame))?;
                out.push(SqlValue::Bool(!inner.is_empty()));
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, Query, Select};
    use crate::exec::Engine;
    use crate::storage::{ColumnType, ResultSet, TableDef};

    fn engine() -> Engine {
        let mut storage = Storage::new();
        storage
            .create_table(TableDef::new(
                "nums",
                vec![("n", ColumnType::Int), ("tag", ColumnType::Text)],
            ))
            .unwrap();
        for (n, tag) in [(1, "odd"), (2, "even"), (3, "odd"), (4, "even")] {
            storage
                .insert("nums", vec![SqlValue::Int(n), SqlValue::str(tag)])
                .unwrap();
        }
        Engine::with_storage(storage)
    }

    fn run_both(engine: &Engine, q: &Query) -> (ResultSet, ResultSet) {
        let interpreted = engine.execute_interpreted(q).unwrap();
        let plan = engine.prepare(q).unwrap();
        let vectorized = engine.execute_plan(&plan).unwrap().into_result_set();
        (interpreted, vectorized)
    }

    #[test]
    fn scans_filters_and_projections_match_the_interpreter() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("x", "n"), "n")
                .item(
                    Expr::binop(BinOp::Mul, Expr::col("x", "n"), Expr::lit(10)),
                    "n10",
                )
                .from_named("nums", "x")
                .filter(Expr::binop(BinOp::Gt, Expr::col("x", "n"), Expr::lit(1))),
        );
        let (i, v) = run_both(&engine(), &q);
        assert_eq!(i, v);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn hash_joins_match_the_interpreter() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("a", "n"), "l")
                .item(Expr::col("b", "n"), "r")
                .from_named("nums", "a")
                .from_named("nums", "b")
                .filter(Expr::eq(Expr::col("a", "tag"), Expr::col("b", "tag"))),
        );
        let (i, v) = run_both(&engine(), &q);
        assert_eq!(i.len(), v.len());
        let mut li = i.rows.clone();
        let mut lv = v.rows.clone();
        li.sort_by(|a, b| compare_rows(a, b));
        lv.sort_by(|a, b| compare_rows(a, b));
        assert_eq!(li, lv);
    }

    #[test]
    fn with_row_number_union_and_distinct_match_the_interpreter() {
        let inner = Select::new()
            .item(Expr::col("x", "tag"), "tag")
            .item(Expr::row_number(vec![Expr::col("x", "n")]), "rank")
            .from_named("nums", "x");
        let outer = Select::new()
            .item(Expr::col("q", "tag"), "tag")
            .from_named("q", "q")
            .filter(Expr::binop(BinOp::Le, Expr::col("q", "rank"), Expr::lit(2)))
            .distinct();
        let q = Query::with("q", inner, Query::select(outer));
        let (i, v) = run_both(&engine(), &q);
        assert_eq!(i, v);
    }

    #[test]
    fn correlated_exists_matches_the_interpreter() {
        let sub = Query::select(
            Select::new()
                .item(Expr::lit(1), "one")
                .from_named("nums", "y")
                .filter(Expr::and(
                    Expr::eq(Expr::col("y", "tag"), Expr::col("x", "tag")),
                    Expr::binop(BinOp::Gt, Expr::col("y", "n"), Expr::col("x", "n")),
                )),
        );
        let q = Query::select(
            Select::new()
                .item(Expr::col("x", "n"), "n")
                .from_named("nums", "x")
                .filter(Expr::not(Expr::Exists(Box::new(sub)))),
        );
        let (i, v) = run_both(&engine(), &q);
        assert_eq!(i, v);
        // The largest odd and even numbers survive the anti-join.
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn order_by_and_except_all_match_the_interpreter() {
        let all = Select::new()
            .item(Expr::col("x", "tag"), "tag")
            .from_named("nums", "x")
            .order_by(Expr::col("x", "n"));
        let odd = Select::new()
            .item(Expr::col("x", "tag"), "tag")
            .from_named("nums", "x")
            .filter(Expr::eq(Expr::col("x", "tag"), Expr::lit("odd")));
        let q = Query::ExceptAll(Box::new(Query::select(all)), Box::new(Query::select(odd)));
        let (i, v) = run_both(&engine(), &q);
        assert_eq!(i, v);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn a_plan_compiled_against_a_different_layout_is_refused() {
        use crate::plan::{plan_query, SchemaCatalog};
        // The plan resolves columns positionally against (n, tag)…
        let stale = SchemaCatalog::new(vec![TableDef::new(
            "nums",
            vec![("tag", ColumnType::Text), ("n", ColumnType::Int)],
        )]);
        let q = Query::select(
            Select::new()
                .item(Expr::col("x", "n"), "n")
                .from_named("nums", "x"),
        );
        let plan = plan_query(&q, &stale).unwrap();
        // …but the engine's table stores (n, tag): refuse, don't transpose.
        let err = engine().execute_plan(&plan).unwrap_err();
        assert!(
            err.to_string().contains("different") || err.to_string().contains("columns"),
            "got: {}",
            err
        );
    }

    #[test]
    fn select_without_from_yields_one_row() {
        let q = Query::select(Select::new().item(Expr::lit(42), "x"));
        let (i, v) = run_both(&engine(), &q);
        assert_eq!(i, v);
        assert_eq!(v.rows, vec![vec![SqlValue::Int(42)]]);
    }
}
