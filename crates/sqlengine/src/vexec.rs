//! Vectorized execution of [`PhysicalPlan`] trees over columnar batches.
//!
//! Where the interpreter in [`crate::exec`] walks the AST row by row —
//! cloning a scope frame per joined row combination — this executor runs a
//! pre-compiled plan over a columnar representation:
//!
//! * a [`Batch`] holds one `Vec<SqlValue>` per column, shared by `Arc` so
//!   table scans and CTE references are zero-copy and batches are
//!   `Send + Sync` (plans execute against a storage read guard — the only
//!   interior state is each table's version-stamped columnar cell — so any
//!   number of threads can run plans over one engine),
//! * filters and sorts produce **selection vectors** instead of moving data,
//! * expressions are evaluated column-at-a-time ([`VExpr::Col`] is a resolved
//!   position, so there is no name lookup per row),
//! * only joins, projections and row-numbering materialise new columns.
//!
//! Correlated subqueries (`EXISTS`, semi/anti joins) necessarily fall back to
//! one subplan execution per outer row; the row's values are pushed as a
//! scope frame that the subplan's [`VExpr::Outer`] references resolve
//! against, mirroring the interpreter's correlation semantics exactly. The
//! interpreter remains the executable oracle this module is differentially
//! tested against (see `tests/vexec_differential.rs`).

use crate::error::EngineError;
use crate::exec::eval_binop;
use crate::plan::{BuildSide, OpActuals, PhysicalPlan, VExpr};
use crate::storage::{ColumnarResult, Storage};
use crate::value::{compare_rows, ParamValues, Row, SqlValue};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Instant;

/// Execute a parameter-free physical plan against storage, producing a
/// columnar result.
pub fn execute_plan(plan: &PhysicalPlan, storage: &Storage) -> Result<ColumnarResult, EngineError> {
    execute_plan_bound(plan, storage, &ParamValues::new())
}

/// Execute a physical plan against storage with bound values for its param
/// slots. The plan itself is immutable — the same compiled plan can be run
/// any number of times with different bindings and no re-planning. The
/// result stays columnar: the batch's `Arc`-shared columns are handed over
/// without a row-major transpose (see [`ColumnarResult`]).
pub fn execute_plan_bound(
    plan: &PhysicalPlan,
    storage: &Storage,
    params: &ParamValues,
) -> Result<ColumnarResult, EngineError> {
    let ctx = VecCtx {
        storage,
        params,
        prof: None,
    };
    let batch = exec(plan, &ctx, &CteEnv::default(), &ScopeStack::default())?;
    Ok(batch.into_columnar())
}

/// Per-operator actuals for one profiled plan execution, indexed by the
/// node's pre-order index in [`PhysicalPlan::nodes`]. Feed `ops` to
/// [`PhysicalPlan::render_analyzed`] for an `EXPLAIN ANALYZE`-style tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanProfile {
    pub ops: Vec<OpActuals>,
}

/// Like [`execute_plan_bound`], but with per-operator profiling: every
/// `exec` of a plan node additionally accumulates its batch count, output
/// rows and inclusive wall time into a [`PlanProfile`]. The result path is
/// unchanged (same zero-copy columnar hand-over); the only per-node overhead
/// is two `Instant` reads and a pointer-keyed map lookup.
pub fn execute_plan_profiled(
    plan: &PhysicalPlan,
    storage: &Storage,
    params: &ParamValues,
) -> Result<(ColumnarResult, PlanProfile), EngineError> {
    let prof = Profiler::new(plan);
    let ctx = VecCtx {
        storage,
        params,
        prof: Some(&prof),
    };
    let batch = exec(plan, &ctx, &CteEnv::default(), &ScopeStack::default())?;
    let result = batch.into_columnar();
    let ops = prof.actuals(plan);
    Ok((result, PlanProfile { ops }))
}

/// Like [`execute_plan_bound`], but with pre-bound `WITH` results: each
/// `(name, result)` pair is visible to `CteScan`s of that free name inside
/// the plan. This is the execution path for package-level shared subplans
/// (`shredding`'s cross-stage CSE): a shared definition is executed once
/// per package and its columnar result re-bound — zero-copy, the column
/// `Arc`s are shared — under each consuming stage's CTE name.
pub fn execute_plan_bound_ctes(
    plan: &PhysicalPlan,
    storage: &Storage,
    params: &ParamValues,
    ctes: &[(String, ColumnarResult)],
) -> Result<ColumnarResult, EngineError> {
    let ctx = VecCtx {
        storage,
        params,
        prof: None,
    };
    let mut env = CteEnv::default();
    for (name, result) in ctes {
        env = env.extended(name, batch_from_columnar(result));
    }
    let batch = exec(plan, &ctx, &env, &ScopeStack::default())?;
    Ok(batch.into_columnar())
}

/// Rewrap a columnar result as an executable batch (shared columns, no
/// aliases — a `CteScan` re-aliases on use, exactly as for a `With`-bound
/// batch).
pub(crate) fn batch_from_columnar(result: &ColumnarResult) -> Batch {
    let schema: Vec<SchemaCol> = result.columns.iter().map(|c| (None, c.clone())).collect();
    Batch {
        schema: Arc::new(schema),
        columns: (0..result.width())
            .map(|i| result.column(i).clone())
            .collect(),
        sel: None,
        base_rows: result.len(),
    }
}

/// Accumulator for per-node actuals, keyed by node address (unique within
/// one plan tree). The cells are atomics (relaxed ordering — the counters
/// are independent tallies, reconciled after all workers join) so one
/// profiler can be shared by every worker of a morsel-parallel execution
/// (`crate::par`): concurrent batches aggregate their counts instead of
/// racing on a per-node accumulator.
pub(crate) struct Profiler {
    ids: HashMap<usize, usize>,
    cells: Vec<ProfCell>,
}

#[derive(Default)]
struct ProfCell {
    batches: AtomicU64,
    rows_out: AtomicU64,
    nanos: AtomicU64,
}

impl Profiler {
    pub(crate) fn new(plan: &PhysicalPlan) -> Profiler {
        let nodes = plan.nodes();
        Profiler {
            ids: nodes
                .iter()
                .enumerate()
                .map(|(i, n)| (*n as *const PhysicalPlan as usize, i))
                .collect(),
            cells: (0..nodes.len()).map(|_| ProfCell::default()).collect(),
        }
    }

    /// Record one execution of `plan` producing `rows_out` rows in `nanos`
    /// inclusive wall time. Safe to call from any worker thread.
    pub(crate) fn record(&self, plan: &PhysicalPlan, rows_out: u64, nanos: u64) {
        if let Some(&id) = self.ids.get(&(plan as *const PhysicalPlan as usize)) {
            let cell = &self.cells[id];
            cell.batches.fetch_add(1, AtomicOrdering::Relaxed);
            cell.rows_out.fetch_add(rows_out, AtomicOrdering::Relaxed);
            cell.nanos.fetch_add(nanos, AtomicOrdering::Relaxed);
        }
    }

    /// Assemble the per-node [`OpActuals`] for the plan this profiler was
    /// built from, in pre-order node index order.
    pub(crate) fn actuals(&self, plan: &PhysicalPlan) -> Vec<OpActuals> {
        let nodes = plan.nodes();
        let rows_out: Vec<u64> = self
            .cells
            .iter()
            .map(|c| c.rows_out.load(AtomicOrdering::Relaxed))
            .collect();
        nodes
            .iter()
            .enumerate()
            .map(|(i, node)| OpActuals {
                batches: self.cells[i].batches.load(AtomicOrdering::Relaxed),
                // Actual input rows = what the direct children actually
                // produced (every child execution is triggered by this node).
                rows_in: node
                    .children()
                    .iter()
                    .map(|ch| rows_out[self.ids[&(*ch as *const PhysicalPlan as usize)]])
                    .sum(),
                rows_out: rows_out[i],
                nanos: self.cells[i].nanos.load(AtomicOrdering::Relaxed),
            })
            .collect()
    }
}

/// One column of a batch schema: binding alias (absent after projection) and
/// column name.
pub(crate) type SchemaCol = (Option<String>, String);

/// A columnar batch: a schema, shared column vectors and an optional
/// selection vector picking the live rows.
#[derive(Debug, Clone)]
pub struct Batch {
    pub(crate) schema: Arc<Vec<SchemaCol>>,
    pub(crate) columns: Vec<Arc<Vec<SqlValue>>>,
    pub(crate) sel: Option<Arc<Vec<usize>>>,
    /// Number of physical rows in `columns` (needed explicitly because a
    /// batch may have zero columns but a positive row count).
    pub(crate) base_rows: usize,
}

impl Batch {
    /// Number of live (selected) rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(sel) => sel.len(),
            None => self.base_rows,
        }
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical row index of logical row `i`.
    pub(crate) fn phys(&self, i: usize) -> usize {
        match &self.sel {
            Some(sel) => sel[i],
            None => i,
        }
    }

    /// The values of logical row `i`, gathered across columns.
    pub(crate) fn row(&self, i: usize) -> Row {
        let p = self.phys(i);
        self.columns.iter().map(|c| c[p].clone()).collect()
    }

    /// Gather one column into a dense vector (respecting the selection).
    pub(crate) fn gather(&self, col: usize) -> Vec<SqlValue> {
        let data = &self.columns[col];
        match &self.sel {
            None => data.as_ref().clone(),
            Some(sel) => sel.iter().map(|&p| data[p].clone()).collect(),
        }
    }

    /// Compact the selection away so columns can be extended or shared.
    pub(crate) fn materialised(&self) -> Batch {
        match &self.sel {
            None => self.clone(),
            Some(_) => Batch {
                schema: self.schema.clone(),
                columns: (0..self.columns.len())
                    .map(|c| Arc::new(self.gather(c)))
                    .collect(),
                sel: None,
                base_rows: self.len(),
            },
        }
    }

    /// Rebuild a batch from explicit rows (used by the set operations).
    pub(crate) fn from_rows(schema: Arc<Vec<SchemaCol>>, rows: Vec<Row>) -> Batch {
        let width = schema.len();
        let base_rows = rows.len();
        let mut columns: Vec<Vec<SqlValue>> =
            (0..width).map(|_| Vec::with_capacity(base_rows)).collect();
        for row in rows {
            for (c, v) in row.into_iter().enumerate() {
                columns[c].push(v);
            }
        }
        Batch {
            schema,
            columns: columns.into_iter().map(Arc::new).collect(),
            sel: None,
            base_rows,
        }
    }

    /// Hand the batch over as a [`ColumnarResult`]: compact the selection
    /// if there is one, then move the `Arc`-shared columns out. When the
    /// batch is already dense (no selection vector) this is zero-copy.
    pub(crate) fn into_columnar(self) -> ColumnarResult {
        let compact = match self.sel {
            None => self,
            Some(_) => self.materialised(),
        };
        let columns = compact.schema.iter().map(|(_, c)| c.clone()).collect();
        ColumnarResult::new(columns, compact.columns, compact.base_rows)
    }
}

/// Execution context shared by every node.
pub(crate) struct VecCtx<'a> {
    pub(crate) storage: &'a Storage,
    pub(crate) params: &'a ParamValues,
    /// Per-operator profiler; `None` keeps execution on the unprofiled path
    /// (the only cost is this `Option` check per node execution).
    pub(crate) prof: Option<&'a Profiler>,
}

/// Runtime environment of `WITH`-bound batches, innermost last. Cloning is
/// cheap: batches share their columns by `Arc`.
#[derive(Default, Clone)]
pub(crate) struct CteEnv {
    bindings: Vec<(String, Batch)>,
}

impl CteEnv {
    pub(crate) fn lookup(&self, name: &str) -> Option<&Batch> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b)
    }

    pub(crate) fn extended(&self, name: &str, batch: Batch) -> CteEnv {
        let mut bindings = self.bindings.clone();
        bindings.push((name.to_string(), batch));
        CteEnv { bindings }
    }
}

/// The scope stack for correlated subqueries: one frame per enclosing row,
/// innermost last.
#[derive(Default, Clone)]
pub(crate) struct ScopeStack {
    frames: Vec<ScopeFrame>,
}

#[derive(Clone)]
pub(crate) struct ScopeFrame {
    pub(crate) schema: Arc<Vec<SchemaCol>>,
    pub(crate) values: Row,
}

impl ScopeStack {
    pub(crate) fn pushed(&self, frame: ScopeFrame) -> ScopeStack {
        let mut frames = self.frames.clone();
        frames.push(frame);
        ScopeStack { frames }
    }

    pub(crate) fn lookup(
        &self,
        table: &Option<String>,
        column: &str,
    ) -> Result<SqlValue, EngineError> {
        match table {
            Some(alias) => {
                for frame in self.frames.iter().rev() {
                    if frame
                        .schema
                        .iter()
                        .any(|(a, _)| a.as_deref() == Some(alias.as_str()))
                    {
                        return match frame
                            .schema
                            .iter()
                            .position(|(a, c)| a.as_deref() == Some(alias.as_str()) && c == column)
                        {
                            Some(idx) => Ok(frame.values[idx].clone()),
                            None => Err(EngineError::UnknownColumn {
                                qualifier: Some(alias.clone()),
                                name: column.to_string(),
                            }),
                        };
                    }
                }
                Err(EngineError::UnknownAlias(alias.clone()))
            }
            None => {
                for frame in self.frames.iter().rev() {
                    if let Some(idx) = frame.schema.iter().position(|(_, c)| c == column) {
                        return Ok(frame.values[idx].clone());
                    }
                }
                Err(EngineError::UnknownColumn {
                    qualifier: None,
                    name: column.to_string(),
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Plan execution
// ---------------------------------------------------------------------------

/// Execute one plan node and, in debug builds, check the dynamic twin of the
/// static plan validator (`analysis::plan_check`): the produced batch's
/// column count matches the node's declared `output_columns()` arity, the
/// schema is as wide as the data, and every selection-vector entry is in
/// bounds of the physical rows.
pub(crate) fn exec(
    plan: &PhysicalPlan,
    ctx: &VecCtx<'_>,
    ctes: &CteEnv,
    scope: &ScopeStack,
) -> Result<Batch, EngineError> {
    let timer = ctx.prof.map(|p| (p, Instant::now()));
    let batch = exec_node(plan, ctx, ctes, scope)?;
    if let Some((prof, start)) = timer {
        prof.record(
            plan,
            batch.len() as u64,
            start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
    }
    debug_assert_eq!(
        batch.columns.len(),
        plan.output_columns().len(),
        "plan node produced a batch of {} columns but declares {} output columns",
        batch.columns.len(),
        plan.output_columns().len(),
    );
    debug_assert_eq!(
        batch.schema.len(),
        batch.columns.len(),
        "batch schema names {} columns but the batch holds {}",
        batch.schema.len(),
        batch.columns.len(),
    );
    if let Some(sel) = &batch.sel {
        debug_assert!(
            sel.iter().all(|&p| p < batch.base_rows),
            "selection vector references a physical row >= {}",
            batch.base_rows,
        );
    }
    Ok(batch)
}

fn exec_node(
    plan: &PhysicalPlan,
    ctx: &VecCtx<'_>,
    ctes: &CteEnv,
    scope: &ScopeStack,
) -> Result<Batch, EngineError> {
    match plan {
        PhysicalPlan::UnitRow => Ok(Batch {
            schema: Arc::new(Vec::new()),
            columns: Vec::new(),
            sel: None,
            base_rows: 1,
        }),
        PhysicalPlan::TableScan {
            table,
            alias,
            columns,
            ..
        } => {
            let table = ctx.storage.table(table)?;
            let names = table.def.column_names();
            // Column references were resolved to positions at plan time;
            // refuse to scan a table whose live layout differs from the one
            // the plan was compiled against (e.g. a plan compiled for one
            // schema executed on an engine loaded from another).
            if names != *columns {
                return Err(EngineError::TypeError(format!(
                    "physical plan for table {} was compiled against columns ({}) \
                     but storage has ({})",
                    table.def.name,
                    columns.join(", "),
                    names.join(", ")
                )));
            }
            let schema: Vec<SchemaCol> = names
                .into_iter()
                .map(|c| (Some(alias.clone()), c))
                .collect();
            Ok(Batch {
                schema: Arc::new(schema),
                columns: table.columnar().to_vec(),
                sel: None,
                base_rows: table.len(),
            })
        }
        PhysicalPlan::CteScan { name, alias, .. } => {
            let bound = ctes
                .lookup(name)
                .ok_or_else(|| EngineError::UnknownCte(name.clone()))?;
            Ok(realias(bound, alias))
        }
        PhysicalPlan::SubqueryScan { input, alias } => {
            let inner = exec(input, ctx, ctes, scope)?;
            Ok(realias(&inner, alias))
        }
        PhysicalPlan::NestedLoopJoin { left, right } => {
            let l = exec(left, ctx, ctes, scope)?;
            let r = exec(right, ctx, ctes, scope)?;
            let pairs: Vec<(usize, usize)> = (0..l.len())
                .flat_map(|i| (0..r.len()).map(move |j| (i, j)))
                .collect();
            Ok(join_gather(&l, &r, &pairs))
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            build,
        } => {
            let l = exec(left, ctx, ctes, scope)?;
            let r = exec(right, ctx, ctes, scope)?;
            let lk = eval_keys(left_keys, &l, ctx, ctes, scope)?;
            let rk = eval_keys(right_keys, &r, ctx, ctes, scope)?;
            let (build_keys, probe_keys, probe_is_left) = match build {
                BuildSide::Right => (rk, lk, true),
                BuildSide::Left => (lk, rk, false),
            };
            let mut table: HashMap<Row, Vec<usize>> = HashMap::new();
            'build: for (i, key) in build_keys.into_iter().enumerate() {
                for v in &key {
                    if v.is_null() {
                        continue 'build;
                    }
                }
                table.entry(key).or_default().push(i);
            }
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            'probe: for (i, key) in probe_keys.into_iter().enumerate() {
                for v in &key {
                    if v.is_null() {
                        continue 'probe;
                    }
                }
                if let Some(matches) = table.get(&key) {
                    for &j in matches {
                        if probe_is_left {
                            pairs.push((i, j));
                        } else {
                            pairs.push((j, i));
                        }
                    }
                }
            }
            Ok(join_gather(&l, &r, &pairs))
        }
        PhysicalPlan::Filter { input, predicate } => {
            let batch = exec(input, ctx, ctes, scope)?;
            let values = eval(predicate, &batch, ctx, ctes, scope)?;
            let sel: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| v.as_bool() == Some(true))
                .map(|(i, _)| batch.phys(i))
                .collect();
            Ok(Batch {
                sel: Some(Arc::new(sel)),
                ..batch
            })
        }
        PhysicalPlan::ExistsSemiJoin {
            input,
            subplan,
            anti,
        } => {
            let batch = exec(input, ctx, ctes, scope)?;
            let mut sel = Vec::new();
            for i in 0..batch.len() {
                let frame = ScopeFrame {
                    schema: batch.schema.clone(),
                    values: batch.row(i),
                };
                let inner = exec(subplan, ctx, ctes, &scope.pushed(frame))?;
                if inner.is_empty() == *anti {
                    sel.push(batch.phys(i));
                }
            }
            Ok(Batch {
                sel: Some(Arc::new(sel)),
                ..batch
            })
        }
        PhysicalPlan::HashSemiJoin {
            input,
            build,
            probe_keys,
            build_keys,
            anti,
        } => {
            let batch = exec(input, ctx, ctes, scope)?;
            // The build side runs exactly once, under the *same* scope as
            // this node (no frame is pushed: after decorrelation the build
            // holds no references to the input's rows).
            let built = exec(build, ctx, ctes, scope)?;
            let mut table: HashSet<Row> = HashSet::new();
            'build: for key in eval_keys(build_keys, &built, ctx, ctes, scope)? {
                for v in &key {
                    if v.is_null() {
                        continue 'build;
                    }
                }
                table.insert(key);
            }
            let probe = eval_keys(probe_keys, &batch, ctx, ctes, scope)?;
            let mut sel = Vec::new();
            for (i, key) in probe.into_iter().enumerate() {
                let matched = !key.iter().any(|v| v.is_null()) && table.contains(&key);
                if matched != *anti {
                    sel.push(batch.phys(i));
                }
            }
            Ok(Batch {
                sel: Some(Arc::new(sel)),
                ..batch
            })
        }
        PhysicalPlan::RowNumber { input, specs } => {
            // Ties in a window's keys are broken by the batch's row order
            // (stable sort), which may differ from the interpreter's join
            // order when the planner chose a different build side — the same
            // latitude PostgreSQL has for tied ROW_NUMBER keys. The shredding
            // translation only numbers over key columns that uniquely
            // identify rows, so its stages are never affected.
            let batch = exec(input, ctx, ctes, scope)?.materialised();
            let len = batch.len();
            let mut schema = batch.schema.as_ref().clone();
            let mut columns = batch.columns.clone();
            for (spec_idx, keys) in specs.iter().enumerate() {
                let key_values = eval_keys(keys, &batch, ctx, ctes, scope)?;
                let mut order: Vec<usize> = (0..len).collect();
                order.sort_by(|&a, &b| compare_rows(&key_values[a], &key_values[b]));
                let mut rn = vec![SqlValue::Null; len];
                for (number, row_idx) in order.into_iter().enumerate() {
                    rn[row_idx] = SqlValue::Int((number + 1) as i64);
                }
                schema.push((None, format!("#rn{}", spec_idx)));
                columns.push(Arc::new(rn));
            }
            Ok(Batch {
                schema: Arc::new(schema),
                columns,
                sel: None,
                base_rows: len,
            })
        }
        PhysicalPlan::Sort { input, keys } => {
            let batch = exec(input, ctx, ctes, scope)?;
            let key_values = eval_keys(keys, &batch, ctx, ctes, scope)?;
            let mut order: Vec<usize> = (0..batch.len()).collect();
            order.sort_by(|&a, &b| compare_rows(&key_values[a], &key_values[b]));
            let sel: Vec<usize> = order.into_iter().map(|i| batch.phys(i)).collect();
            Ok(Batch {
                sel: Some(Arc::new(sel)),
                ..batch
            })
        }
        PhysicalPlan::Project {
            input,
            exprs,
            columns,
        } => {
            let batch = exec(input, ctx, ctes, scope)?;
            let len = batch.len();
            let schema: Vec<SchemaCol> = columns.iter().map(|c| (None, c.clone())).collect();
            let out = exprs
                .iter()
                .map(|e| eval(e, &batch, ctx, ctes, scope).map(Arc::new))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Batch {
                schema: Arc::new(schema),
                columns: out,
                sel: None,
                base_rows: len,
            })
        }
        PhysicalPlan::Distinct { input } => {
            let batch = exec(input, ctx, ctes, scope)?;
            let mut seen: HashSet<Row> = HashSet::new();
            let sel: Vec<usize> = (0..batch.len())
                .filter(|&i| seen.insert(batch.row(i)))
                .map(|i| batch.phys(i))
                .collect();
            Ok(Batch {
                sel: Some(Arc::new(sel)),
                ..batch
            })
        }
        PhysicalPlan::UnionAll(branches) => {
            let mut iter = branches.iter();
            let first = iter
                .next()
                .ok_or_else(|| EngineError::TypeError("empty UNION ALL".to_string()))?;
            let acc = exec(first, ctx, ctes, scope)?.materialised();
            let width = acc.columns.len();
            let mut columns: Vec<Vec<SqlValue>> = (0..width)
                .map(|c| acc.columns[c].as_ref().clone())
                .collect();
            let mut total = acc.base_rows;
            for branch in iter {
                let next = exec(branch, ctx, ctes, scope)?;
                if next.columns.len() != width {
                    return Err(EngineError::TypeError(format!(
                        "UNION ALL branches have {} and {} columns",
                        width,
                        next.columns.len()
                    )));
                }
                total += next.len();
                for (c, column) in columns.iter_mut().enumerate() {
                    column.extend(next.gather(c));
                }
            }
            Ok(Batch {
                schema: acc.schema,
                columns: columns.into_iter().map(Arc::new).collect(),
                sel: None,
                base_rows: total,
            })
        }
        PhysicalPlan::ExceptAll { left, right } => {
            let l = exec(left, ctx, ctes, scope)?;
            let r = exec(right, ctx, ctes, scope)?;
            let mut counts: HashMap<Row, usize> = HashMap::new();
            for i in 0..r.len() {
                *counts.entry(r.row(i)).or_insert(0) += 1;
            }
            let mut rows = Vec::new();
            for i in 0..l.len() {
                let row = l.row(i);
                match counts.get_mut(&row) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => rows.push(row),
                }
            }
            Ok(Batch::from_rows(l.schema.clone(), rows))
        }
        PhysicalPlan::With {
            name,
            definition,
            body,
        } => {
            let bound = exec(definition, ctx, ctes, scope)?;
            let extended = ctes.extended(name, bound);
            exec(body, ctx, &extended, scope)
        }
    }
}

/// Rebind a batch's columns under a new `FROM` alias (zero-copy).
pub(crate) fn realias(batch: &Batch, alias: &str) -> Batch {
    let schema: Vec<SchemaCol> = batch
        .schema
        .iter()
        .map(|(_, c)| (Some(alias.to_string()), c.clone()))
        .collect();
    let compact = batch.materialised();
    Batch {
        schema: Arc::new(schema),
        ..compact
    }
}

/// Materialise the concatenation of two batches at the given row pairs.
pub(crate) fn join_gather(left: &Batch, right: &Batch, pairs: &[(usize, usize)]) -> Batch {
    let mut schema = left.schema.as_ref().clone();
    schema.extend(right.schema.iter().cloned());
    let mut columns: Vec<Arc<Vec<SqlValue>>> =
        Vec::with_capacity(left.columns.len() + right.columns.len());
    for c in 0..left.columns.len() {
        let data = &left.columns[c];
        columns.push(Arc::new(
            pairs
                .iter()
                .map(|&(i, _)| data[left.phys(i)].clone())
                .collect(),
        ));
    }
    for c in 0..right.columns.len() {
        let data = &right.columns[c];
        columns.push(Arc::new(
            pairs
                .iter()
                .map(|&(_, j)| data[right.phys(j)].clone())
                .collect(),
        ));
    }
    Batch {
        schema: Arc::new(schema),
        columns,
        sel: None,
        base_rows: pairs.len(),
    }
}

/// Evaluate a list of key expressions, transposed to one key row per batch
/// row.
pub(crate) fn eval_keys(
    keys: &[VExpr],
    batch: &Batch,
    ctx: &VecCtx<'_>,
    ctes: &CteEnv,
    scope: &ScopeStack,
) -> Result<Vec<Row>, EngineError> {
    let len = batch.len();
    let columns = keys
        .iter()
        .map(|k| eval(k, batch, ctx, ctes, scope))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((0..len)
        .map(|i| columns.iter().map(|c| c[i].clone()).collect())
        .collect())
}

/// Column-at-a-time expression evaluation: one output value per live row.
pub(crate) fn eval(
    expr: &VExpr,
    batch: &Batch,
    ctx: &VecCtx<'_>,
    ctes: &CteEnv,
    scope: &ScopeStack,
) -> Result<Vec<SqlValue>, EngineError> {
    let len = batch.len();
    match expr {
        VExpr::Col { index, .. } => Ok(batch.gather(*index)),
        VExpr::Outer { table, column } => {
            // Constant within one batch: the enclosing row is fixed for the
            // whole subplan execution.
            let v = scope.lookup(table, column)?;
            Ok(vec![v; len])
        }
        VExpr::Lit(v) => Ok(vec![v.clone(); len]),
        VExpr::Param(name) => {
            let v = ctx
                .params
                .get(name)
                .ok_or_else(|| EngineError::UnboundParameter(name.clone()))?;
            Ok(vec![v.clone(); len])
        }
        VExpr::BinOp { op, left, right } => {
            let l = eval(left, batch, ctx, ctes, scope)?;
            let r = eval(right, batch, ctx, ctes, scope)?;
            l.into_iter()
                .zip(r)
                .map(|(a, b)| eval_binop(*op, a, b))
                .collect()
        }
        VExpr::Not(inner) => {
            let values = eval(inner, batch, ctx, ctes, scope)?;
            values
                .into_iter()
                .map(|v| match v {
                    SqlValue::Bool(b) => Ok(SqlValue::Bool(!b)),
                    SqlValue::Null => Ok(SqlValue::Null),
                    other => Err(EngineError::TypeError(format!(
                        "NOT applied to {}",
                        other.type_name()
                    ))),
                })
                .collect()
        }
        VExpr::Exists(subplan) => {
            let mut out = Vec::with_capacity(len);
            for i in 0..len {
                let frame = ScopeFrame {
                    schema: batch.schema.clone(),
                    values: batch.row(i),
                };
                let inner = exec(subplan, ctx, ctes, &scope.pushed(frame))?;
                out.push(SqlValue::Bool(!inner.is_empty()));
            }
            Ok(out)
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental (delta) execution
// ---------------------------------------------------------------------------

use crate::delta::StorageDelta;

/// A signed row multiset: the delta flowing between plan operators.
/// Multiplicity is by repetition; signs are ±1 after normalisation
/// (retractions first, then insertions, in first-mention order).
pub type DeltaRows = Vec<(Row, i64)>;

/// Why a delta pass could not produce an answer: either the plan shape is
/// outside the incremental fragment for this particular write (correlated
/// `EXISTS` over a mutated table), or a hard execution error.
enum DeltaFail {
    /// Fall back to a full re-seed of this plan; not an error.
    Bail,
    Err(EngineError),
}

impl From<EngineError> for DeltaFail {
    fn from(e: EngineError) -> DeltaFail {
        DeltaFail::Err(e)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum DeltaMode {
    /// Build every operator cache from scratch: table scans emit the full
    /// stored content as insertions against empty caches, so one code path
    /// serves both initial materialisation and maintenance.
    Seed,
    /// Propagate a committed [`StorageDelta`] through the cached operators.
    Incremental,
}

struct DeltaCtx<'a> {
    storage: &'a Storage,
    params: &'a ParamValues,
    mode: DeltaMode,
    delta: &'a StorageDelta,
}

/// Per-`With` environment threaded through a delta pass: the definition's
/// delta, its batch schema, and a materialised post-state batch for
/// correlated subplans executed via the ordinary executor.
#[derive(Default, Clone)]
struct DeltaEnv {
    deltas: Vec<(String, DeltaRows)>,
    schemas: Vec<(String, Arc<Vec<SchemaCol>>)>,
    materialised: CteEnv,
}

impl DeltaEnv {
    fn delta_of(&self, name: &str) -> Option<&DeltaRows> {
        self.deltas
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d)
    }
}

/// The incremental twin of [`execute_plan_bound`]: a `DeltaExec` keeps one
/// cached output row multiset per plan node (indexed by the node's pre-order
/// position in [`PhysicalPlan::nodes`]) and propagates signed row deltas
/// through the operators instead of recomputing them.
///
/// [`DeltaExec::seed`] populates the caches from scratch — it is the same
/// delta pass run in a mode where table scans emit their full stored content
/// as insertions, so seeding, maintenance and fallback share one operator
/// algebra. [`DeltaExec::apply`] then folds a committed [`StorageDelta`] in:
/// subtrees whose referenced tables (and `WITH`-bound inputs) are untouched
/// are skipped without recursion, and the root's emitted delta tells the
/// caller exactly which output rows changed. `apply` returns `Ok(None)` when
/// the write falls outside the incremental fragment (a correlated `EXISTS`
/// over a mutated table); the caller re-seeds against post-state storage —
/// correct by construction, since seeding is the same algebra.
///
/// Determinism: caches are maintained retract-first-occurrence /
/// append-at-end — the same discipline [`Storage::apply_delta`]
/// (`crate::delta`) uses for tables — and no operator lets hash-map
/// iteration order reach its output, so two structurally identical subplans
/// (e.g. the shared outer-query CTE of two shredded stages) maintained from
/// identical seeds stay row-for-row identical. Window numbering
/// (`RowNumber`) therefore assigns the same ranks in every stage, which is
/// what keeps cross-stage index joins consistent under maintenance.
pub struct DeltaExec {
    caches: Vec<Vec<Row>>,
    /// Static per-node facts (subtree extent, referenced tables, free CTEs),
    /// computed once at construction so the per-write pass never re-walks
    /// the plan structure.
    info: Vec<NodeInfo>,
    /// Lazily memoised output schema per node (schemas are static for a
    /// fixed plan — the `WITH` bindings visible at a node never change).
    schemas: Vec<Option<Arc<Vec<SchemaCol>>>>,
    /// Set by an operator arm that installed its own cache contents (e.g.
    /// `RowNumber` keeping its cache in rank order); tells [`delta_node`] to
    /// skip the generic retract/append cache fold for that node.
    cache_replaced: bool,
    /// Per-`HashJoin`-node persistent hash indexes (one per side, keyed by
    /// the join key values), maintained incrementally from the same deltas
    /// as the row caches. A delta probes the *other* side's index instead of
    /// scanning its full cached rows, so a small write costs O(delta ×
    /// matches) rather than O(cache).
    join_index: Vec<Option<JoinIndex>>,
}

/// The two sides' hash indexes of one `HashJoin` node. Bucket order is
/// insertion order with first-occurrence removal — the same discipline as
/// the row caches — so probe output stays deterministic.
#[derive(Default)]
struct JoinIndex {
    left: HashMap<Row, Vec<Row>>,
    right: HashMap<Row, Vec<Row>>,
}

impl JoinIndex {
    /// Fold one signed row into a side's index; `Err` when a retraction
    /// misses (the write is outside the incremental fragment).
    fn fold(
        side: &mut HashMap<Row, Vec<Row>>,
        key: Row,
        row: &Row,
        sign: i64,
    ) -> Result<(), DeltaFail> {
        if sign > 0 {
            side.entry(key).or_default().push(row.clone());
            return Ok(());
        }
        let missed = match side.get_mut(&key) {
            Some(bucket) => match bucket.iter().position(|r| r == row) {
                Some(at) => {
                    bucket.remove(at);
                    if bucket.is_empty() {
                        side.remove(&key);
                    }
                    false
                }
                None => true,
            },
            None => true,
        };
        if missed {
            return Err(DeltaFail::Bail);
        }
        Ok(())
    }
}

/// Per-node static facts, indexed by pre-order position.
#[derive(Default)]
struct NodeInfo {
    /// Pre-order slots this node's subtree occupies (itself included).
    len: usize,
    /// Pre-order index of the node's first structural child (expression
    /// subplans occupy the slots in between).
    first_child: usize,
    /// Every stored table scanned anywhere in the subtree.
    tables: Vec<String>,
    /// Every free `WITH`-bound name the subtree reads.
    free_ctes: Vec<String>,
    /// Does the subtree execute a correlated subplan (exists-semijoin or an
    /// `EXISTS` inside an expression)? Only those consult a `WITH` binding's
    /// *materialised* batch, so `With` maintenance skips materialisation
    /// when this is false.
    execs_subplans: bool,
    /// Is this node's cache read during *incremental* maintenance? Most
    /// operators are pure delta transformers — only caches somebody actually
    /// consults (the root's output, rank and bag-difference state, the sides
    /// of non-indexed joins, materialised `WITH` definitions) are worth the
    /// per-write retraction sweep; the rest go stale until the next seed,
    /// which rebuilds every cache anyway.
    live_cache: bool,
}

fn build_node_info(plan: &PhysicalPlan, acc: &mut Vec<NodeInfo>) {
    let idx = acc.len();
    acc.push(NodeInfo::default());
    for sub in plan.expr_subplans() {
        build_node_info(sub, acc);
    }
    let first_child = acc.len();
    for child in plan.children() {
        build_node_info(child, acc);
    }
    acc[idx] = NodeInfo {
        len: acc.len() - idx,
        first_child,
        tables: plan.referenced_tables().into_iter().collect(),
        free_ctes: plan.free_ctes().into_iter().collect(),
        execs_subplans: plan_execs_subplans(plan),
        live_cache: false,
    };
}

/// Mark the node caches that incremental maintenance actually reads (see
/// [`NodeInfo::live_cache`]). Mirrors `delta_op`'s consumers exactly:
/// anything unmarked is never consulted between seeds.
fn mark_live_caches(plan: &PhysicalPlan, idx: usize, info: &mut [NodeInfo]) {
    let child_idx = info[idx].first_child;
    match plan {
        PhysicalPlan::NestedLoopJoin { .. } => {
            // Δ(L × R) joins each side's delta against the other's cache.
            info[child_idx].live_cache = true;
            let right_idx = child_idx + info[child_idx].len;
            info[right_idx].live_cache = true;
        }
        PhysicalPlan::RowNumber { specs, .. } => {
            info[idx].live_cache = true;
            if all_col_specs(specs).is_none() {
                // The interpreter fallback re-ranks the full input.
                info[child_idx].live_cache = true;
            }
        }
        PhysicalPlan::Distinct { .. } => {
            // Multiplicity recovery reads the child's post-delta rows.
            info[child_idx].live_cache = true;
        }
        PhysicalPlan::ExceptAll { .. } => {
            // The bag difference is replayed from both children in full.
            info[idx].live_cache = true;
            info[child_idx].live_cache = true;
            let right_idx = child_idx + info[child_idx].len;
            info[right_idx].live_cache = true;
        }
        PhysicalPlan::With { .. } => {
            let body_idx = child_idx + info[child_idx].len;
            if info[body_idx].execs_subplans {
                // Correlated subplans in the body read the materialised
                // definition.
                info[child_idx].live_cache = true;
            }
        }
        _ => {}
    }
    let mut at = child_idx;
    for child in plan.children() {
        mark_live_caches(child, at, info);
        at += info[at].len;
    }
}

impl DeltaExec {
    /// Empty caches for a plan; call [`DeltaExec::seed`] before `apply`.
    pub fn new(plan: &PhysicalPlan) -> DeltaExec {
        let mut info = Vec::new();
        build_node_info(plan, &mut info);
        mark_live_caches(plan, 0, &mut info);
        // The root's cache is the public output ([`DeltaExec::rows`]).
        info[0].live_cache = true;
        let n = info.len();
        DeltaExec {
            caches: vec![Vec::new(); n],
            info,
            schemas: vec![None; n],
            cache_replaced: false,
            join_index: (0..n).map(|_| None).collect(),
        }
    }

    /// (Re)build every operator cache from scratch against `storage`. The
    /// root cache afterwards holds the plan's full output (row-major).
    pub fn seed(
        &mut self,
        plan: &PhysicalPlan,
        storage: &Storage,
        params: &ParamValues,
    ) -> Result<(), EngineError> {
        for cache in &mut self.caches {
            cache.clear();
        }
        for index in &mut self.join_index {
            *index = None;
        }
        let empty = StorageDelta::default();
        let ctx = DeltaCtx {
            storage,
            params,
            mode: DeltaMode::Seed,
            delta: &empty,
        };
        match self.delta_node(plan, 0, &ctx, &DeltaEnv::default()) {
            Ok(_) => Ok(()),
            Err(DeltaFail::Err(e)) => Err(e),
            Err(DeltaFail::Bail) => Err(EngineError::TypeError(
                "delta seed pass bailed (internal invariant violated)".to_string(),
            )),
        }
    }

    /// Fold a committed write delta into the caches. `storage` must be the
    /// **post-state** (the delta already applied): incremental operators
    /// work off their caches and the delta alone, and the only storage reads
    /// are correlated `EXISTS` subplans over tables the delta provably did
    /// not touch (where pre- and post-state agree).
    ///
    /// Returns the root's normalised output delta, or `None` when the write
    /// falls outside the incremental fragment — the caches are then stale
    /// and the caller must [`DeltaExec::seed`] again.
    pub fn apply(
        &mut self,
        plan: &PhysicalPlan,
        storage: &Storage,
        params: &ParamValues,
        delta: &StorageDelta,
    ) -> Result<Option<DeltaRows>, EngineError> {
        let ctx = DeltaCtx {
            storage,
            params,
            mode: DeltaMode::Incremental,
            delta,
        };
        match self.delta_node(plan, 0, &ctx, &DeltaEnv::default()) {
            Ok(delta) => Ok(Some(delta)),
            Err(DeltaFail::Bail) => Ok(None),
            Err(DeltaFail::Err(e)) => Err(e),
        }
    }

    /// The plan's full current output: the root node's cache.
    pub fn rows(&self) -> &[Row] {
        &self.caches[0]
    }

    /// Can the subtree at `idx` be skipped outright for this write? Yes when
    /// none of its scanned tables are touched and every free `WITH`-bound
    /// input it reads has an empty delta. Also doubles as the "is a
    /// correlated subplan safe to evaluate against post-state storage?"
    /// check — the write then provably did not change anything it reads.
    fn can_skip(&self, idx: usize, ctx: &DeltaCtx<'_>, env: &DeltaEnv) -> bool {
        let info = &self.info[idx];
        info.tables.iter().all(|t| !ctx.delta.touches(t))
            && info
                .free_ctes
                .iter()
                .all(|n| env.delta_of(n).is_some_and(Vec::is_empty))
    }

    fn delta_node(
        &mut self,
        plan: &PhysicalPlan,
        idx: usize,
        ctx: &DeltaCtx<'_>,
        env: &DeltaEnv,
    ) -> Result<DeltaRows, DeltaFail> {
        if ctx.mode == DeltaMode::Incremental {
            if self.can_skip(idx, ctx, env) {
                return Ok(Vec::new());
            }
            // Expression subplans occupy the pre-order slots between this
            // node and its first structural child.
            let mut sub = idx + 1;
            while sub < self.info[idx].first_child {
                if !self.can_skip(sub, ctx, env) {
                    return Err(DeltaFail::Bail);
                }
                sub += self.info[sub].len;
            }
        }
        // Operators that install their cache contents themselves (rank and
        // bag-difference nodes, whose caches are kept in *output* order) set
        // `cache_replaced`; everyone else gets the generic signed-delta
        // cache update.
        self.cache_replaced = false;
        let raw = self.delta_op(plan, idx, ctx, env)?;
        let replaced = std::mem::take(&mut self.cache_replaced);
        let delta = normalise_delta(raw);
        // Seeding fills every cache (the seed pass reads them as it goes);
        // afterwards only the caches some operator actually consults are
        // kept current.
        if !replaced && (ctx.mode == DeltaMode::Seed || self.info[idx].live_cache) {
            self.update_cache(idx, &delta)?;
        }
        Ok(delta)
    }

    fn delta_op(
        &mut self,
        plan: &PhysicalPlan,
        idx: usize,
        ctx: &DeltaCtx<'_>,
        env: &DeltaEnv,
    ) -> Result<DeltaRows, DeltaFail> {
        let child_idx = self.info[idx].first_child;
        match plan {
            PhysicalPlan::UnitRow => Ok(match ctx.mode {
                DeltaMode::Seed => vec![(Vec::new(), 1)],
                DeltaMode::Incremental => Vec::new(),
            }),
            PhysicalPlan::TableScan { table, columns, .. } => match ctx.mode {
                DeltaMode::Seed => {
                    let table = ctx.storage.table(table)?;
                    let names = table.def.column_names();
                    if names != *columns {
                        return Err(EngineError::TypeError(format!(
                            "physical plan for table {} was compiled against columns ({}) \
                             but storage has ({})",
                            table.def.name,
                            columns.join(", "),
                            names.join(", ")
                        ))
                        .into());
                    }
                    Ok(table.rows.iter().map(|r| (r.clone(), 1)).collect())
                }
                DeltaMode::Incremental => Ok(ctx
                    .delta
                    .get(table)
                    .map(|d| d.signed_rows().map(|(r, s)| (r.clone(), s)).collect())
                    .unwrap_or_default()),
            },
            PhysicalPlan::CteScan { name, .. } => Ok(env
                .delta_of(name)
                .ok_or_else(|| EngineError::UnknownCte(name.clone()))?
                .clone()),
            PhysicalPlan::SubqueryScan { input, .. } => self.delta_node(input, child_idx, ctx, env),
            PhysicalPlan::NestedLoopJoin { left, right } => {
                let right_idx = child_idx + self.info[child_idx].len;
                let mut out = Vec::new();
                // Δ(L × R) = ΔL × R_old ⊎ L_new × ΔR: joining each delta
                // against the *other* side's cache as it stands at that
                // point in the pass needs no pre-recursion snapshot clones.
                let dl = self.delta_node(left, child_idx, ctx, env)?;
                for (l, sl) in &dl {
                    for r in &self.caches[right_idx] {
                        out.push((concat_rows(l, r), *sl));
                    }
                }
                let dr = self.delta_node(right, right_idx, ctx, env)?;
                for l in &self.caches[child_idx] {
                    for (r, sr) in &dr {
                        out.push((concat_rows(l, r), *sr));
                    }
                }
                Ok(out)
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                ..
            } => {
                let right_idx = child_idx + self.info[child_idx].len;
                let left_schema = self.node_schema(left, child_idx, env)?;
                let right_schema = self.node_schema(right, right_idx, env)?;
                let mut out = Vec::new();
                // Δ(L ⋈ R) = ΔL ⋈ R_old ⊎ L_new ⋈ ΔR, off the node's two
                // persistent hash indexes: ΔL probes the right index before
                // ΔR is folded in (so it sees R_old), ΔR probes the left
                // index after ΔL was folded (so it sees L_new). A small
                // write therefore costs O(delta × matches), never a scan of
                // the cached side.
                let dl = self.delta_node(left, child_idx, ctx, env)?;
                let index = self.join_index[idx].get_or_insert_with(JoinIndex::default);
                for (l, sl) in &dl {
                    let Some(key) = row_key(left_keys, l, &left_schema, ctx, env)? else {
                        continue;
                    };
                    if let Some(bucket) = index.right.get(&key) {
                        for r in bucket {
                            out.push((concat_rows(l, r), *sl));
                        }
                    }
                    JoinIndex::fold(&mut index.left, key, l, *sl)?;
                }
                let dr = self.delta_node(right, right_idx, ctx, env)?;
                let index = self.join_index[idx]
                    .as_mut()
                    .expect("join index initialised above");
                for (r, sr) in &dr {
                    let Some(key) = row_key(right_keys, r, &right_schema, ctx, env)? else {
                        continue;
                    };
                    if let Some(bucket) = index.left.get(&key) {
                        for l in bucket {
                            out.push((concat_rows(l, r), *sr));
                        }
                    }
                    JoinIndex::fold(&mut index.right, key, r, *sr)?;
                }
                Ok(out)
            }
            PhysicalPlan::Filter { input, predicate } => {
                let schema = self.node_schema(input, child_idx, env)?;
                let din = self.delta_node(input, child_idx, ctx, env)?;
                let mut out = Vec::new();
                for (row, sign) in din {
                    if eval_row(predicate, &row, &schema, ctx, env)?.as_bool() == Some(true) {
                        out.push((row, sign));
                    }
                }
                Ok(out)
            }
            PhysicalPlan::ExistsSemiJoin {
                input,
                subplan,
                anti,
            } => {
                let subplan_idx = child_idx + self.info[child_idx].len;
                if ctx.mode == DeltaMode::Incremental && !self.can_skip(subplan_idx, ctx, env) {
                    return Err(DeltaFail::Bail);
                }
                let schema = self.node_schema(input, child_idx, env)?;
                let din = self.delta_node(input, child_idx, ctx, env)?;
                let vctx = VecCtx {
                    storage: ctx.storage,
                    params: ctx.params,
                    prof: None,
                };
                let mut out = Vec::new();
                for (row, sign) in din {
                    let frame = ScopeFrame {
                        schema: schema.clone(),
                        values: row.clone(),
                    };
                    let inner = exec(
                        subplan,
                        &vctx,
                        &env.materialised,
                        &ScopeStack::default().pushed(frame),
                    )?;
                    if inner.is_empty() == *anti {
                        out.push((row, sign));
                    }
                }
                Ok(out)
            }
            PhysicalPlan::HashSemiJoin {
                input,
                build,
                probe_keys,
                build_keys,
                anti,
            } => {
                // Fully incremental — this is what moves decorrelated
                // Q2-shaped stages out of the reseed-on-every-write path.
                // The node keeps a `JoinIndex`: `left` holds the input rows
                // by probe key (NULL-keyed rows excluded — their membership
                // never depends on the build side), `right` the build rows
                // by build key. Δout decomposes as
                //   Δout = Σ_{keys whose build membership toggled} ±I_old(k)
                //        ⊎ ΔI probed against K_new,
                // processing build toggles against the *pre-ΔI* input index
                // and the input delta against the *post-ΔB* key set.
                let build_idx = child_idx + self.info[child_idx].len;
                let din = self.delta_node(input, child_idx, ctx, env)?;
                let db = self.delta_node(build, build_idx, ctx, env)?;
                let input_schema = self.node_schema(input, child_idx, env)?;
                let build_schema = self.node_schema(build, build_idx, env)?;
                let mut out = Vec::new();
                let semi_sign = if *anti { -1 } else { 1 };
                let index = self.join_index[idx].get_or_insert_with(JoinIndex::default);
                for (brow, sign) in &db {
                    let Some(key) = row_key(build_keys, brow, &build_schema, ctx, env)? else {
                        continue;
                    };
                    let present_before = index.right.contains_key(&key);
                    JoinIndex::fold(&mut index.right, key.clone(), brow, *sign)?;
                    let present_after = index.right.contains_key(&key);
                    if present_before != present_after {
                        if let Some(bucket) = index.left.get(&key) {
                            let toggle = if present_after { 1 } else { -1 } * semi_sign;
                            for irow in bucket {
                                out.push((irow.clone(), toggle));
                            }
                        }
                    }
                }
                for (irow, sign) in &din {
                    let key = row_key(probe_keys, irow, &input_schema, ctx, env)?;
                    let matched = key.as_ref().is_some_and(|k| index.right.contains_key(k));
                    if matched != *anti {
                        out.push((irow.clone(), *sign));
                    }
                    if let Some(key) = key {
                        JoinIndex::fold(&mut index.left, key, irow, *sign)?;
                    }
                }
                Ok(out)
            }
            PhysicalPlan::RowNumber { input, specs } => {
                let schema = self.node_schema(input, child_idx, env)?;
                let din = self.delta_node(input, child_idx, ctx, env)?;
                if din.is_empty() {
                    return Ok(Vec::new());
                }
                // The common shredded shape orders each window by plain
                // columns; ranks then shift only where sorted positions
                // move, so the cached output can be patched in place from
                // the input delta alone — no re-sort, no full-output clone.
                if ctx.mode == DeltaMode::Incremental {
                    if let Some(col_specs) = all_col_specs(specs) {
                        let delta = incremental_rank(&mut self.caches[idx], &col_specs, &din)?;
                        self.cache_replaced = true;
                        return Ok(delta);
                    }
                }
                let new_out = rank_rows(&self.caches[child_idx], specs, &schema, ctx, env)?;
                let delta = positional_diff(&new_out, &self.caches[idx]);
                // Replace the cache with the freshly ranked output instead
                // of letting the generic retract/append pass disorder it:
                // `positional_diff` only stays O(change) while the cache
                // mirrors the input order it is diffed against.
                self.caches[idx] = new_out;
                self.cache_replaced = true;
                Ok(delta)
            }
            PhysicalPlan::Sort { input, .. } => {
                // Bag semantics downstream: a sort re-orders, never changes
                // membership, so its delta is its input's.
                self.delta_node(input, child_idx, ctx, env)
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                let schema = self.node_schema(input, child_idx, env)?;
                let din = self.delta_node(input, child_idx, ctx, env)?;
                let mut out = Vec::with_capacity(din.len());
                for (row, sign) in din {
                    let projected = exprs
                        .iter()
                        .map(|e| eval_row(e, &row, &schema, ctx, env))
                        .collect::<Result<Row, _>>()?;
                    out.push((projected, sign));
                }
                Ok(out)
            }
            PhysicalPlan::Distinct { input } => {
                let din = self.delta_node(input, child_idx, ctx, env)?;
                // Pre-delta multiplicities of just the rows the delta
                // mentions, recovered from the already-updated child cache
                // (old = new − net delta) — no full-input clone or hash.
                let mut counts: HashMap<Row, i64> = HashMap::new();
                for (row, _) in &din {
                    if !counts.contains_key(row) {
                        let new_count =
                            self.caches[child_idx].iter().filter(|r| *r == row).count() as i64;
                        let net: i64 = din
                            .iter()
                            .filter(|(r, _)| r == row)
                            .map(|(_, sign)| *sign)
                            .sum();
                        counts.insert(row.clone(), new_count - net);
                    }
                }
                let mut out = Vec::new();
                for (row, sign) in din {
                    let count = counts.entry(row.clone()).or_insert(0);
                    let before = *count;
                    *count += sign;
                    if before == 0 && *count > 0 {
                        out.push((row, 1));
                    } else if before > 0 && *count == 0 {
                        out.push((row, -1));
                    }
                }
                Ok(out)
            }
            PhysicalPlan::UnionAll(branches) => {
                let mut out = Vec::new();
                let mut at = child_idx;
                for branch in branches {
                    out.extend(self.delta_node(branch, at, ctx, env)?);
                    at += self.info[at].len;
                }
                Ok(out)
            }
            PhysicalPlan::ExceptAll { left, right } => {
                let right_idx = child_idx + self.info[child_idx].len;
                let dl = self.delta_node(left, child_idx, ctx, env)?;
                let dr = self.delta_node(right, right_idx, ctx, env)?;
                if dl.is_empty() && dr.is_empty() {
                    return Ok(Vec::new());
                }
                let new_out = bag_difference(&self.caches[child_idx], &self.caches[right_idx]);
                let delta = positional_diff(&new_out, &self.caches[idx]);
                self.caches[idx] = new_out;
                self.cache_replaced = true;
                Ok(delta)
            }
            PhysicalPlan::With {
                name,
                definition,
                body,
            } => {
                let body_idx = child_idx + self.info[child_idx].len;
                let ddef = self.delta_node(definition, child_idx, ctx, env)?;
                let def_schema = self.node_schema(definition, child_idx, env)?;
                let mut extended = env.clone();
                extended.deltas.push((name.clone(), ddef));
                extended.schemas.push((name.clone(), def_schema.clone()));
                // Only correlated subplans read a *materialised* binding
                // (delta consumers go through `deltas`); skip the full
                // clone-and-transpose of the definition cache unless the
                // body actually executes one.
                if self.info[body_idx].execs_subplans {
                    let bound = Batch::from_rows(def_schema, self.caches[child_idx].clone());
                    extended.materialised = env.materialised.extended(name, bound);
                }
                self.delta_node(body, body_idx, ctx, &extended)
            }
        }
    }

    /// The batch schema a node's output rows carry (the static twin of the
    /// schemas [`exec_node`] constructs), used to build correlation frames
    /// for `EXISTS` subplans. Memoised per node: for a fixed plan, the
    /// `WITH` bindings visible at a node — and hence its schema — never
    /// change across passes.
    fn node_schema(
        &mut self,
        plan: &PhysicalPlan,
        idx: usize,
        env: &DeltaEnv,
    ) -> Result<Arc<Vec<SchemaCol>>, DeltaFail> {
        if let Some(schema) = &self.schemas[idx] {
            return Ok(Arc::clone(schema));
        }
        let schema = batch_schema(plan, &env.schemas)?;
        self.schemas[idx] = Some(Arc::clone(&schema));
        Ok(schema)
    }

    /// Fold a normalised delta into a node cache: retractions remove the
    /// first matching row, insertions append. A retraction that misses the
    /// cache signals a write outside the incremental fragment → bail.
    ///
    /// Retractions are applied in one mark-and-sweep pass (first occurrences
    /// win, matching `Storage::apply_delta`), so a delta with many
    /// retractions costs O(cache + delta) instead of one linear scan per
    /// retracted row.
    fn update_cache(&mut self, idx: usize, delta: &DeltaRows) -> Result<(), DeltaFail> {
        let mut pending: Vec<&Row> = delta
            .iter()
            .filter(|(_, sign)| *sign < 0)
            .map(|(row, _)| row)
            .collect();
        if pending.len() <= 8 {
            // The common small write: match retractions by fast-fail row
            // equality instead of hashing every cached row.
            if !pending.is_empty() {
                self.caches[idx].retain(|r| match pending.iter().position(|p| *p == r) {
                    Some(i) => {
                        pending.swap_remove(i);
                        false
                    }
                    None => true,
                });
                if !pending.is_empty() {
                    return Err(DeltaFail::Bail);
                }
            }
        } else {
            let mut counts: HashMap<&Row, i64> = HashMap::new();
            for row in &pending {
                *counts.entry(row).or_insert(0) += 1;
            }
            let mut outstanding = pending.len() as i64;
            self.caches[idx].retain(|r| match counts.get_mut(r) {
                Some(c) if *c > 0 => {
                    *c -= 1;
                    outstanding -= 1;
                    false
                }
                _ => true,
            });
            if outstanding > 0 {
                return Err(DeltaFail::Bail);
            }
        }
        for (row, sign) in delta {
            if *sign > 0 {
                self.caches[idx].push(row.clone());
            }
        }
        Ok(())
    }
}

/// Does any node of this subtree execute a correlated subplan (an
/// exists-semijoin or an `EXISTS` inside an expression)? Only those consult
/// a `WITH` binding's *materialised* batch — every other consumer works off
/// the binding's delta — so `With` maintenance can skip materialisation
/// when this is false.
fn plan_execs_subplans(plan: &PhysicalPlan) -> bool {
    plan.nodes()
        .iter()
        .any(|n| matches!(n, PhysicalPlan::ExistsSemiJoin { .. }) || !n.expr_subplans().is_empty())
}

/// Positional diff of a recomputed output against the cached one: skip the
/// longest common prefix and suffix, retract the remaining old rows, insert
/// the remaining new rows. Multiset-equivalent to a full two-sided diff, but
/// the localised edits rank recomputation produces (one row changed, a
/// shifted tail) cost O(change) instead of O(output) rows — and only the
/// changed middle is ever cloned.
fn positional_diff(new: &[Row], old: &[Row]) -> DeltaRows {
    let mut start = 0;
    while start < new.len() && start < old.len() && new[start] == old[start] {
        start += 1;
    }
    let mut old_end = old.len();
    let mut new_end = new.len();
    while old_end > start && new_end > start && old[old_end - 1] == new[new_end - 1] {
        old_end -= 1;
        new_end -= 1;
    }
    let mut out: DeltaRows = old[start..old_end]
        .iter()
        .map(|r| (r.clone(), -1))
        .collect();
    out.extend(new[start..new_end].iter().map(|r| (r.clone(), 1)));
    out
}

/// Cancel opposite-signed mentions of the same row and order the result
/// retractions-first (each with unit sign), in first-mention order — the
/// shape [`DeltaExec::update_cache`] consumes.
fn normalise_delta(rows: DeltaRows) -> DeltaRows {
    let mut order: Vec<(Row, i64)> = Vec::new();
    let mut index: HashMap<Row, usize> = HashMap::new();
    for (row, sign) in rows {
        match index.get(&row) {
            Some(&i) => order[i].1 += sign,
            None => {
                index.insert(row.clone(), order.len());
                order.push((row, sign));
            }
        }
    }
    let mut out = Vec::new();
    for (row, net) in &order {
        for _ in 0..(-net).max(0) {
            out.push((row.clone(), -1));
        }
    }
    for (row, net) in order {
        for _ in 0..net.max(0) {
            out.push((row.clone(), 1));
        }
    }
    out
}

/// Concatenate two rows (the join output shape).
fn concat_rows(l: &Row, r: &Row) -> Row {
    let mut out = Vec::with_capacity(l.len() + r.len());
    out.extend_from_slice(l);
    out.extend_from_slice(r);
    out
}

/// Evaluate join keys over one row; `None` when any key value is `NULL`
/// (`NULL` never joins, matching the batch executor).
fn row_key(
    keys: &[VExpr],
    row: &Row,
    schema: &Arc<Vec<SchemaCol>>,
    ctx: &DeltaCtx<'_>,
    env: &DeltaEnv,
) -> Result<Option<Row>, DeltaFail> {
    let mut out = Vec::with_capacity(keys.len());
    for k in keys {
        let v = eval_row(k, row, schema, ctx, env)?;
        if v.is_null() {
            return Ok(None);
        }
        out.push(v);
    }
    Ok(Some(out))
}

/// When every window spec orders by plain columns, the per-spec key column
/// indices; `None` as soon as any key needs the expression interpreter.
fn all_col_specs(specs: &[Vec<VExpr>]) -> Option<Vec<Vec<usize>>> {
    specs
        .iter()
        .map(|keys| {
            keys.iter()
                .map(|k| match k {
                    VExpr::Col { index, .. } => Some(*index),
                    _ => None,
                })
                .collect()
        })
        .collect()
}

/// Compare two rows on a window's key columns (both rows carry the input
/// columns in their prefix).
fn cmp_keys(a: &[SqlValue], b: &[SqlValue], cols: &[usize]) -> Ordering {
    for &c in cols {
        let ord = a[c].sql_cmp(&b[c]);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Patch a `RowNumber` node's cached output in place from its input delta,
/// returning the exact signed output delta.
///
/// The cache holds `input row ++ one rank column per spec`, aligned with the
/// child cache's row order (both are maintained retract-first-occurrence /
/// append-at-end from the same seeds). A rank only changes when a retraction
/// or insertion lands strictly before the row in a window's sort order —
/// with ties broken by input order, exactly the comparator `rank_rows`
/// numbers by — so one pass over the cache computes every shifted rank:
/// O(cache × delta) cheap key comparisons, cloning only the rows that
/// actually change.
fn incremental_rank(
    cache: &mut Vec<Row>,
    specs: &[Vec<usize>],
    din: &DeltaRows,
) -> Result<DeltaRows, DeltaFail> {
    let nspecs = specs.len();
    let mut retr: Vec<&Row> = Vec::new();
    let mut ins: Vec<&Row> = Vec::new();
    for (row, sign) in din {
        if *sign < 0 {
            retr.push(row);
        } else {
            ins.push(row);
        }
    }
    let arity = cache
        .first()
        .map(|r| r.len() - nspecs)
        .unwrap_or_else(|| ins.first().map(|r| r.len()).unwrap_or(0));
    // First-occurrence positions of the retracted input rows (matching the
    // discipline the child cache was updated with).
    let mut retr_pos: Vec<Option<usize>> = vec![None; retr.len()];
    let mut consumed = vec![false; retr.len()];
    for (pos, row) in cache.iter().enumerate() {
        for (ri, r) in retr.iter().enumerate() {
            if !consumed[ri] && row[..arity] == r[..] {
                consumed[ri] = true;
                retr_pos[ri] = Some(pos);
                break;
            }
        }
    }
    if consumed.iter().any(|c| !c) {
        return Err(DeltaFail::Bail);
    }
    let retracted: HashSet<usize> = retr_pos.iter().map(|p| p.expect("consumed")).collect();
    let mut retractions: DeltaRows = Vec::new();
    let mut insertions: DeltaRows = Vec::new();
    // For each insertion and spec, how many surviving rows sort before it
    // (ties go to the survivor: appended rows are last in input order).
    let mut ins_before: Vec<Vec<i64>> = vec![vec![0; nspecs]; ins.len()];
    for (pos, row) in cache.iter_mut().enumerate() {
        if retracted.contains(&pos) {
            retractions.push((row.clone(), -1));
            continue;
        }
        let mut adj = vec![0i64; nspecs];
        let mut changed = false;
        for (s, cols) in specs.iter().enumerate() {
            for r in &ins {
                if cmp_keys(r, row, cols) == Ordering::Less {
                    adj[s] += 1;
                }
            }
            for (ri, r) in retr.iter().enumerate() {
                match cmp_keys(r, row, cols) {
                    Ordering::Less => adj[s] -= 1,
                    // An equal-keyed retraction shifts this row only if it
                    // preceded it in input order.
                    Ordering::Equal if retr_pos[ri].expect("consumed") < pos => adj[s] -= 1,
                    _ => {}
                }
            }
            for (i, r) in ins.iter().enumerate() {
                if cmp_keys(row, r, cols) != Ordering::Greater {
                    ins_before[i][s] += 1;
                }
            }
            changed |= adj[s] != 0;
        }
        if changed {
            retractions.push((row.clone(), -1));
            for (s, a) in adj.iter().enumerate() {
                if let SqlValue::Int(n) = &mut row[arity + s] {
                    *n += a;
                }
            }
            insertions.push((row.clone(), 1));
        }
    }
    // Drop the retracted rows, then append the inserted ones with their
    // ranks: survivors before them, plus earlier-appended peers.
    let mut pos = 0;
    cache.retain(|_| {
        let keep = !retracted.contains(&pos);
        pos += 1;
        keep
    });
    for (i, r) in ins.iter().enumerate() {
        let mut row: Row = (*r).clone();
        for (s, cols) in specs.iter().enumerate() {
            // Peer insertions sort before this one when strictly smaller,
            // or equal-keyed but appended earlier.
            let peers: i64 = ins
                .iter()
                .enumerate()
                .filter(|(j, jr)| match cmp_keys(jr, r, cols) {
                    Ordering::Less => true,
                    Ordering::Equal => *j < i,
                    Ordering::Greater => false,
                })
                .count() as i64;
            row.push(SqlValue::Int(1 + ins_before[i][s] + peers));
        }
        insertions.push((row.clone(), 1));
        cache.push(row);
    }
    retractions.extend(insertions);
    Ok(retractions)
}

/// Scalar re-ranking: the row-at-a-time twin of the batch `RowNumber`
/// operator. Appends one 1-based `#rn<i>` column per window spec, numbering
/// by a stable sort over the spec's keys — identical comparator, identical
/// tie-breaking by input order, so a maintained cache and a fresh batch
/// execution over the same input order produce identical ranks.
fn rank_rows(
    input: &[Row],
    specs: &[Vec<VExpr>],
    input_schema: &Arc<Vec<SchemaCol>>,
    ctx: &DeltaCtx<'_>,
    env: &DeltaEnv,
) -> Result<Vec<Row>, DeltaFail> {
    let mut rows: Vec<Row> = input.to_vec();
    let mut schema = input_schema.as_ref().clone();
    for (spec_idx, keys) in specs.iter().enumerate() {
        // The common shredded shape orders by plain columns; indexing
        // directly keeps this maintenance hot path free of the expression
        // interpreter.
        let col_keys: Option<Vec<usize>> = keys
            .iter()
            .map(|k| match k {
                VExpr::Col { index, .. } => Some(*index),
                _ => None,
            })
            .collect();
        let key_values: Vec<Row> = match &col_keys {
            Some(cols) => rows
                .iter()
                .map(|r| cols.iter().map(|&c| r[c].clone()).collect())
                .collect(),
            None => {
                let schema_arc = Arc::new(schema.clone());
                rows.iter()
                    .map(|r| {
                        keys.iter()
                            .map(|k| eval_row(k, r, &schema_arc, ctx, env))
                            .collect::<Result<Row, _>>()
                    })
                    .collect::<Result<Vec<Row>, _>>()?
            }
        };
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by(|&a, &b| compare_rows(&key_values[a], &key_values[b]));
        let mut rn = vec![0i64; rows.len()];
        for (number, row_idx) in order.into_iter().enumerate() {
            rn[row_idx] = (number + 1) as i64;
        }
        for (row, n) in rows.iter_mut().zip(rn) {
            row.push(SqlValue::Int(n));
        }
        schema.push((None, format!("#rn{}", spec_idx)));
    }
    Ok(rows)
}

/// Bag difference preserving left order (the `EXCEPT ALL` replay used to
/// diff an except node's output).
fn bag_difference(left: &[Row], right: &[Row]) -> Vec<Row> {
    let mut counts: HashMap<Row, usize> = HashMap::new();
    for row in right {
        *counts.entry(row.clone()).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for row in left {
        match counts.get_mut(row) {
            Some(n) if *n > 0 => *n -= 1,
            _ => out.push(row.clone()),
        }
    }
    out
}

/// Scalar expression evaluation over one cached row (the row-at-a-time twin
/// of [`eval`]). Correlated `EXISTS` subplans run on the ordinary batch
/// executor with the row pushed as a scope frame.
fn eval_row(
    expr: &VExpr,
    row: &Row,
    schema: &Arc<Vec<SchemaCol>>,
    ctx: &DeltaCtx<'_>,
    env: &DeltaEnv,
) -> Result<SqlValue, DeltaFail> {
    match expr {
        VExpr::Col { index, .. } => Ok(row[*index].clone()),
        VExpr::Outer { table, column } => {
            // Stage-level expressions never reference an enclosing query —
            // outer references only occur inside EXISTS subplans, which
            // execute via `exec` with a pushed frame.
            Err(EngineError::UnknownColumn {
                qualifier: table.clone(),
                name: column.clone(),
            }
            .into())
        }
        VExpr::Lit(v) => Ok(v.clone()),
        VExpr::Param(name) => ctx
            .params
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnboundParameter(name.clone()).into()),
        VExpr::BinOp { op, left, right } => {
            let l = eval_row(left, row, schema, ctx, env)?;
            let r = eval_row(right, row, schema, ctx, env)?;
            Ok(eval_binop(*op, l, r)?)
        }
        VExpr::Not(inner) => match eval_row(inner, row, schema, ctx, env)? {
            SqlValue::Bool(b) => Ok(SqlValue::Bool(!b)),
            SqlValue::Null => Ok(SqlValue::Null),
            other => {
                Err(EngineError::TypeError(format!("NOT applied to {}", other.type_name())).into())
            }
        },
        VExpr::Exists(subplan) => {
            let vctx = VecCtx {
                storage: ctx.storage,
                params: ctx.params,
                prof: None,
            };
            let frame = ScopeFrame {
                schema: schema.clone(),
                values: row.clone(),
            };
            let inner = exec(
                subplan,
                &vctx,
                &env.materialised,
                &ScopeStack::default().pushed(frame),
            )?;
            Ok(SqlValue::Bool(!inner.is_empty()))
        }
    }
}

/// The schema of the batch a plan node produces — a static reconstruction
/// of the decisions [`exec_node`] makes, so the delta executor can build
/// correlation frames without executing anything.
fn batch_schema(
    plan: &PhysicalPlan,
    cte_schemas: &[(String, Arc<Vec<SchemaCol>>)],
) -> Result<Arc<Vec<SchemaCol>>, DeltaFail> {
    fn lookup<'a>(
        cte_schemas: &'a [(String, Arc<Vec<SchemaCol>>)],
        name: &str,
    ) -> Option<&'a Arc<Vec<SchemaCol>>> {
        cte_schemas
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }
    match plan {
        PhysicalPlan::UnitRow => Ok(Arc::new(Vec::new())),
        PhysicalPlan::TableScan { alias, columns, .. } => Ok(Arc::new(
            columns
                .iter()
                .map(|c| (Some(alias.clone()), c.clone()))
                .collect(),
        )),
        PhysicalPlan::CteScan { name, alias, .. } => {
            let bound =
                lookup(cte_schemas, name).ok_or_else(|| EngineError::UnknownCte(name.clone()))?;
            Ok(Arc::new(
                bound
                    .iter()
                    .map(|(_, c)| (Some(alias.clone()), c.clone()))
                    .collect(),
            ))
        }
        PhysicalPlan::SubqueryScan { input, alias } => {
            let inner = batch_schema(input, cte_schemas)?;
            Ok(Arc::new(
                inner
                    .iter()
                    .map(|(_, c)| (Some(alias.clone()), c.clone()))
                    .collect(),
            ))
        }
        PhysicalPlan::NestedLoopJoin { left, right }
        | PhysicalPlan::HashJoin { left, right, .. } => {
            let mut schema = batch_schema(left, cte_schemas)?.as_ref().clone();
            schema.extend(batch_schema(right, cte_schemas)?.iter().cloned());
            Ok(Arc::new(schema))
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::ExistsSemiJoin { input, .. }
        | PhysicalPlan::HashSemiJoin { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Distinct { input } => batch_schema(input, cte_schemas),
        PhysicalPlan::RowNumber { input, specs } => {
            let mut schema = batch_schema(input, cte_schemas)?.as_ref().clone();
            schema.extend((0..specs.len()).map(|i| (None, format!("#rn{}", i))));
            Ok(Arc::new(schema))
        }
        PhysicalPlan::Project { columns, .. } => Ok(Arc::new(
            columns.iter().map(|c| (None, c.clone())).collect(),
        )),
        PhysicalPlan::UnionAll(branches) => {
            let first = branches
                .first()
                .ok_or_else(|| EngineError::TypeError("empty UNION ALL".to_string()))?;
            batch_schema(first, cte_schemas)
        }
        PhysicalPlan::ExceptAll { left, .. } => batch_schema(left, cte_schemas),
        PhysicalPlan::With {
            name,
            definition,
            body,
        } => {
            let def = batch_schema(definition, cte_schemas)?;
            let mut extended = cte_schemas.to_vec();
            extended.push((name.clone(), def));
            batch_schema(body, &extended)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, Query, Select};
    use crate::exec::Engine;
    use crate::storage::{ColumnType, ResultSet, TableDef};

    fn engine() -> Engine {
        let mut storage = Storage::new();
        storage
            .create_table(TableDef::new(
                "nums",
                vec![("n", ColumnType::Int), ("tag", ColumnType::Text)],
            ))
            .unwrap();
        for (n, tag) in [(1, "odd"), (2, "even"), (3, "odd"), (4, "even")] {
            storage
                .insert("nums", vec![SqlValue::Int(n), SqlValue::str(tag)])
                .unwrap();
        }
        Engine::with_storage(storage)
    }

    fn run_both(engine: &Engine, q: &Query) -> (ResultSet, ResultSet) {
        let interpreted = engine.execute_interpreted(q).unwrap();
        let plan = engine.prepare(q).unwrap();
        let vectorized = engine.execute_plan(&plan).unwrap().into_result_set();
        (interpreted, vectorized)
    }

    #[test]
    fn scans_filters_and_projections_match_the_interpreter() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("x", "n"), "n")
                .item(
                    Expr::binop(BinOp::Mul, Expr::col("x", "n"), Expr::lit(10)),
                    "n10",
                )
                .from_named("nums", "x")
                .filter(Expr::binop(BinOp::Gt, Expr::col("x", "n"), Expr::lit(1))),
        );
        let (i, v) = run_both(&engine(), &q);
        assert_eq!(i, v);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn hash_joins_match_the_interpreter() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("a", "n"), "l")
                .item(Expr::col("b", "n"), "r")
                .from_named("nums", "a")
                .from_named("nums", "b")
                .filter(Expr::eq(Expr::col("a", "tag"), Expr::col("b", "tag"))),
        );
        let (i, v) = run_both(&engine(), &q);
        assert_eq!(i.len(), v.len());
        let mut li = i.rows.clone();
        let mut lv = v.rows.clone();
        li.sort_by(|a, b| compare_rows(a, b));
        lv.sort_by(|a, b| compare_rows(a, b));
        assert_eq!(li, lv);
    }

    #[test]
    fn with_row_number_union_and_distinct_match_the_interpreter() {
        let inner = Select::new()
            .item(Expr::col("x", "tag"), "tag")
            .item(Expr::row_number(vec![Expr::col("x", "n")]), "rank")
            .from_named("nums", "x");
        let outer = Select::new()
            .item(Expr::col("q", "tag"), "tag")
            .from_named("q", "q")
            .filter(Expr::binop(BinOp::Le, Expr::col("q", "rank"), Expr::lit(2)))
            .distinct();
        let q = Query::with("q", inner, Query::select(outer));
        let (i, v) = run_both(&engine(), &q);
        assert_eq!(i, v);
    }

    #[test]
    fn correlated_exists_matches_the_interpreter() {
        let sub = Query::select(
            Select::new()
                .item(Expr::lit(1), "one")
                .from_named("nums", "y")
                .filter(Expr::and(
                    Expr::eq(Expr::col("y", "tag"), Expr::col("x", "tag")),
                    Expr::binop(BinOp::Gt, Expr::col("y", "n"), Expr::col("x", "n")),
                )),
        );
        let q = Query::select(
            Select::new()
                .item(Expr::col("x", "n"), "n")
                .from_named("nums", "x")
                .filter(Expr::not(Expr::Exists(Box::new(sub)))),
        );
        let (i, v) = run_both(&engine(), &q);
        assert_eq!(i, v);
        // The largest odd and even numbers survive the anti-join.
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn order_by_and_except_all_match_the_interpreter() {
        let all = Select::new()
            .item(Expr::col("x", "tag"), "tag")
            .from_named("nums", "x")
            .order_by(Expr::col("x", "n"));
        let odd = Select::new()
            .item(Expr::col("x", "tag"), "tag")
            .from_named("nums", "x")
            .filter(Expr::eq(Expr::col("x", "tag"), Expr::lit("odd")));
        let q = Query::ExceptAll(Box::new(Query::select(all)), Box::new(Query::select(odd)));
        let (i, v) = run_both(&engine(), &q);
        assert_eq!(i, v);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn a_plan_compiled_against_a_different_layout_is_refused() {
        use crate::plan::{plan_query, SchemaCatalog};
        // The plan resolves columns positionally against (n, tag)…
        let stale = SchemaCatalog::new(vec![TableDef::new(
            "nums",
            vec![("tag", ColumnType::Text), ("n", ColumnType::Int)],
        )]);
        let q = Query::select(
            Select::new()
                .item(Expr::col("x", "n"), "n")
                .from_named("nums", "x"),
        );
        let plan = plan_query(&q, &stale).unwrap();
        // …but the engine's table stores (n, tag): refuse, don't transpose.
        let err = engine().execute_plan(&plan).unwrap_err();
        assert!(
            err.to_string().contains("different") || err.to_string().contains("columns"),
            "got: {}",
            err
        );
    }

    #[test]
    fn select_without_from_yields_one_row() {
        let q = Query::select(Select::new().item(Expr::lit(42), "x"));
        let (i, v) = run_both(&engine(), &q);
        assert_eq!(i, v);
        assert_eq!(v.rows, vec![vec![SqlValue::Int(42)]]);
    }

    // --- delta execution -------------------------------------------------

    use crate::delta::WriteBatch;

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by(|a, b| compare_rows(a, b));
        rows
    }

    /// Seed a `DeltaExec`, commit the batch, maintain, and assert the
    /// maintained rows are multiset-equal to a fresh execution on post-state.
    fn maintain_and_check(engine: &Engine, q: &Query, batch: WriteBatch) {
        let plan = engine.prepare(q).unwrap();
        let params = ParamValues::new();
        let mut dx = DeltaExec::new(&plan);
        dx.seed(&plan, &engine.storage(), &params).unwrap();
        assert_eq!(
            sorted(dx.rows().to_vec()),
            sorted(engine.execute_plan(&plan).unwrap().into_result_set().rows),
            "seed disagrees with the batch executor"
        );
        let delta = engine.apply_batch(&batch).unwrap();
        let storage = engine.storage();
        match dx.apply(&plan, &storage, &params, &delta).unwrap() {
            Some(_) => {}
            None => dx.seed(&plan, &storage, &params).unwrap(),
        }
        drop(storage);
        assert_eq!(
            sorted(dx.rows().to_vec()),
            sorted(engine.execute_plan(&plan).unwrap().into_result_set().rows),
            "maintained rows disagree with recompute on post-state"
        );
    }

    #[test]
    fn deltas_through_scans_filters_and_joins_match_recompute() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("a", "n"), "l")
                .item(Expr::col("b", "n"), "r")
                .from_named("nums", "a")
                .from_named("nums", "b")
                .filter(Expr::eq(Expr::col("a", "tag"), Expr::col("b", "tag"))),
        );
        let batch = WriteBatch::new()
            .insert("nums", vec![SqlValue::Int(5), SqlValue::str("odd")])
            .delete("nums", vec![SqlValue::Int(2), SqlValue::str("even")]);
        maintain_and_check(&engine(), &q, batch);
    }

    #[test]
    fn deltas_through_with_row_number_and_distinct_match_recompute() {
        let inner = Select::new()
            .item(Expr::col("x", "tag"), "tag")
            .item(Expr::row_number(vec![Expr::col("x", "n")]), "rank")
            .from_named("nums", "x");
        let outer = Select::new()
            .item(Expr::col("q", "tag"), "tag")
            .from_named("q", "q")
            .filter(Expr::binop(BinOp::Le, Expr::col("q", "rank"), Expr::lit(2)))
            .distinct();
        let q = Query::with("q", inner, Query::select(outer));
        let batch = WriteBatch::new()
            .insert("nums", vec![SqlValue::Int(0), SqlValue::str("zero")])
            .delete("nums", vec![SqlValue::Int(1), SqlValue::str("odd")]);
        maintain_and_check(&engine(), &q, batch);
    }

    #[test]
    fn a_correlated_exists_over_a_mutated_table_bails_to_reseed() {
        let sub = Select::new()
            .item(Expr::lit(1), "one")
            .from_named("nums", "y")
            .filter(Expr::eq(Expr::col("y", "tag"), Expr::col("x", "tag")));
        let q = Query::select(
            Select::new()
                .item(Expr::col("x", "n"), "n")
                .from_named("nums", "x")
                .filter(Expr::Exists(Box::new(Query::select(sub)))),
        );
        let engine = engine();
        let plan = engine.prepare(&q).unwrap();
        let params = ParamValues::new();
        let mut dx = DeltaExec::new(&plan);
        dx.seed(&plan, &engine.storage(), &params).unwrap();
        let batch = WriteBatch::new().delete("nums", vec![SqlValue::Int(3), SqlValue::str("odd")]);
        let delta = engine.apply_batch(&batch).unwrap();
        let storage = engine.storage();
        assert!(
            dx.apply(&plan, &storage, &params, &delta)
                .unwrap()
                .is_none(),
            "EXISTS over a mutated table must fall back"
        );
        dx.seed(&plan, &storage, &params).unwrap();
        drop(storage);
        assert_eq!(
            sorted(dx.rows().to_vec()),
            sorted(engine.execute_plan(&plan).unwrap().into_result_set().rows)
        );
    }

    #[test]
    fn an_untouched_subtree_is_skipped_without_losing_rows() {
        // Two tables; mutate only one. The scan of the other must be skipped
        // (its cache untouched) while the join output still updates.
        let mut storage = Storage::new();
        storage
            .create_table(TableDef::new(
                "nums",
                vec![("n", ColumnType::Int), ("tag", ColumnType::Text)],
            ))
            .unwrap();
        storage
            .create_table(TableDef::new(
                "labels",
                vec![("tag", ColumnType::Text), ("pretty", ColumnType::Text)],
            ))
            .unwrap();
        for (n, tag) in [(1, "odd"), (2, "even")] {
            storage
                .insert("nums", vec![SqlValue::Int(n), SqlValue::str(tag)])
                .unwrap();
        }
        for (tag, pretty) in [("odd", "Odd"), ("even", "Even")] {
            storage
                .insert("labels", vec![SqlValue::str(tag), SqlValue::str(pretty)])
                .unwrap();
        }
        let engine = Engine::with_storage(storage);
        let q = Query::select(
            Select::new()
                .item(Expr::col("a", "n"), "n")
                .item(Expr::col("b", "pretty"), "pretty")
                .from_named("nums", "a")
                .from_named("labels", "b")
                .filter(Expr::eq(Expr::col("a", "tag"), Expr::col("b", "tag"))),
        );
        let batch = WriteBatch::new().insert("nums", vec![SqlValue::Int(3), SqlValue::str("odd")]);
        maintain_and_check(&engine, &q, batch);
    }

    #[test]
    fn a_net_zero_batch_emits_an_empty_root_delta() {
        let engine = engine();
        let q = Query::select(
            Select::new()
                .item(Expr::col("x", "n"), "n")
                .from_named("nums", "x"),
        );
        let plan = engine.prepare(&q).unwrap();
        let params = ParamValues::new();
        let mut dx = DeltaExec::new(&plan);
        dx.seed(&plan, &engine.storage(), &params).unwrap();
        let batch = WriteBatch::new()
            .delete("nums", vec![SqlValue::Int(1), SqlValue::str("odd")])
            .insert("nums", vec![SqlValue::Int(1), SqlValue::str("odd")]);
        let delta = engine.apply_batch(&batch).unwrap();
        assert!(delta.is_empty());
        let storage = engine.storage();
        let emitted = dx.apply(&plan, &storage, &params, &delta).unwrap().unwrap();
        assert!(emitted.is_empty());
    }

    /// Reference ranker: stable sort per spec over plain key columns, ranks
    /// appended in input order — the col-spec fragment of `rank_rows`.
    fn reference_rank(input: &[Row], specs: &[Vec<usize>]) -> Vec<Row> {
        let mut rows = input.to_vec();
        for cols in specs {
            let mut order: Vec<usize> = (0..rows.len()).collect();
            order.sort_by(|&a, &b| cmp_keys(&input[a], &input[b], cols));
            let mut rn = vec![0i64; rows.len()];
            for (number, row_idx) in order.into_iter().enumerate() {
                rn[row_idx] = (number + 1) as i64;
            }
            for (row, n) in rows.iter_mut().zip(rn) {
                row.push(SqlValue::Int(n));
            }
        }
        rows
    }

    fn bag(rows: &[Row]) -> std::collections::HashMap<Row, i64> {
        let mut m = std::collections::HashMap::new();
        for r in rows {
            *m.entry(r.clone()).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn incremental_rank_matches_reference_under_random_edits() {
        // Deterministic LCG so the mixed retract/insert batches replay.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        let specs: Vec<Vec<usize>> = vec![vec![0], vec![1, 0]];
        // Small key domains force ties, the hard case for rank maintenance.
        let mut input: Vec<Row> = (0..40)
            .map(|_| {
                vec![
                    SqlValue::Int(next().rem_euclid(5)),
                    SqlValue::Int(next().rem_euclid(3)),
                ]
            })
            .collect();
        let mut cache = reference_rank(&input, &specs);
        for round in 0..60 {
            let mut din: DeltaRows = Vec::new();
            // Retract up to 3 existing rows (first occurrence, like
            // update_cache) and insert up to 3 new ones at the end.
            for _ in 0..next().rem_euclid(4) {
                if input.is_empty() {
                    break;
                }
                let victim = input[next().rem_euclid(input.len() as i64) as usize].clone();
                let pos = input.iter().position(|r| *r == victim).unwrap();
                input.remove(pos);
                din.push((victim, -1));
            }
            for _ in 0..next().rem_euclid(4) {
                let row = vec![
                    SqlValue::Int(next().rem_euclid(5)),
                    SqlValue::Int(next().rem_euclid(3)),
                ];
                input.push(row.clone());
                din.push((row, 1));
            }
            let before = cache.clone();
            let delta = match incremental_rank(&mut cache, &specs, &din) {
                Ok(d) => d,
                Err(_) => panic!("in fragment (round {round})"),
            };
            let expect = reference_rank(&input, &specs);
            assert_eq!(
                cache, expect,
                "cache must equal a fresh re-rank (round {round})"
            );
            // The emitted delta must carry the old output to the new one.
            let mut b = bag(&before);
            for (row, sign) in &delta {
                *b.entry(row.clone()).or_insert(0) += sign;
            }
            b.retain(|_, n| *n != 0);
            assert_eq!(b, bag(&expect), "delta must be exact (round {round})");
        }
    }
}
