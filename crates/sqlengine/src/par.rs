//! Morsel-driven parallel execution of [`PhysicalPlan`] trees.
//!
//! [`crate::vexec`] executes a plan bottom-up with each operator consuming
//! its input batch whole, on one thread. This module re-runs the same
//! operator algebra as a pull-based pipeline of bounded **morsels**: an
//! operator's input is split into contiguous logical row ranges of at most
//! [`ExecOptions::morsel_rows`] rows (represented as selection-vector
//! sub-batches — columns stay `Arc`-shared, nothing is copied), and the
//! ranges are handed out to a pool of scoped worker threads from an atomic
//! cursor ([`par_map`]). Each worker owns the morsels it claims; per-morsel
//! results are reassembled **in morsel index order**, which is what makes
//! the executor deterministic:
//!
//! > for every plan, every parameter binding and every storage state, the
//! > parallel executor produces byte-identical results to the sequential
//! > [`vexec::exec`] path at *any* worker count and *any* morsel size.
//!
//! Per-operator strategy (see `DESIGN.md` § Morsel-driven parallel
//! execution for the full argument):
//!
//! * **Streaming operators** (filter, project, exists-semijoin, expression
//!   evaluation, join gather) are embarrassingly parallel per morsel: each
//!   morsel's output depends only on that morsel's rows, and concatenating
//!   outputs in morsel order reproduces the sequential order. Their
//!   intermediate buffers are bounded by the morsel size.
//! * **Hash join** evaluates key columns per-morsel, then builds a
//!   *partitioned* hash table: build rows are split by key hash into one
//!   partition per worker, each partition built in global build-row order,
//!   so every key's match list is identical to the single sequential
//!   table's. Probing scans probe morsels in parallel; each morsel emits
//!   pairs in probe order and the chunks concatenate to the sequential
//!   pair list.
//! * **Pipeline breakers** ([`PhysicalPlan::is_pipeline_breaker`]: sort,
//!   row-number, distinct, set operations) cannot stream — they accumulate
//!   per-worker partial state and merge. Sorting sorts per-worker
//!   contiguous runs and k-way-merges them with an index tie-break, which
//!   is provably equal to one global stable sort; distinct/except
//!   materialise rows in parallel but keep the order-dependent
//!   deduplication/decrement pass sequential.
//! * **Scans** stay zero-copy (a table scan is an `Arc` clone of the
//!   storage columns); the atomic cursor hands out morsel *ranges over the
//!   scanned batch* to the consuming operator rather than copying the scan
//!   output itself.
//!
//! `workers(1)` bypasses this module entirely and runs the sequential
//! executor, which keeps the interpreter oracle and the delta path
//! ([`crate::vexec::DeltaExec`]) valid differential baselines.

use crate::error::EngineError;
use crate::opt::live_estimate;
use crate::plan::{BuildSide, PhysicalPlan, VExpr};
use crate::storage::{ColumnarResult, Storage};
use crate::value::{compare_rows, ParamValues, Row, SqlValue};
use crate::vexec::{
    self, Batch, CteEnv, PlanProfile, Profiler, SchemaCol, ScopeFrame, ScopeStack, VecCtx,
};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default morsel size: bounds the rows a streaming operator touches (and
/// the intermediate buffers it allocates) per unit of scheduled work.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Per-row subplan execution (correlated `EXISTS`) is expensive enough that
/// parallelism pays for itself well below one morsel's worth of rows.
const PAR_SUBPLAN_ROWS: usize = 16;

/// Default estimated-row threshold below which a plan runs sequentially even
/// when `workers > 1`: sub-10ms pipelines lose more to thread hand-off than
/// they gain from fan-out (BENCH_pr9 measured 0.6–0.85× on every small
/// query), and ~8k rows is where fan-out starts paying for itself.
pub const DEFAULT_MIN_PARALLEL_ROWS: usize = 8192;

/// Execution options for one plan run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads to fan morsels across. `1` means the sequential
    /// executor (the degenerate case every differential baseline runs on).
    pub workers: usize,
    /// Upper bound on rows per morsel.
    pub morsel_rows: usize,
    /// Plans whose catalog-informed row estimate ([`crate::opt::live_estimate`])
    /// falls below this stay on the sequential executor regardless of
    /// `workers`. `0` disables the gate (always fan out when `workers > 1`).
    pub min_parallel_rows: usize,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            workers: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            min_parallel_rows: DEFAULT_MIN_PARALLEL_ROWS,
        }
    }
}

impl ExecOptions {
    /// Options with `workers` threads and the default morsel size.
    pub fn with_workers(workers: usize) -> ExecOptions {
        ExecOptions {
            workers: workers.max(1),
            ..ExecOptions::default()
        }
    }
}

/// What one parallel execution did: how many morsels were dispatched, the
/// peak number of workers simultaneously busy, and each morsel's wall time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    pub morsels_dispatched: u64,
    pub peak_workers: u64,
    pub morsel_nanos: Vec<u64>,
}

/// Shared tally behind [`ExecStats`], updated by every worker.
#[derive(Default)]
struct ParStats {
    morsels: AtomicU64,
    active: AtomicU64,
    peak: AtomicU64,
    nanos: Mutex<Vec<u64>>,
}

impl ParStats {
    fn begin(&self) {
        self.morsels.fetch_add(1, AtomicOrdering::Relaxed);
        let active = self.active.fetch_add(1, AtomicOrdering::Relaxed) + 1;
        self.peak.fetch_max(active, AtomicOrdering::Relaxed);
    }

    fn end(&self, nanos: u64) {
        self.active.fetch_sub(1, AtomicOrdering::Relaxed);
        if let Ok(mut v) = self.nanos.lock() {
            v.push(nanos);
        }
    }

    fn snapshot(&self) -> ExecStats {
        ExecStats {
            morsels_dispatched: self.morsels.load(AtomicOrdering::Relaxed),
            peak_workers: self.peak.load(AtomicOrdering::Relaxed),
            morsel_nanos: self.nanos.lock().map(|v| v.clone()).unwrap_or_default(),
        }
    }
}

/// Everything a parallel plan execution shares across workers.
struct ParCtx<'a> {
    storage: &'a Storage,
    params: &'a ParamValues,
    prof: Option<&'a Profiler>,
    workers: usize,
    morsel_rows: usize,
    stats: &'a ParStats,
}

impl<'a> ParCtx<'a> {
    /// The sequential-executor view of this context, for running whole
    /// sub-batches (morsels, correlated subplans) through [`vexec`].
    fn vec_ctx(&self) -> VecCtx<'a> {
        VecCtx {
            storage: self.storage,
            params: self.params,
            prof: self.prof,
        }
    }

    /// Should an operator over `len` rows fan out? Only when the input does
    /// not fit in a single morsel — small inputs stay on the inline path so
    /// the parallel executor never pays thread hand-off for trivial work.
    fn engage(&self, len: usize) -> bool {
        self.workers > 1 && len > self.morsel_rows
    }
}

/// Like [`vexec::execute_plan_bound`], but fanning morsels across
/// `opts.workers` threads. `workers <= 1` delegates to the sequential
/// executor (identical code path, no thread machinery).
pub fn execute_plan_bound_opts(
    plan: &PhysicalPlan,
    storage: &Storage,
    params: &ParamValues,
    opts: ExecOptions,
) -> Result<(ColumnarResult, ExecStats), EngineError> {
    if opts.workers <= 1 || below_parallel_threshold(plan, storage, opts) {
        let result = vexec::execute_plan_bound(plan, storage, params)?;
        return Ok((result, ExecStats::default()));
    }
    let stats = ParStats::default();
    let ctx = ParCtx {
        storage,
        params,
        prof: None,
        workers: opts.workers,
        morsel_rows: opts.morsel_rows.max(1),
        stats: &stats,
    };
    let batch = pexec(plan, &ctx, &CteEnv::default(), &ScopeStack::default())?;
    Ok((batch.into_columnar(), stats.snapshot()))
}

/// Like [`execute_plan_bound_opts`], but with pre-bound `WITH` results
/// visible to free `CteScan`s of those names — the parallel entry point for
/// package-level shared subplans (cross-stage CSE): a shared definition is
/// executed once per package and its columnar result re-bound, zero-copy,
/// under each consuming stage's CTE name. Falls back to the sequential
/// bound-CTE executor under the same adaptive-parallelism gate.
pub fn execute_plan_bound_ctes_opts(
    plan: &PhysicalPlan,
    storage: &Storage,
    params: &ParamValues,
    ctes: &[(String, ColumnarResult)],
    opts: ExecOptions,
) -> Result<(ColumnarResult, ExecStats), EngineError> {
    if opts.workers <= 1 || below_parallel_threshold(plan, storage, opts) {
        let result = vexec::execute_plan_bound_ctes(plan, storage, params, ctes)?;
        return Ok((result, ExecStats::default()));
    }
    let stats = ParStats::default();
    let ctx = ParCtx {
        storage,
        params,
        prof: None,
        workers: opts.workers,
        morsel_rows: opts.morsel_rows.max(1),
        stats: &stats,
    };
    let mut env = CteEnv::default();
    for (name, result) in ctes {
        env = env.extended(name, vexec::batch_from_columnar(result));
    }
    let batch = pexec(plan, &ctx, &env, &ScopeStack::default())?;
    Ok((batch.into_columnar(), stats.snapshot()))
}

/// Like [`vexec::execute_plan_profiled`], but parallel: every worker
/// aggregates its batches/rows/nanos into the shared atomic [`Profiler`],
/// so `EXPLAIN ANALYZE` actuals stay exact under parallelism.
pub fn execute_plan_profiled_opts(
    plan: &PhysicalPlan,
    storage: &Storage,
    params: &ParamValues,
    opts: ExecOptions,
) -> Result<(ColumnarResult, PlanProfile, ExecStats), EngineError> {
    if opts.workers <= 1 || below_parallel_threshold(plan, storage, opts) {
        let (result, prof) = vexec::execute_plan_profiled(plan, storage, params)?;
        return Ok((result, prof, ExecStats::default()));
    }
    let stats = ParStats::default();
    let prof = Profiler::new(plan);
    let ctx = ParCtx {
        storage,
        params,
        prof: Some(&prof),
        workers: opts.workers,
        morsel_rows: opts.morsel_rows.max(1),
        stats: &stats,
    };
    let batch = pexec(plan, &ctx, &CteEnv::default(), &ScopeStack::default())?;
    let result = batch.into_columnar();
    let ops = prof.actuals(plan);
    Ok((result, PlanProfile { ops }, stats.snapshot()))
}

/// The adaptive-parallelism gate: true when the plan's estimated output (and
/// therefore its likely working set) is too small for fan-out to pay for the
/// thread hand-off. Both entry points fall back to the sequential executor
/// in that case, which is byte-identical by the determinism guarantee.
fn below_parallel_threshold(plan: &PhysicalPlan, storage: &Storage, opts: ExecOptions) -> bool {
    opts.min_parallel_rows > 0 && live_estimate(plan, storage) < opts.min_parallel_rows as f64
}

// ---------------------------------------------------------------------------
// The worker pool primitive
// ---------------------------------------------------------------------------

/// Map `f` over `items` on up to `ctx.workers` scoped threads. Items are
/// handed out by an atomic cursor (morsel dispatch); each worker collects
/// `(index, result)` locally and the caller reassembles results **in item
/// order**, so the output is independent of scheduling. The first error (in
/// item order) aborts remaining dispatch and is returned; worker panics
/// propagate to the caller.
fn par_map<'env, T, R, F>(ctx: &ParCtx<'_>, items: &'env [T], f: F) -> Result<Vec<R>, EngineError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &'env T) -> Result<R, EngineError> + Sync,
{
    let n = items.len();
    let workers = ctx.workers.min(n);
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                ctx.stats.begin();
                let start = Instant::now();
                let r = f(i, item);
                ctx.stats
                    .end(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                r
            })
            .collect();
    }

    let cursor = AtomicU64::new(0);
    let failed = AtomicBool::new(false);
    let run = || {
        let mut local: Vec<(usize, Result<R, EngineError>)> = Vec::new();
        loop {
            if failed.load(AtomicOrdering::Relaxed) {
                break;
            }
            let i = cursor.fetch_add(1, AtomicOrdering::Relaxed) as usize;
            if i >= n {
                break;
            }
            ctx.stats.begin();
            let start = Instant::now();
            let r = f(i, &items[i]);
            ctx.stats
                .end(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            if r.is_err() {
                failed.store(true, AtomicOrdering::Relaxed);
            }
            local.push((i, r));
        }
        local
    };

    let mut collected: Vec<Vec<(usize, Result<R, EngineError>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..workers).map(|_| s.spawn(run)).collect();
        let mine = run();
        let mut all = vec![mine];
        for h in handles {
            match h.join() {
                Ok(v) => all.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut first_err: Option<(usize, EngineError)> = None;
    for (i, r) in collected.drain(..).flatten() {
        match r {
            Ok(v) => slots[i] = Some(v),
            Err(e) => {
                if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_err = Some((i, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    slots
        .into_iter()
        .map(|s| {
            s.ok_or_else(|| {
                EngineError::TypeError("internal: morsel result missing after join".to_string())
            })
        })
        .collect()
}

/// Split `0..len` into contiguous morsel ranges: at most `morsel_rows`
/// each, and small enough that every worker gets several morsels to keep
/// the atomic-cursor dispatch load-balanced.
fn morsel_ranges(ctx: &ParCtx<'_>, len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let balanced = len.div_ceil(ctx.workers.max(1) * 4).max(1);
    let target = ctx.morsel_rows.min(balanced).max(1);
    (0..len)
        .step_by(target)
        .map(|s| s..(s + target).min(len))
        .collect()
}

/// Split `0..len` into one contiguous run per worker — the accumulation
/// granularity for pipeline breakers ([`PhysicalPlan::is_pipeline_breaker`]),
/// which merge per-worker state instead of streaming morsels.
fn worker_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let n = workers.min(len).max(1);
    let chunk = len.div_ceil(n).max(1);
    (0..len)
        .step_by(chunk)
        .map(|s| s..(s + chunk).min(len))
        .collect()
}

/// A morsel: the sub-batch of `batch` at logical rows `range`, expressed as
/// a selection vector over the same `Arc`-shared columns (no copying).
fn sub_batch(batch: &Batch, range: Range<usize>) -> Batch {
    let sel: Vec<usize> = range.map(|i| batch.phys(i)).collect();
    Batch {
        schema: batch.schema.clone(),
        columns: batch.columns.clone(),
        sel: Some(Arc::new(sel)),
        base_rows: batch.base_rows,
    }
}

// ---------------------------------------------------------------------------
// Parallel plan execution
// ---------------------------------------------------------------------------

/// Execute one plan node with morsel parallelism, recording profiler
/// actuals and the same dynamic invariants as the sequential [`vexec::exec`].
fn pexec(
    plan: &PhysicalPlan,
    ctx: &ParCtx<'_>,
    ctes: &CteEnv,
    scope: &ScopeStack,
) -> Result<Batch, EngineError> {
    let timer = ctx.prof.map(|p| (p, Instant::now()));
    let batch = pexec_node(plan, ctx, ctes, scope)?;
    if let Some((prof, start)) = timer {
        prof.record(
            plan,
            batch.len() as u64,
            start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
    }
    debug_assert_eq!(
        batch.columns.len(),
        plan.output_columns().len(),
        "plan node produced a batch of {} columns but declares {} output columns",
        batch.columns.len(),
        plan.output_columns().len(),
    );
    debug_assert_eq!(batch.schema.len(), batch.columns.len());
    if let Some(sel) = &batch.sel {
        debug_assert!(sel.iter().all(|&p| p < batch.base_rows));
    }
    Ok(batch)
}

fn pexec_node(
    plan: &PhysicalPlan,
    ctx: &ParCtx<'_>,
    ctes: &CteEnv,
    scope: &ScopeStack,
) -> Result<Batch, EngineError> {
    match plan {
        // Leaves and structural nodes run exactly as in the sequential
        // executor: scans are zero-copy Arc clones, so the parallelism
        // lives in the operators that consume them.
        PhysicalPlan::UnitRow | PhysicalPlan::TableScan { .. } | PhysicalPlan::CteScan { .. } => {
            let vctx = ctx.vec_ctx();
            vexec::exec(plan, &vctx, ctes, scope)
        }
        PhysicalPlan::SubqueryScan { input, alias } => {
            let inner = par_materialise(ctx, pexec(input, ctx, ctes, scope)?)?;
            Ok(vexec::realias(&inner, alias))
        }
        PhysicalPlan::NestedLoopJoin { left, right } => {
            let l = pexec(left, ctx, ctes, scope)?;
            let r = pexec(right, ctx, ctes, scope)?;
            let pairs: Vec<(usize, usize)> = (0..l.len())
                .flat_map(|i| (0..r.len()).map(move |j| (i, j)))
                .collect();
            par_join_gather(ctx, &l, &r, &pairs)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            build,
        } => {
            let l = pexec(left, ctx, ctes, scope)?;
            let r = pexec(right, ctx, ctes, scope)?;
            let lk = par_eval_keys(ctx, left_keys, &l, ctes, scope)?;
            let rk = par_eval_keys(ctx, right_keys, &r, ctes, scope)?;
            let (build_keys, probe_keys, probe_is_left) = match build {
                BuildSide::Right => (rk, lk, true),
                BuildSide::Left => (lk, rk, false),
            };
            let pairs = par_hash_join_pairs(ctx, &build_keys, &probe_keys, probe_is_left)?;
            par_join_gather(ctx, &l, &r, &pairs)
        }
        PhysicalPlan::Filter { input, predicate } => {
            let batch = pexec(input, ctx, ctes, scope)?;
            let len = batch.len();
            let sel: Vec<usize> = if !ctx.engage(len) {
                let vctx = ctx.vec_ctx();
                let values = vexec::eval(predicate, &batch, &vctx, ctes, scope)?;
                values
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.as_bool() == Some(true))
                    .map(|(i, _)| batch.phys(i))
                    .collect()
            } else {
                let ranges = morsel_ranges(ctx, len);
                let chunks = par_map(ctx, &ranges, |_, range| {
                    let sub = sub_batch(&batch, range.clone());
                    let vctx = ctx.vec_ctx();
                    let values = vexec::eval(predicate, &sub, &vctx, ctes, scope)?;
                    Ok(values
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| v.as_bool() == Some(true))
                        .map(|(k, _)| sub.phys(k))
                        .collect::<Vec<usize>>())
                })?;
                chunks.concat()
            };
            Ok(Batch {
                sel: Some(Arc::new(sel)),
                ..batch
            })
        }
        PhysicalPlan::ExistsSemiJoin {
            input,
            subplan,
            anti,
        } => {
            let batch = pexec(input, ctx, ctes, scope)?;
            let len = batch.len();
            // Per-row subplan execution dominates, so fan out well below
            // one morsel's worth of rows.
            let ranges = if ctx.workers > 1 && len >= PAR_SUBPLAN_ROWS {
                morsel_ranges(ctx, len)
            } else {
                std::iter::once(0..len).collect()
            };
            let chunks = par_map(ctx, &ranges, |_, range| {
                let vctx = ctx.vec_ctx();
                let mut sel = Vec::new();
                for i in range.clone() {
                    let frame = ScopeFrame {
                        schema: batch.schema.clone(),
                        values: batch.row(i),
                    };
                    let inner = vexec::exec(subplan, &vctx, ctes, &scope.pushed(frame))?;
                    if inner.is_empty() == *anti {
                        sel.push(batch.phys(i));
                    }
                }
                Ok(sel)
            })?;
            Ok(Batch {
                sel: Some(Arc::new(chunks.concat())),
                ..batch
            })
        }
        PhysicalPlan::HashSemiJoin {
            input,
            build,
            probe_keys,
            build_keys,
            anti,
        } => {
            let batch = pexec(input, ctx, ctes, scope)?;
            // The build side runs exactly once, under the same scope as this
            // node (decorrelation guarantees it holds no references to the
            // input's rows), and its key set is shared read-only by every
            // probe morsel.
            let built = pexec(build, ctx, ctes, scope)?;
            let mut table: HashSet<Row> = HashSet::new();
            'build: for key in par_eval_keys(ctx, build_keys, &built, ctes, scope)? {
                for v in &key {
                    if v.is_null() {
                        continue 'build;
                    }
                }
                table.insert(key);
            }
            let probe = par_eval_keys(ctx, probe_keys, &batch, ctes, scope)?;
            let len = batch.len();
            let keep = |i: usize| {
                let key = &probe[i];
                (!key.iter().any(|v| v.is_null()) && table.contains(key)) != *anti
            };
            let sel: Vec<usize> = if !ctx.engage(len) {
                (0..len)
                    .filter(|&i| keep(i))
                    .map(|i| batch.phys(i))
                    .collect()
            } else {
                let ranges = morsel_ranges(ctx, len);
                let chunks = par_map(ctx, &ranges, |_, range| {
                    Ok(range
                        .clone()
                        .filter(|&i| keep(i))
                        .map(|i| batch.phys(i))
                        .collect::<Vec<usize>>())
                })?;
                chunks.concat()
            };
            Ok(Batch {
                sel: Some(Arc::new(sel)),
                ..batch
            })
        }
        PhysicalPlan::RowNumber { input, specs } => {
            let batch = par_materialise(ctx, pexec(input, ctx, ctes, scope)?)?;
            let len = batch.len();
            let mut schema = batch.schema.as_ref().clone();
            let mut columns = batch.columns.clone();
            for (spec_idx, keys) in specs.iter().enumerate() {
                let key_values = par_eval_keys(ctx, keys, &batch, ctes, scope)?;
                let order = par_sort_indices(ctx, &key_values)?;
                let mut rn = vec![SqlValue::Null; len];
                for (number, row_idx) in order.into_iter().enumerate() {
                    rn[row_idx] = SqlValue::Int((number + 1) as i64);
                }
                schema.push((None, format!("#rn{}", spec_idx)));
                columns.push(Arc::new(rn));
            }
            Ok(Batch {
                schema: Arc::new(schema),
                columns,
                sel: None,
                base_rows: len,
            })
        }
        PhysicalPlan::Sort { input, keys } => {
            let batch = pexec(input, ctx, ctes, scope)?;
            let key_values = par_eval_keys(ctx, keys, &batch, ctes, scope)?;
            let order = par_sort_indices(ctx, &key_values)?;
            let sel: Vec<usize> = order.into_iter().map(|i| batch.phys(i)).collect();
            Ok(Batch {
                sel: Some(Arc::new(sel)),
                ..batch
            })
        }
        PhysicalPlan::Project {
            input,
            exprs,
            columns,
        } => {
            let batch = pexec(input, ctx, ctes, scope)?;
            let len = batch.len();
            let schema: Vec<SchemaCol> = columns.iter().map(|c| (None, c.clone())).collect();
            let out: Vec<Arc<Vec<SqlValue>>> = if !ctx.engage(len) || exprs.is_empty() {
                let vctx = ctx.vec_ctx();
                exprs
                    .iter()
                    .map(|e| vexec::eval(e, &batch, &vctx, ctes, scope).map(Arc::new))
                    .collect::<Result<Vec<_>, _>>()?
            } else {
                // One task per (expression × morsel); per-expression chunks
                // concatenate in morsel order.
                let ranges = morsel_ranges(ctx, len);
                let tasks: Vec<(usize, Range<usize>)> = exprs
                    .iter()
                    .enumerate()
                    .flat_map(|(e, _)| ranges.iter().map(move |r| (e, r.clone())))
                    .collect();
                let parts = par_map(ctx, &tasks, |_, (e, range)| {
                    let sub = sub_batch(&batch, range.clone());
                    let vctx = ctx.vec_ctx();
                    vexec::eval(&exprs[*e], &sub, &vctx, ctes, scope)
                })?;
                let mut parts = parts.into_iter();
                (0..exprs.len())
                    .map(|_| {
                        let mut col: Vec<SqlValue> = Vec::with_capacity(len);
                        for _ in 0..ranges.len() {
                            let mut part = parts.next().expect("task count mismatch");
                            col.append(&mut part);
                        }
                        Arc::new(col)
                    })
                    .collect()
            };
            Ok(Batch {
                schema: Arc::new(schema),
                columns: out,
                sel: None,
                base_rows: len,
            })
        }
        PhysicalPlan::Distinct { input } => {
            // Pipeline breaker: rows materialise in parallel, but the
            // first-occurrence scan is inherently ordered and stays
            // sequential.
            let batch = pexec(input, ctx, ctes, scope)?;
            let rows = par_rows(ctx, &batch)?;
            let mut seen: HashSet<Row> = HashSet::new();
            let sel: Vec<usize> = rows
                .into_iter()
                .enumerate()
                .filter(|(_, row)| seen.insert(row.clone()))
                .map(|(i, _)| batch.phys(i))
                .collect();
            Ok(Batch {
                sel: Some(Arc::new(sel)),
                ..batch
            })
        }
        PhysicalPlan::UnionAll(branches) => {
            let mut iter = branches.iter();
            let first = iter
                .next()
                .ok_or_else(|| EngineError::TypeError("empty UNION ALL".to_string()))?;
            let acc = pexec(first, ctx, ctes, scope)?.materialised();
            let width = acc.columns.len();
            let mut columns: Vec<Vec<SqlValue>> = (0..width)
                .map(|c| acc.columns[c].as_ref().clone())
                .collect();
            let mut total = acc.base_rows;
            for branch in iter {
                let next = pexec(branch, ctx, ctes, scope)?;
                if next.columns.len() != width {
                    return Err(EngineError::TypeError(format!(
                        "UNION ALL branches have {} and {} columns",
                        width,
                        next.columns.len()
                    )));
                }
                total += next.len();
                for (c, column) in columns.iter_mut().enumerate() {
                    column.extend(next.gather(c));
                }
            }
            Ok(Batch {
                schema: acc.schema,
                columns: columns.into_iter().map(Arc::new).collect(),
                sel: None,
                base_rows: total,
            })
        }
        PhysicalPlan::ExceptAll { left, right } => {
            let l = pexec(left, ctx, ctes, scope)?;
            let r = pexec(right, ctx, ctes, scope)?;
            let r_rows = par_rows(ctx, &r)?;
            let l_rows = par_rows(ctx, &l)?;
            let mut counts: HashMap<Row, usize> = HashMap::new();
            for row in r_rows {
                *counts.entry(row).or_insert(0) += 1;
            }
            let mut rows = Vec::new();
            for row in l_rows {
                match counts.get_mut(&row) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => rows.push(row),
                }
            }
            Ok(Batch::from_rows(l.schema.clone(), rows))
        }
        PhysicalPlan::With {
            name,
            definition,
            body,
        } => {
            let bound = pexec(definition, ctx, ctes, scope)?;
            let extended = ctes.extended(name, bound);
            pexec(body, ctx, &extended, scope)
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel operator kernels
// ---------------------------------------------------------------------------

/// Parallel [`Batch::materialised`]: gather each column on its own worker.
fn par_materialise(ctx: &ParCtx<'_>, batch: Batch) -> Result<Batch, EngineError> {
    if batch.sel.is_none() || !ctx.engage(batch.len()) || batch.columns.len() <= 1 {
        return Ok(batch.materialised());
    }
    let cols: Vec<usize> = (0..batch.columns.len()).collect();
    let columns = par_map(ctx, &cols, |_, &c| Ok(Arc::new(batch.gather(c))))?;
    Ok(Batch {
        schema: batch.schema.clone(),
        columns,
        sel: None,
        base_rows: batch.len(),
    })
}

/// Parallel [`vexec::eval_keys`]: key rows per morsel, concatenated in
/// morsel order.
fn par_eval_keys(
    ctx: &ParCtx<'_>,
    keys: &[VExpr],
    batch: &Batch,
    ctes: &CteEnv,
    scope: &ScopeStack,
) -> Result<Vec<Row>, EngineError> {
    let len = batch.len();
    if !ctx.engage(len) {
        let vctx = ctx.vec_ctx();
        return vexec::eval_keys(keys, batch, &vctx, ctes, scope);
    }
    let ranges = morsel_ranges(ctx, len);
    let chunks = par_map(ctx, &ranges, |_, range| {
        let sub = sub_batch(batch, range.clone());
        let vctx = ctx.vec_ctx();
        vexec::eval_keys(keys, &sub, &vctx, ctes, scope)
    })?;
    Ok(chunks.concat())
}

/// Materialise every logical row of a batch, morsel-parallel.
fn par_rows(ctx: &ParCtx<'_>, batch: &Batch) -> Result<Vec<Row>, EngineError> {
    let len = batch.len();
    if !ctx.engage(len) {
        return Ok((0..len).map(|i| batch.row(i)).collect());
    }
    let ranges = morsel_ranges(ctx, len);
    let chunks = par_map(ctx, &ranges, |_, range| {
        Ok(range.clone().map(|i| batch.row(i)).collect::<Vec<Row>>())
    })?;
    Ok(chunks.concat())
}

fn hash_row(row: &Row) -> u64 {
    let mut h = DefaultHasher::new();
    row.hash(&mut h);
    h.finish()
}

/// The hash-join match phase, partitioned: build rows are split by key hash
/// into one partition per worker (each partition's match lists are in global
/// build-row order, so the union of partitions is exactly the sequential
/// hash table), then probe morsels scan in parallel and emit pairs in probe
/// order.
fn par_hash_join_pairs(
    ctx: &ParCtx<'_>,
    build_keys: &[Row],
    probe_keys: &[Row],
    probe_is_left: bool,
) -> Result<Vec<(usize, usize)>, EngineError> {
    let engaged = ctx.engage(build_keys.len()) || ctx.engage(probe_keys.len());
    if !engaged {
        // Sequential single-table path, identical to the vexec operator.
        let mut table: HashMap<&Row, Vec<usize>> = HashMap::new();
        'build: for (i, key) in build_keys.iter().enumerate() {
            for v in key {
                if v.is_null() {
                    continue 'build;
                }
            }
            table.entry(key).or_default().push(i);
        }
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        'probe: for (i, key) in probe_keys.iter().enumerate() {
            for v in key {
                if v.is_null() {
                    continue 'probe;
                }
            }
            if let Some(matches) = table.get(key) {
                for &j in matches {
                    pairs.push(if probe_is_left { (i, j) } else { (j, i) });
                }
            }
        }
        return Ok(pairs);
    }

    // Hash every non-NULL key once, morsel-parallel.
    let hash_side = |keys: &[Row]| -> Result<Vec<Option<u64>>, EngineError> {
        let ranges = morsel_ranges(ctx, keys.len());
        let chunks = par_map(ctx, &ranges, |_, range| {
            Ok(range
                .clone()
                .map(|i| {
                    let key = &keys[i];
                    if key.iter().any(|v| v.is_null()) {
                        None
                    } else {
                        Some(hash_row(key))
                    }
                })
                .collect::<Vec<_>>())
        })?;
        Ok(chunks.concat())
    };
    let build_hashes = hash_side(build_keys)?;
    let probe_hashes = hash_side(probe_keys)?;

    // Partitioned build: worker `p` owns the keys whose hash lands in
    // partition `p` and inserts them in global build-row order, so each
    // key's match list equals the sequential table's.
    let nparts = ctx.workers as u64;
    let parts: Vec<u64> = (0..nparts).collect();
    let tables: Vec<HashMap<&Row, Vec<usize>>> = par_map(ctx, &parts, |_, &p| {
        let mut table: HashMap<&Row, Vec<usize>> = HashMap::new();
        for (i, h) in build_hashes.iter().enumerate() {
            if let Some(h) = h {
                if h % nparts == p {
                    table.entry(&build_keys[i]).or_default().push(i);
                }
            }
        }
        Ok(table)
    })?;

    // Parallel probe: each morsel emits its pairs in probe order; chunks
    // concatenate to the sequential pair list.
    let ranges = morsel_ranges(ctx, probe_keys.len());
    let chunks = par_map(ctx, &ranges, |_, range| {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for i in range.clone() {
            if let Some(h) = probe_hashes[i] {
                if let Some(matches) = tables[(h % nparts) as usize].get(&probe_keys[i]) {
                    for &j in matches {
                        pairs.push(if probe_is_left { (i, j) } else { (j, i) });
                    }
                }
            }
        }
        Ok(pairs)
    })?;
    Ok(chunks.concat())
}

/// Parallel [`vexec::join_gather`]: one worker per output column (the unit
/// that avoids any cross-worker writes and any post-merge copy).
fn par_join_gather(
    ctx: &ParCtx<'_>,
    left: &Batch,
    right: &Batch,
    pairs: &[(usize, usize)],
) -> Result<Batch, EngineError> {
    let width = left.columns.len() + right.columns.len();
    if !ctx.engage(pairs.len()) || width <= 1 {
        return Ok(vexec::join_gather(left, right, pairs));
    }
    let mut schema = left.schema.as_ref().clone();
    schema.extend(right.schema.iter().cloned());
    let lw = left.columns.len();
    let cols: Vec<usize> = (0..width).collect();
    let columns = par_map(ctx, &cols, |_, &c| {
        Ok(Arc::new(if c < lw {
            let data = &left.columns[c];
            pairs
                .iter()
                .map(|&(i, _)| data[left.phys(i)].clone())
                .collect::<Vec<SqlValue>>()
        } else {
            let data = &right.columns[c - lw];
            pairs
                .iter()
                .map(|&(_, j)| data[right.phys(j)].clone())
                .collect::<Vec<SqlValue>>()
        }))
    })?;
    Ok(Batch {
        schema: Arc::new(schema),
        columns,
        sel: None,
        base_rows: pairs.len(),
    })
}

/// Stable sort of `0..keys.len()` by key, parallel: per-worker contiguous
/// runs are stably sorted, then k-way merged with an index tie-break.
/// Within a run, equal keys keep ascending index order (stable sort over a
/// contiguous ascending range); across runs, ties pick the smaller index —
/// so the merged order is exactly "sorted by (key, index)", which is what a
/// single global stable sort produces. The result is therefore independent
/// of worker count and run boundaries.
fn par_sort_indices(ctx: &ParCtx<'_>, keys: &[Row]) -> Result<Vec<usize>, EngineError> {
    let len = keys.len();
    let mut order: Vec<usize> = (0..len).collect();
    if !ctx.engage(len) {
        order.sort_by(|&a, &b| compare_rows(&keys[a], &keys[b]));
        return Ok(order);
    }
    let ranges = worker_ranges(len, ctx.workers);
    let mut runs = par_map(ctx, &ranges, |_, range| {
        let mut run: Vec<usize> = range.clone().collect();
        run.sort_by(|&a, &b| compare_rows(&keys[a], &keys[b]));
        Ok(run)
    })?;
    let mut heads = vec![0usize; runs.len()];
    let mut out = Vec::with_capacity(len);
    loop {
        let mut best: Option<(usize, usize)> = None;
        for (rix, run) in runs.iter().enumerate() {
            if heads[rix] >= run.len() {
                continue;
            }
            let cand = run[heads[rix]];
            best = Some(match best {
                None => (rix, cand),
                Some((brix, bidx)) => match compare_rows(&keys[cand], &keys[bidx]) {
                    Ordering::Less => (rix, cand),
                    Ordering::Greater => (brix, bidx),
                    Ordering::Equal => {
                        if cand < bidx {
                            (rix, cand)
                        } else {
                            (brix, bidx)
                        }
                    }
                },
            });
        }
        match best {
            Some((rix, idx)) => {
                heads[rix] += 1;
                out.push(idx);
            }
            None => break,
        }
    }
    for run in runs.drain(..) {
        drop(run);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ctx<'a>(
        storage: &'a Storage,
        params: &'a ParamValues,
        stats: &'a ParStats,
        workers: usize,
        morsel_rows: usize,
    ) -> ParCtx<'a> {
        ParCtx {
            storage,
            params,
            prof: None,
            workers,
            morsel_rows,
            stats,
        }
    }

    #[test]
    fn par_map_preserves_item_order() {
        let storage = Storage::new();
        let params = ParamValues::new();
        let stats = ParStats::default();
        let ctx = test_ctx(&storage, &params, &stats, 4, 1);
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&ctx, &items, |_, &x| Ok(x * 2)).unwrap();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let snap = stats.snapshot();
        assert_eq!(snap.morsels_dispatched, 100);
        assert!(snap.peak_workers >= 1);
        assert_eq!(snap.morsel_nanos.len(), 100);
    }

    #[test]
    fn par_map_returns_first_error_in_item_order() {
        let storage = Storage::new();
        let params = ParamValues::new();
        let stats = ParStats::default();
        let ctx = test_ctx(&storage, &params, &stats, 4, 1);
        let items: Vec<usize> = (0..64).collect();
        let err = par_map(&ctx, &items, |_, &x| {
            if x >= 10 {
                Err(EngineError::TypeError(format!("boom {x}")))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        // Workers may hit later failing items first, but the reported error
        // is the smallest failing index among those actually executed —
        // item 10 always executes because dispatch is in index order and
        // nothing before it fails.
        assert_eq!(
            err.to_string(),
            EngineError::TypeError("boom 10".into()).to_string()
        );
    }

    #[test]
    fn morsel_ranges_cover_and_bound() {
        let storage = Storage::new();
        let params = ParamValues::new();
        let stats = ParStats::default();
        for (workers, morsel, len) in [(4, 1, 17), (4, 7, 100), (2, 4096, 10_000), (8, 3, 3)] {
            let ctx = test_ctx(&storage, &params, &stats, workers, morsel);
            let ranges = morsel_ranges(&ctx, len);
            assert!(ranges.iter().all(|r| r.len() <= morsel && !r.is_empty()));
            let flat: Vec<usize> = ranges.iter().flat_map(|r| r.clone()).collect();
            assert_eq!(flat, (0..len).collect::<Vec<_>>());
        }
        let ctx = test_ctx(&storage, &params, &stats, 4, 8);
        assert!(morsel_ranges(&ctx, 0).is_empty());
    }

    #[test]
    fn worker_ranges_cover() {
        for (len, workers) in [(10, 3), (3, 8), (1, 1), (4096, 4)] {
            let ranges = worker_ranges(len, workers);
            assert!(ranges.len() <= workers);
            let flat: Vec<usize> = ranges.iter().flat_map(|r| r.clone()).collect();
            assert_eq!(flat, (0..len).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_stable_sort_matches_sequential() {
        let storage = Storage::new();
        let params = ParamValues::new();
        let stats = ParStats::default();
        // Lots of duplicate keys to exercise the stability tie-break.
        let keys: Vec<Row> = (0..1000)
            .map(|i| vec![SqlValue::Int((i * 37 % 11) as i64)])
            .collect();
        let mut expected: Vec<usize> = (0..keys.len()).collect();
        expected.sort_by(|&a, &b| compare_rows(&keys[a], &keys[b]));
        for workers in [2, 3, 8] {
            let ctx = test_ctx(&storage, &params, &stats, workers, 16);
            assert_eq!(par_sort_indices(&ctx, &keys).unwrap(), expected);
        }
    }
}
