//! The mutation layer: write batches and the typed deltas they emit.
//!
//! A [`WriteBatch`] is an ordered list of [`WriteOp`]s. Committing one is a
//! two-phase affair: [`Storage::validate_batch`] replays the operations
//! against cloned copies of the affected tables — so a batch that would
//! violate arity, column types or a declared key is rejected *before* any
//! real table changes — and normalises the surviving operations into a
//! [`StorageDelta`]: one signed row multiset per table, with insertions and
//! retractions of the same row cancelled out (an update is exactly a delete
//! plus an insert). [`Storage::apply_delta`] then commits the delta with a
//! fixed discipline — retracted rows are removed at their first occurrence,
//! inserted rows are appended — so the post-state scan order of a table is a
//! deterministic function of its pre-state order and the delta. The
//! incremental maintenance layer relies on that: it keeps per-operator row
//! caches under the same retract-then-append discipline, so a cache and a
//! from-scratch scan of the same table always agree on row order.

use crate::error::EngineError;
use crate::storage::Storage;
use crate::value::Row;
use std::collections::{BTreeMap, HashMap};

/// One mutation inside a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp {
    /// Insert a full row (validated like [`crate::storage::Table::insert`]).
    Insert { table: String, row: Row },
    /// Delete the first row equal to `row`.
    Delete { table: String, row: Row },
    /// Delete the row whose declared-key columns equal `key`.
    DeleteByKey { table: String, key: Row },
    /// Replace the row whose declared-key columns equal `key` with `row`.
    Update { table: String, key: Row, row: Row },
}

impl WriteOp {
    /// The table this operation addresses.
    pub fn table(&self) -> &str {
        match self {
            WriteOp::Insert { table, .. }
            | WriteOp::Delete { table, .. }
            | WriteOp::DeleteByKey { table, .. }
            | WriteOp::Update { table, .. } => table,
        }
    }
}

/// An ordered list of mutations committed atomically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WriteBatch {
    pub ops: Vec<WriteOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Append an insert.
    pub fn insert(mut self, table: &str, row: Row) -> WriteBatch {
        self.ops.push(WriteOp::Insert {
            table: table.to_string(),
            row,
        });
        self
    }

    /// Append a delete-by-value.
    pub fn delete(mut self, table: &str, row: Row) -> WriteBatch {
        self.ops.push(WriteOp::Delete {
            table: table.to_string(),
            row,
        });
        self
    }

    /// Append a keyed delete.
    pub fn delete_by_key(mut self, table: &str, key: Row) -> WriteBatch {
        self.ops.push(WriteOp::DeleteByKey {
            table: table.to_string(),
            key,
        });
        self
    }

    /// Append a keyed update.
    pub fn update(mut self, table: &str, key: Row, row: Row) -> WriteBatch {
        self.ops.push(WriteOp::Update {
            table: table.to_string(),
            key,
            row,
        });
        self
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The normalised signed row multiset a committed batch induced on one
/// table. Multiplicity is by repetition; a row inserted and deleted the same
/// number of times inside one batch appears in neither list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableDelta {
    /// Rows removed from the pre-state, in first-mention order. Always a
    /// sub-multiset of the pre-state table.
    pub retract: Vec<Row>,
    /// Rows appended, in first-mention order.
    pub insert: Vec<Row>,
}

impl TableDelta {
    /// Total number of signed rows.
    pub fn len(&self) -> usize {
        self.retract.len() + self.insert.len()
    }

    /// Did the batch leave this table unchanged?
    pub fn is_empty(&self) -> bool {
        self.retract.is_empty() && self.insert.is_empty()
    }

    /// The delta as `(row, sign)` pairs: retractions (−1) first, then
    /// insertions (+1) — the order [`Storage::apply_delta`] commits them in.
    pub fn signed_rows(&self) -> impl Iterator<Item = (&Row, i64)> {
        self.retract
            .iter()
            .map(|r| (r, -1i64))
            .chain(self.insert.iter().map(|r| (r, 1i64)))
    }
}

/// The typed delta a committed [`WriteBatch`] emitted: per-table insertion
/// and retraction multisets, normalised so opposite-signed mentions of the
/// same row cancel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StorageDelta {
    tables: BTreeMap<String, TableDelta>,
}

impl StorageDelta {
    /// The per-table deltas, in table-name order.
    pub fn tables(&self) -> impl Iterator<Item = (&str, &TableDelta)> {
        self.tables.iter().map(|(n, d)| (n.as_str(), d))
    }

    /// The delta for one table, if the batch touched it.
    pub fn get(&self, table: &str) -> Option<&TableDelta> {
        self.tables.get(table)
    }

    /// Did the batch change this table?
    pub fn touches(&self, table: &str) -> bool {
        self.tables.get(table).is_some_and(|d| !d.is_empty())
    }

    /// Total number of signed rows across all tables (the `delta.rows`
    /// metric).
    pub fn row_count(&self) -> usize {
        self.tables.values().map(TableDelta::len).sum()
    }

    /// Did the batch change anything at all?
    pub fn is_empty(&self) -> bool {
        self.tables.values().all(TableDelta::is_empty)
    }
}

/// Collects signed row counts in first-mention order, then splits them into
/// retraction and insertion lists.
#[derive(Default)]
struct SignedRows {
    order: Vec<(Row, i64)>,
    index: HashMap<Row, usize>,
}

impl SignedRows {
    fn add(&mut self, row: Row, sign: i64) {
        match self.index.get(&row) {
            Some(&i) => self.order[i].1 += sign,
            None => {
                self.index.insert(row.clone(), self.order.len());
                self.order.push((row, sign));
            }
        }
    }

    fn into_delta(self) -> TableDelta {
        let mut delta = TableDelta::default();
        for (row, net) in self.order {
            let (target, copies) = if net < 0 {
                (&mut delta.retract, -net)
            } else {
                (&mut delta.insert, net)
            };
            for _ in 0..copies {
                target.push(row.clone());
            }
        }
        delta
    }
}

impl Storage {
    /// Replay a batch against clones of the affected tables and normalise it
    /// into a [`StorageDelta`]. Nothing in `self` changes; an `Err` means
    /// some operation was invalid (unknown table or row, arity or type
    /// violation, duplicate key) and the batch must be rejected wholesale.
    ///
    /// The returned delta's retractions are a sub-multiset of the current
    /// (pre-state) tables, so [`Storage::apply_delta`] cannot fail.
    pub fn validate_batch(&self, batch: &WriteBatch) -> Result<StorageDelta, EngineError> {
        let mut shadows: BTreeMap<String, crate::storage::Table> = BTreeMap::new();
        let mut signed: BTreeMap<String, SignedRows> = BTreeMap::new();
        for op in &batch.ops {
            let name = op.table();
            if !shadows.contains_key(name) {
                shadows.insert(name.to_string(), self.table(name)?.clone());
            }
            let shadow = shadows.get_mut(name).expect("shadow table just inserted");
            let signed = signed.entry(name.to_string()).or_default();
            match op {
                WriteOp::Insert { row, .. } => {
                    shadow.insert(row.clone())?;
                    signed.add(row.clone(), 1);
                }
                WriteOp::Delete { row, .. } => {
                    shadow.delete(row)?;
                    signed.add(row.clone(), -1);
                }
                WriteOp::DeleteByKey { key, .. } => {
                    let row = shadow.delete_by_key(key)?;
                    signed.add(row, -1);
                }
                WriteOp::Update { key, row, .. } => {
                    let old = shadow.update(key, row.clone())?;
                    signed.add(old, -1);
                    signed.add(row.clone(), 1);
                }
            }
        }
        Ok(StorageDelta {
            tables: signed
                .into_iter()
                .map(|(n, s)| (n, s.into_delta()))
                .collect(),
        })
    }

    /// Commit a delta produced by [`Storage::validate_batch`]: per table,
    /// remove each retracted row at its first occurrence, then append the
    /// inserted rows. Panics if a retracted row is absent (the validate
    /// phase guarantees it is not).
    pub fn apply_delta(&mut self, delta: &StorageDelta) {
        for (name, table_delta) in &delta.tables {
            if table_delta.is_empty() {
                continue;
            }
            let table = self
                .table_mut(name)
                .expect("validate_batch checked the table exists");
            for row in &table_delta.retract {
                table
                    .delete(row)
                    .expect("validate_batch checked the retraction applies");
            }
            for row in &table_delta.insert {
                table
                    .insert(row.clone())
                    .expect("validate_batch checked the insertion applies");
            }
        }
    }

    /// Validate and commit a write batch, returning the typed delta it
    /// induced. The batch applies atomically: any invalid operation rejects
    /// the whole batch with storage untouched.
    ///
    /// ```
    /// use sqlengine::delta::WriteBatch;
    /// use sqlengine::storage::{ColumnType, Storage, TableDef};
    /// use sqlengine::value::SqlValue;
    ///
    /// let mut storage = Storage::new();
    /// storage
    ///     .create_table(
    ///         TableDef::new("t", vec![("id", ColumnType::Int), ("name", ColumnType::Text)])
    ///             .with_key(vec!["id"]),
    ///     )
    ///     .unwrap();
    /// storage.insert("t", vec![SqlValue::Int(1), SqlValue::str("a")]).unwrap();
    ///
    /// // Insert one row and rename another; the delta records an insertion
    /// // for the new row and a retraction + insertion for the update.
    /// let batch = WriteBatch::new()
    ///     .insert("t", vec![SqlValue::Int(2), SqlValue::str("b")])
    ///     .update("t", vec![SqlValue::Int(1)], vec![SqlValue::Int(1), SqlValue::str("z")]);
    /// let delta = storage.apply_batch(&batch).unwrap();
    ///
    /// let t = delta.get("t").unwrap();
    /// assert_eq!(t.retract, vec![vec![SqlValue::Int(1), SqlValue::str("a")]]);
    /// assert_eq!(t.insert.len(), 2);
    /// assert_eq!(storage.table("t").unwrap().len(), 2);
    /// ```
    pub fn apply_batch(&mut self, batch: &WriteBatch) -> Result<StorageDelta, EngineError> {
        let delta = self.validate_batch(batch)?;
        self.apply_delta(&delta);
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{ColumnType, TableDef};
    use crate::value::SqlValue;

    fn storage() -> Storage {
        let mut s = Storage::new();
        s.create_table(
            TableDef::new(
                "t",
                vec![("id", ColumnType::Int), ("name", ColumnType::Text)],
            )
            .with_key(vec!["id"]),
        )
        .unwrap();
        for (id, name) in [(1, "a"), (2, "b")] {
            s.insert("t", vec![SqlValue::Int(id), SqlValue::str(name)])
                .unwrap();
        }
        s
    }

    fn row(id: i64, name: &str) -> Row {
        vec![SqlValue::Int(id), SqlValue::str(name)]
    }

    #[test]
    fn a_net_zero_batch_emits_an_empty_delta_and_changes_nothing() {
        let mut s = storage();
        let before = s.clone();
        let batch = WriteBatch::new()
            .insert("t", row(3, "c"))
            .delete("t", row(3, "c"));
        let delta = s.apply_batch(&batch).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.row_count(), 0);
        assert!(!delta.touches("t"));
        assert_eq!(s, before);
    }

    #[test]
    fn an_update_normalises_to_a_delete_plus_an_insert() {
        let mut s1 = storage();
        let mut s2 = storage();
        let update = WriteBatch::new().update("t", vec![SqlValue::Int(2)], row(2, "bb"));
        let delete_insert = WriteBatch::new()
            .delete("t", row(2, "b"))
            .insert("t", row(2, "bb"));
        let d1 = s1.apply_batch(&update).unwrap();
        let d2 = s2.apply_batch(&delete_insert).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(s1, s2);
        assert_eq!(d1.get("t").unwrap().retract, vec![row(2, "b")]);
        assert_eq!(d1.get("t").unwrap().insert, vec![row(2, "bb")]);
    }

    #[test]
    fn an_invalid_batch_rejects_wholesale() {
        let mut s = storage();
        let before = s.clone();
        // The insert is fine, the duplicate key is not: nothing applies.
        let batch = WriteBatch::new()
            .insert("t", row(3, "c"))
            .insert("t", row(1, "dup"));
        assert!(matches!(
            s.apply_batch(&batch),
            Err(EngineError::DuplicateKey { .. })
        ));
        assert_eq!(s, before);
        // Deleting a missing row also rejects.
        assert!(matches!(
            s.apply_batch(&WriteBatch::new().delete("t", row(9, "x"))),
            Err(EngineError::NoSuchRow { .. })
        ));
        // So does touching a missing table.
        assert!(matches!(
            s.apply_batch(&WriteBatch::new().insert("nope", row(1, "a"))),
            Err(EngineError::NoSuchTable(_))
        ));
    }

    #[test]
    fn validation_sees_earlier_operations_in_the_same_batch() {
        let mut s = storage();
        // Key 1 is freed by the delete, so re-inserting it is valid.
        let batch = WriteBatch::new()
            .delete_by_key("t", vec![SqlValue::Int(1)])
            .insert("t", row(1, "fresh"));
        let delta = s.apply_batch(&batch).unwrap();
        assert_eq!(delta.get("t").unwrap().retract, vec![row(1, "a")]);
        assert_eq!(delta.get("t").unwrap().insert, vec![row(1, "fresh")]);
        assert_eq!(
            s.table("t").unwrap().rows,
            vec![row(2, "b"), row(1, "fresh")]
        );
    }

    #[test]
    fn apply_delta_removes_first_occurrences_and_appends() {
        let mut s = Storage::new();
        s.create_table(TableDef::new("bag", vec![("x", ColumnType::Int)]))
            .unwrap();
        for x in [7, 8, 7] {
            s.insert("bag", vec![SqlValue::Int(x)]).unwrap();
        }
        let batch = WriteBatch::new()
            .delete("bag", vec![SqlValue::Int(7)])
            .insert("bag", vec![SqlValue::Int(9)]);
        s.apply_batch(&batch).unwrap();
        assert_eq!(
            s.table("bag").unwrap().rows,
            vec![
                vec![SqlValue::Int(8)],
                vec![SqlValue::Int(7)],
                vec![SqlValue::Int(9)],
            ]
        );
    }
}
