//! The logical optimizer: plan-to-plan rewrites between [`crate::plan`] and
//! execution.
//!
//! [`optimize`] applies five passes, in order:
//!
//! 1. **Constant folding** — evaluates [`VExpr`] subtrees whose operands are
//!    literals, simplifies boolean identities (`TRUE AND p` → `p`,
//!    `FALSE OR p` → `p`, `NOT TRUE` → `FALSE`, `NOT NOT x` → `x`) and
//!    elides filters whose predicate folded to `TRUE`. Folding never
//!    evaluates an expression the executor would not have evaluated (a
//!    folding step that would error — division by zero, type mismatch — is
//!    left in place so the runtime error is preserved).
//! 2. **EXISTS lift** — hoists `[NOT] EXISTS` conjuncts out of filter
//!    predicates into [`PhysicalPlan::ExistsSemiJoin`] nodes, the form the
//!    decorrelator rewrites. Nested emptiness tests compile to negation
//!    chains over `EXISTS` expressions that the planner leaves inside
//!    filter predicates; without the lift they would execute as per-row
//!    subqueries forever.
//! 3. **Decorrelation** — rewrites a correlated
//!    [`PhysicalPlan::ExistsSemiJoin`] whose correlation is a conjunction of
//!    `outer = local` equalities into a [`PhysicalPlan::HashSemiJoin`]: the
//!    subquery is executed **once** with the correlated equalities removed,
//!    its local key expressions are hashed, and each input row probes with
//!    its outer key expressions. This turns an O(n·m) nested loop into one
//!    build and one probe, and (because `HashSemiJoin` has an incremental
//!    delta rule) moves such stages out of `DeltaExec`'s reseed path.
//!    Subqueries the pass cannot prove safe are left untouched and recorded
//!    in [`OptReport::skipped`] (surfaced as `analysis` code O001).
//! 4. **Predicate pushdown** — moves filter conjuncts as close to the scans
//!    as they can soundly go: through projects (by substituting projection
//!    expressions), sorts, distincts, semi-join inputs, `WITH` bodies and
//!    `UNION ALL` branches, and routed to one side of a join when every
//!    column it references lives there. Conjuncts are never pushed below
//!    `RowNumber` (filtering changes the numbering) and never into a `WITH`
//!    definition (the definition may have other consumers).
//! 5. **Build-side re-choice** — recomputes hash-join build sides from
//!    catalog row counts, with `WITH`-definition estimates propagated to the
//!    `CteScan`s that read them (the planner chose sides from shape-only
//!    defaults; see [`estimate`](PhysicalPlan::estimate)).
//!
//! Every pass is a pure function from plan to plan: rewritten plans flow
//! through the interpreter oracle, the vectorized executor, `DeltaExec` and
//! the morsel-parallel executor unchanged.

use crate::ast::BinOp;
use crate::exec::eval_binop;
use crate::plan::{BuildSide, Catalog, PhysicalPlan, VExpr, DEFAULT_ROWS, FILTER_SELECTIVITY};
use crate::value::SqlValue;

/// One column of a node's output as the runtime scope sees it: the defining
/// alias (if any) and the column name. Mirrors the vectorized executor's
/// batch schema so decorrelation resolves outer references exactly as the
/// scope stack would.
type SchemaCol = (Option<String>, String);

/// A correlated subquery the decorrelator had to leave in place, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct OptSkip {
    /// The node that keeps its correlated subplan (e.g. `"ExistsSemiJoin anti"`).
    pub node: String,
    /// Why the rewrite was unsafe or out of scope for the current rules.
    pub reason: String,
}

/// What [`optimize`] did to a plan: one line per rewrite applied, plus the
/// correlated subqueries it could not rewrite. Rendered by `explain()` and
/// turned into `analysis` diagnostics (code O001) by the pipeline verifier.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptReport {
    /// Human-readable descriptions of the rewrites that fired.
    pub rewrites: Vec<String>,
    /// Correlated subqueries left in place, with reasons.
    pub skipped: Vec<OptSkip>,
}

impl OptReport {
    /// True when no rewrite fired and nothing was skipped.
    pub fn is_empty(&self) -> bool {
        self.rewrites.is_empty() && self.skipped.is_empty()
    }
}

/// Optimize a physical plan. Returns the rewritten plan and a report of the
/// rewrites applied; the output plan computes exactly the same bag of rows
/// as the input plan on every database and parameter binding.
pub fn optimize(plan: PhysicalPlan, catalog: &dyn Catalog) -> (PhysicalPlan, OptReport) {
    let mut report = OptReport::default();

    let mut folds = 0usize;
    let plan = fold_plan(plan, &mut folds);
    if folds > 0 {
        report
            .rewrites
            .push(format!("folded {} constant subexpression(s)", folds));
    }

    let mut lifted = 0usize;
    let plan = lift_exists_plan(plan, &mut lifted);
    if lifted > 0 {
        report.rewrites.push(format!(
            "lifted {} EXISTS conjunct(s) into semi-join nodes",
            lifted
        ));
    }

    let plan = decorrelate_plan(plan, &mut report);

    let mut pushed = 0usize;
    let plan = pushdown_plan(plan, &mut pushed);
    if pushed > 0 {
        report
            .rewrites
            .push(format!("pushed {} predicate(s) toward scans", pushed));
    }

    let mut flips = 0usize;
    let plan = rechoose_plan(plan, catalog, &mut Vec::new(), &mut flips);
    if flips > 0 {
        report.rewrites.push(format!(
            "re-chose {} hash-join build side(s) from catalog estimates",
            flips
        ));
    }

    (plan, report)
}

/// Catalog-aware cardinality estimate of a plan, with `WITH` definitions
/// bound so `CteScan`s inherit their definition's estimate. This is what
/// the morsel executor's `min_parallel_rows` gate consults.
pub fn live_estimate(plan: &PhysicalPlan, catalog: &dyn Catalog) -> f64 {
    estimate_env(plan, catalog, &mut Vec::new())
}

// ---------------------------------------------------------------------------
// Generic traversal
// ---------------------------------------------------------------------------

/// Rebuild `plan` bottom-up, applying `f` to every node (children first,
/// then the rebuilt node itself). Descends into `EXISTS` subplans embedded
/// in expressions as well as structural children.
fn map_plan(plan: PhysicalPlan, f: &mut dyn FnMut(PhysicalPlan) -> PhysicalPlan) -> PhysicalPlan {
    let mapped = match plan {
        PhysicalPlan::UnitRow | PhysicalPlan::TableScan { .. } | PhysicalPlan::CteScan { .. } => {
            plan
        }
        PhysicalPlan::SubqueryScan { input, alias } => PhysicalPlan::SubqueryScan {
            input: Box::new(map_plan(*input, f)),
            alias,
        },
        PhysicalPlan::NestedLoopJoin { left, right } => PhysicalPlan::NestedLoopJoin {
            left: Box::new(map_plan(*left, f)),
            right: Box::new(map_plan(*right, f)),
        },
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            build,
        } => PhysicalPlan::HashJoin {
            left: Box::new(map_plan(*left, f)),
            right: Box::new(map_plan(*right, f)),
            left_keys: left_keys
                .into_iter()
                .map(|e| map_expr_plans(e, f))
                .collect(),
            right_keys: right_keys
                .into_iter()
                .map(|e| map_expr_plans(e, f))
                .collect(),
            build,
        },
        PhysicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
            input: Box::new(map_plan(*input, f)),
            predicate: map_expr_plans(predicate, f),
        },
        PhysicalPlan::ExistsSemiJoin {
            input,
            subplan,
            anti,
        } => PhysicalPlan::ExistsSemiJoin {
            input: Box::new(map_plan(*input, f)),
            subplan: Box::new(map_plan(*subplan, f)),
            anti,
        },
        PhysicalPlan::HashSemiJoin {
            input,
            build,
            probe_keys,
            build_keys,
            anti,
        } => PhysicalPlan::HashSemiJoin {
            input: Box::new(map_plan(*input, f)),
            build: Box::new(map_plan(*build, f)),
            probe_keys: probe_keys
                .into_iter()
                .map(|e| map_expr_plans(e, f))
                .collect(),
            build_keys: build_keys
                .into_iter()
                .map(|e| map_expr_plans(e, f))
                .collect(),
            anti,
        },
        PhysicalPlan::RowNumber { input, specs } => PhysicalPlan::RowNumber {
            input: Box::new(map_plan(*input, f)),
            specs: specs
                .into_iter()
                .map(|spec| spec.into_iter().map(|e| map_expr_plans(e, f)).collect())
                .collect(),
        },
        PhysicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
            input: Box::new(map_plan(*input, f)),
            keys: keys.into_iter().map(|e| map_expr_plans(e, f)).collect(),
        },
        PhysicalPlan::Project {
            input,
            exprs,
            columns,
        } => PhysicalPlan::Project {
            input: Box::new(map_plan(*input, f)),
            exprs: exprs.into_iter().map(|e| map_expr_plans(e, f)).collect(),
            columns,
        },
        PhysicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(map_plan(*input, f)),
        },
        PhysicalPlan::UnionAll(branches) => {
            PhysicalPlan::UnionAll(branches.into_iter().map(|b| map_plan(b, f)).collect())
        }
        PhysicalPlan::ExceptAll { left, right } => PhysicalPlan::ExceptAll {
            left: Box::new(map_plan(*left, f)),
            right: Box::new(map_plan(*right, f)),
        },
        PhysicalPlan::With {
            name,
            definition,
            body,
        } => PhysicalPlan::With {
            name,
            definition: Box::new(map_plan(*definition, f)),
            body: Box::new(map_plan(*body, f)),
        },
    };
    f(mapped)
}

/// Apply a plan mapper to every `EXISTS` subplan inside an expression.
fn map_expr_plans(expr: VExpr, f: &mut dyn FnMut(PhysicalPlan) -> PhysicalPlan) -> VExpr {
    match expr {
        VExpr::BinOp { op, left, right } => VExpr::BinOp {
            op,
            left: Box::new(map_expr_plans(*left, f)),
            right: Box::new(map_expr_plans(*right, f)),
        },
        VExpr::Not(inner) => VExpr::Not(Box::new(map_expr_plans(*inner, f))),
        VExpr::Exists(subplan) => VExpr::Exists(Box::new(map_plan(*subplan, f))),
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Pass 1: constant folding
// ---------------------------------------------------------------------------

fn fold_plan(plan: PhysicalPlan, count: &mut usize) -> PhysicalPlan {
    map_plan(plan, &mut |node| match node {
        PhysicalPlan::Filter { input, predicate } => {
            match fold_expr(predicate, count) {
                // `WHERE TRUE` keeps every row: drop the node.
                VExpr::Lit(SqlValue::Bool(true)) => {
                    *count += 1;
                    *input
                }
                predicate => PhysicalPlan::Filter { input, predicate },
            }
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            build,
        } => PhysicalPlan::HashJoin {
            left,
            right,
            left_keys: left_keys.into_iter().map(|e| fold_expr(e, count)).collect(),
            right_keys: right_keys
                .into_iter()
                .map(|e| fold_expr(e, count))
                .collect(),
            build,
        },
        PhysicalPlan::HashSemiJoin {
            input,
            build,
            probe_keys,
            build_keys,
            anti,
        } => PhysicalPlan::HashSemiJoin {
            input,
            build,
            probe_keys: probe_keys
                .into_iter()
                .map(|e| fold_expr(e, count))
                .collect(),
            build_keys: build_keys
                .into_iter()
                .map(|e| fold_expr(e, count))
                .collect(),
            anti,
        },
        PhysicalPlan::RowNumber { input, specs } => PhysicalPlan::RowNumber {
            input,
            specs: specs
                .into_iter()
                .map(|spec| spec.into_iter().map(|e| fold_expr(e, count)).collect())
                .collect(),
        },
        PhysicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
            input,
            keys: keys.into_iter().map(|e| fold_expr(e, count)).collect(),
        },
        PhysicalPlan::Project {
            input,
            exprs,
            columns,
        } => PhysicalPlan::Project {
            input,
            exprs: exprs.into_iter().map(|e| fold_expr(e, count)).collect(),
            columns,
        },
        other => other,
    })
}

fn fold_expr(expr: VExpr, count: &mut usize) -> VExpr {
    match expr {
        VExpr::BinOp { op, left, right } => {
            let left = fold_expr(*left, count);
            let right = fold_expr(*right, count);
            if let (VExpr::Lit(l), VExpr::Lit(r)) = (&left, &right) {
                // Only fold evaluations that succeed: a subtree that would
                // error at runtime (division by zero, type mismatch) is
                // kept so the executor still reports it.
                if let Ok(v) = eval_binop(op, l.clone(), r.clone()) {
                    *count += 1;
                    return VExpr::Lit(v);
                }
            }
            let lit_true = |e: &VExpr| matches!(e, VExpr::Lit(SqlValue::Bool(true)));
            let lit_false = |e: &VExpr| matches!(e, VExpr::Lit(SqlValue::Bool(false)));
            match op {
                BinOp::And if lit_true(&left) => {
                    *count += 1;
                    return right;
                }
                BinOp::And if lit_true(&right) => {
                    *count += 1;
                    return left;
                }
                BinOp::Or if lit_false(&left) => {
                    *count += 1;
                    return right;
                }
                BinOp::Or if lit_false(&right) => {
                    *count += 1;
                    return left;
                }
                _ => {}
            }
            VExpr::BinOp {
                op,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        VExpr::Not(inner) => match fold_expr(*inner, count) {
            VExpr::Lit(SqlValue::Bool(b)) => {
                *count += 1;
                VExpr::Lit(SqlValue::Bool(!b))
            }
            VExpr::Lit(SqlValue::Null) => {
                *count += 1;
                VExpr::Lit(SqlValue::Null)
            }
            // `NOT NOT x = x` in SQL's three-valued logic (`NOT NULL` is
            // `NULL`). Negation chains arise from nested emptiness tests;
            // collapsing them is what lets the EXISTS lift below see
            // through them.
            VExpr::Not(inner2) => {
                *count += 1;
                *inner2
            }
            inner => VExpr::Not(Box::new(inner)),
        },
        // Subplans inside expressions are folded by the surrounding
        // `map_plan` traversal.
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Pass 2: EXISTS lift
// ---------------------------------------------------------------------------

/// Lift `[NOT] EXISTS` conjuncts out of filter predicates into
/// [`PhysicalPlan::ExistsSemiJoin`] nodes. The planner only forms semi-join
/// nodes for whole-predicate `EXISTS` tests; anything else — negation
/// chains from nested emptiness tests, an `EXISTS` among other conjuncts —
/// reaches execution as a per-row filter expression, which the decorrelator
/// cannot see. The node form is semantically identical: the vectorized
/// executor pushes the same scope frame for an `ExistsSemiJoin` subplan as
/// for a `VExpr::Exists` inside a filter predicate, and `EXISTS` never
/// evaluates to `NULL`, so splitting it out of the conjunction cannot
/// change the kept row set.
fn lift_exists_plan(plan: PhysicalPlan, count: &mut usize) -> PhysicalPlan {
    map_plan(plan, &mut |node| match node {
        PhysicalPlan::Filter { input, predicate } => {
            let mut semis: Vec<(Box<PhysicalPlan>, bool)> = Vec::new();
            let mut kept = Vec::new();
            for conj in split_conjuncts(predicate) {
                match conj {
                    VExpr::Exists(sub) => semis.push((sub, false)),
                    VExpr::Not(inner) => match *inner {
                        VExpr::Exists(sub) => semis.push((sub, true)),
                        other => kept.push(VExpr::Not(Box::new(other))),
                    },
                    other => kept.push(other),
                }
            }
            if semis.is_empty() {
                let predicate = join_conjuncts(kept)
                    .expect("a filter with no EXISTS conjuncts keeps its predicate");
                return PhysicalPlan::Filter { input, predicate };
            }
            *count += semis.len();
            // The remaining conjuncts filter *below* the semi-joins: both
            // only drop rows, so the kept set is the same conjunction
            // either way, and the cheap predicates run first.
            let mut plan = match join_conjuncts(kept) {
                Some(predicate) => PhysicalPlan::Filter { input, predicate },
                None => *input,
            };
            for (subplan, anti) in semis {
                plan = PhysicalPlan::ExistsSemiJoin {
                    input: Box::new(plan),
                    subplan,
                    anti,
                };
            }
            plan
        }
        other => other,
    })
}

// ---------------------------------------------------------------------------
// Pass 3: decorrelation
// ---------------------------------------------------------------------------

fn decorrelate_plan(plan: PhysicalPlan, report: &mut OptReport) -> PhysicalPlan {
    map_plan(plan, &mut |node| match node {
        PhysicalPlan::ExistsSemiJoin {
            input,
            subplan,
            anti,
        } => match try_decorrelate(&input, *subplan.clone(), anti) {
            Ok((rewritten, desc)) => {
                report.rewrites.push(desc);
                rewritten
            }
            Err(reason) => {
                report.skipped.push(OptSkip {
                    node: if anti {
                        "ExistsSemiJoin anti".to_string()
                    } else {
                        "ExistsSemiJoin".to_string()
                    },
                    reason,
                });
                PhysicalPlan::ExistsSemiJoin {
                    input,
                    subplan,
                    anti,
                }
            }
        },
        other => other,
    })
}

/// One decorrelated `UNION ALL` branch: the de-correlated subquery body and
/// its `(outer key, local key)` pairs.
struct Ext {
    plan: PhysicalPlan,
    keys: Vec<(VExpr, VExpr)>,
}

fn try_decorrelate(
    input: &PhysicalPlan,
    subplan: PhysicalPlan,
    anti: bool,
) -> Result<(PhysicalPlan, String), String> {
    let frame = plan_schema(input);

    // EXISTS only observes emptiness, so order- and multiplicity-only root
    // operators can be stripped before analysing the shape.
    let stripped = strip_order(subplan);
    let branches: Vec<PhysicalPlan> = match stripped {
        PhysicalPlan::UnionAll(bs) => bs.into_iter().map(strip_order).collect(),
        other => vec![other],
    };

    let mut exts = Vec::with_capacity(branches.len());
    for branch in branches {
        let PhysicalPlan::Project {
            input: inner,
            exprs,
            ..
        } = branch
        else {
            return Err("subquery root is not a projection".to_string());
        };
        // The projection itself is discarded (only emptiness matters), so
        // it must not smuggle correlated or nested-subquery work away.
        for e in &exprs {
            if contains_exists(e) {
                return Err("subquery projection contains a nested EXISTS".to_string());
            }
            if expr_refs_frame(e, &frame) {
                return Err("subquery projection references the outer row".to_string());
            }
        }
        exts.push(extract(*inner, &frame)?);
    }

    // Unify correlation keys across branches: branch 0's outer-key list is
    // canonical; every other branch must provide the same outer keys (in
    // any order), and its local keys are reordered to match.
    let canonical: Vec<VExpr> = exts[0].keys.iter().map(|(o, _)| o.clone()).collect();
    let mut branch_locals: Vec<Vec<VExpr>> = Vec::with_capacity(exts.len());
    for ext in &exts {
        if ext.keys.len() != canonical.len() {
            return Err("correlation keys differ across UNION ALL branches".to_string());
        }
        let mut used = vec![false; ext.keys.len()];
        let mut locals = Vec::with_capacity(canonical.len());
        for outer in &canonical {
            let Some(j) = ext
                .keys
                .iter()
                .enumerate()
                .position(|(j, (o, _))| !used[j] && o == outer)
            else {
                return Err("correlation keys differ across UNION ALL branches".to_string());
            };
            used[j] = true;
            locals.push(ext.keys[j].1.clone());
        }
        branch_locals.push(locals);
    }

    // Build side: one `Project` of the local keys per branch. With no keys
    // (an uncorrelated EXISTS) the bodies are used as-is — only emptiness
    // matters and a zero-column projection buys nothing.
    let n = canonical.len();
    let bodies: Vec<PhysicalPlan> = if n == 0 {
        exts.into_iter().map(|e| e.plan).collect()
    } else {
        let key_cols: Vec<String> = (0..n).map(|i| format!("#k{}", i)).collect();
        exts.into_iter()
            .zip(branch_locals)
            .map(|(ext, locals)| PhysicalPlan::Project {
                input: Box::new(ext.plan),
                exprs: locals,
                columns: key_cols.clone(),
            })
            .collect()
    };
    let build = if bodies.len() == 1 {
        bodies.into_iter().next().unwrap()
    } else {
        PhysicalPlan::UnionAll(bodies)
    };

    // Soundness gate: the build side must now be completely uncorrelated —
    // any remaining reference that would resolve to the input's row makes
    // the once-executed build unsound.
    if plan_refs_frame(&build, &frame) {
        return Err(
            "subquery retains a correlated reference that is not a simple equality".to_string(),
        );
    }

    let probe_keys: Vec<VExpr> = canonical
        .into_iter()
        .map(|o| resolve_outer(o, &frame))
        .collect::<Result<_, _>>()?;
    let build_keys: Vec<VExpr> = (0..n)
        .map(|i| VExpr::Col {
            index: i,
            alias: None,
            column: format!("#k{}", i),
        })
        .collect();

    let keys_desc = probe_keys
        .iter()
        .map(|k| k.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let desc = format!(
        "decorrelated ExistsSemiJoin{} into HashSemiJoin on [{}]",
        if anti { " anti" } else { "" },
        keys_desc
    );
    Ok((
        PhysicalPlan::HashSemiJoin {
            input: Box::new(input.clone()),
            build: Box::new(build),
            probe_keys,
            build_keys,
            anti,
        },
        desc,
    ))
}

/// Remove root operators that cannot affect whether the result is empty.
fn strip_order(plan: PhysicalPlan) -> PhysicalPlan {
    match plan {
        PhysicalPlan::Sort { input, .. } | PhysicalPlan::Distinct { input } => strip_order(*input),
        other => other,
    }
}

/// Walk a subquery body collecting correlated equality conjuncts, removing
/// them from the plan. Descends through filters, joins and subquery scans;
/// every other operator is kept opaque (correlated references below it are
/// caught by the caller's soundness gate).
fn extract(plan: PhysicalPlan, frame: &[SchemaCol]) -> Result<Ext, String> {
    match plan {
        PhysicalPlan::Filter { input, predicate } => {
            let mut ext = extract(*input, frame)?;
            let mut kept = Vec::new();
            for conj in split_conjuncts(predicate) {
                if expr_refs_frame(&conj, frame) {
                    ext.keys.push(as_correlation_eq(conj, frame)?);
                } else {
                    kept.push(conj);
                }
            }
            let plan = match join_conjuncts(kept) {
                Some(predicate) => PhysicalPlan::Filter {
                    input: Box::new(ext.plan),
                    predicate,
                },
                None => ext.plan,
            };
            Ok(Ext {
                plan,
                keys: ext.keys,
            })
        }
        PhysicalPlan::SubqueryScan { input, alias } => {
            // Re-aliasing preserves column positions, so local keys pass
            // through unchanged.
            let ext = extract(*input, frame)?;
            Ok(Ext {
                plan: PhysicalPlan::SubqueryScan {
                    input: Box::new(ext.plan),
                    alias,
                },
                keys: ext.keys,
            })
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            build,
        } => {
            let left_width = left.output_columns().len();
            let le = extract(*left, frame)?;
            let re = extract(*right, frame)?;
            let mut keys = le.keys;
            keys.extend(
                re.keys
                    .into_iter()
                    .map(|(o, l)| (o, shift_cols(l, left_width))),
            );
            Ok(Ext {
                plan: PhysicalPlan::HashJoin {
                    left: Box::new(le.plan),
                    right: Box::new(re.plan),
                    left_keys,
                    right_keys,
                    build,
                },
                keys,
            })
        }
        PhysicalPlan::NestedLoopJoin { left, right } => {
            let left_width = left.output_columns().len();
            let le = extract(*left, frame)?;
            let re = extract(*right, frame)?;
            let mut keys = le.keys;
            keys.extend(
                re.keys
                    .into_iter()
                    .map(|(o, l)| (o, shift_cols(l, left_width))),
            );
            Ok(Ext {
                plan: PhysicalPlan::NestedLoopJoin {
                    left: Box::new(le.plan),
                    right: Box::new(re.plan),
                },
                keys,
            })
        }
        // Semi-joins pass their probe input's columns through unchanged, so
        // correlated conjuncts below them extract with valid positions. The
        // subplan/build side is untouched — if *it* holds outer references,
        // the caller's soundness gate rejects the rewrite.
        PhysicalPlan::ExistsSemiJoin {
            input,
            subplan,
            anti,
        } => {
            let ext = extract(*input, frame)?;
            Ok(Ext {
                plan: PhysicalPlan::ExistsSemiJoin {
                    input: Box::new(ext.plan),
                    subplan,
                    anti,
                },
                keys: ext.keys,
            })
        }
        PhysicalPlan::HashSemiJoin {
            input,
            build,
            probe_keys,
            build_keys,
            anti,
        } => {
            let ext = extract(*input, frame)?;
            Ok(Ext {
                plan: PhysicalPlan::HashSemiJoin {
                    input: Box::new(ext.plan),
                    build,
                    probe_keys,
                    build_keys,
                    anti,
                },
                keys: ext.keys,
            })
        }
        other => Ok(Ext {
            plan: other,
            keys: Vec::new(),
        }),
    }
}

/// Split a correlated conjunct into its `(outer, local)` equality sides, or
/// explain why it cannot be decorrelated.
fn as_correlation_eq(conj: VExpr, frame: &[SchemaCol]) -> Result<(VExpr, VExpr), String> {
    if contains_exists(&conj) {
        return Err("correlated conjunct contains a nested EXISTS".to_string());
    }
    let VExpr::BinOp {
        op: BinOp::Eq,
        left,
        right,
    } = conj
    else {
        return Err("correlated conjunct is not a simple equality".to_string());
    };
    let outer_pure = |e: &VExpr| !contains_col(e) && expr_refs_frame(e, frame);
    let local_pure = |e: &VExpr| !expr_refs_frame(e, frame);
    if outer_pure(&left) && local_pure(&right) {
        Ok((*left, *right))
    } else if outer_pure(&right) && local_pure(&left) {
        Ok((*right, *left))
    } else {
        Err("correlated equality mixes outer and local columns on one side".to_string())
    }
}

// ---------------------------------------------------------------------------
// Scope/schema reasoning shared by the decorrelator
// ---------------------------------------------------------------------------

/// The `(alias, column)` schema a node presents to enclosing scopes —
/// exactly what the vectorized executor pushes as the scope frame for a
/// correlated subquery over this node's rows.
fn plan_schema(plan: &PhysicalPlan) -> Vec<SchemaCol> {
    match plan {
        PhysicalPlan::UnitRow => Vec::new(),
        PhysicalPlan::TableScan { alias, columns, .. }
        | PhysicalPlan::CteScan { alias, columns, .. } => columns
            .iter()
            .map(|c| (Some(alias.clone()), c.clone()))
            .collect(),
        PhysicalPlan::SubqueryScan { input, alias } => plan_schema(input)
            .into_iter()
            .map(|(_, c)| (Some(alias.clone()), c))
            .collect(),
        PhysicalPlan::NestedLoopJoin { left, right }
        | PhysicalPlan::HashJoin { left, right, .. } => {
            let mut schema = plan_schema(left);
            schema.extend(plan_schema(right));
            schema
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::ExistsSemiJoin { input, .. }
        | PhysicalPlan::HashSemiJoin { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Distinct { input } => plan_schema(input),
        PhysicalPlan::RowNumber { input, specs } => {
            let mut schema = plan_schema(input);
            schema.extend((0..specs.len()).map(|i| (None, format!("#rn{}", i))));
            schema
        }
        PhysicalPlan::Project { columns, .. } => {
            columns.iter().map(|c| (None, c.clone())).collect()
        }
        PhysicalPlan::UnionAll(branches) => branches.first().map(plan_schema).unwrap_or_default(),
        PhysicalPlan::ExceptAll { left, .. } => plan_schema(left),
        PhysicalPlan::With { body, .. } => plan_schema(body),
    }
}

/// Would this outer reference resolve against `frame` at runtime? The scope
/// stack matches qualified references by alias and unqualified references by
/// column name, innermost frame first — `frame` here is the innermost frame
/// the subquery sees, so a hit means the reference is correlated to it.
fn resolves_to_frame(table: &Option<String>, column: &str, frame: &[SchemaCol]) -> bool {
    match table {
        Some(alias) => frame
            .iter()
            .any(|(a, _)| a.as_deref() == Some(alias.as_str())),
        None => frame.iter().any(|(_, c)| c == column),
    }
}

/// Does the expression (deeply, including nested `EXISTS` subplans) contain
/// an outer reference that resolves to `frame`?
fn expr_refs_frame(expr: &VExpr, frame: &[SchemaCol]) -> bool {
    match expr {
        VExpr::Outer { table, column } => resolves_to_frame(table, column, frame),
        VExpr::BinOp { left, right, .. } => {
            expr_refs_frame(left, frame) || expr_refs_frame(right, frame)
        }
        VExpr::Not(inner) => expr_refs_frame(inner, frame),
        VExpr::Exists(subplan) => plan_refs_frame(subplan, frame),
        VExpr::Col { .. } | VExpr::Lit(_) | VExpr::Param(_) => false,
    }
}

/// Does any expression anywhere in the plan reference `frame`? Conservative:
/// a nested subquery whose own frame shadows an alias still counts as a
/// reference, so shadowed-but-sound plans are skipped rather than miscompiled.
fn plan_refs_frame(plan: &PhysicalPlan, frame: &[SchemaCol]) -> bool {
    let exprs_ref = match plan {
        PhysicalPlan::UnitRow
        | PhysicalPlan::TableScan { .. }
        | PhysicalPlan::CteScan { .. }
        | PhysicalPlan::SubqueryScan { .. }
        | PhysicalPlan::NestedLoopJoin { .. }
        | PhysicalPlan::Distinct { .. }
        | PhysicalPlan::UnionAll(_)
        | PhysicalPlan::ExceptAll { .. }
        | PhysicalPlan::With { .. } => false,
        PhysicalPlan::HashJoin {
            left_keys,
            right_keys,
            ..
        } => left_keys
            .iter()
            .chain(right_keys)
            .any(|e| expr_refs_frame(e, frame)),
        PhysicalPlan::Filter { predicate, .. } => expr_refs_frame(predicate, frame),
        PhysicalPlan::ExistsSemiJoin { subplan, .. } => plan_refs_frame(subplan, frame),
        PhysicalPlan::HashSemiJoin {
            probe_keys,
            build_keys,
            ..
        } => probe_keys
            .iter()
            .chain(build_keys)
            .any(|e| expr_refs_frame(e, frame)),
        PhysicalPlan::RowNumber { specs, .. } => {
            specs.iter().flatten().any(|e| expr_refs_frame(e, frame))
        }
        PhysicalPlan::Sort { keys, .. } => keys.iter().any(|e| expr_refs_frame(e, frame)),
        PhysicalPlan::Project { exprs, .. } => exprs.iter().any(|e| expr_refs_frame(e, frame)),
    };
    exprs_ref || plan.children().iter().any(|c| plan_refs_frame(c, frame))
}

/// Rewrite frame-resolving outer references into positional columns over the
/// probe input, mirroring the runtime scope lookup exactly: qualified
/// references take the position of `(alias, column)` (an error if the alias
/// is present but the column is not — the runtime would error too, so the
/// rewrite is skipped to preserve it); unqualified references take the first
/// column with that name. References to deeper scopes stay symbolic.
fn resolve_outer(expr: VExpr, frame: &[SchemaCol]) -> Result<VExpr, String> {
    match expr {
        VExpr::Outer { table, column } => match &table {
            Some(alias)
                if frame
                    .iter()
                    .any(|(a, _)| a.as_deref() == Some(alias.as_str())) =>
            {
                let index = frame
                    .iter()
                    .position(|(a, c)| a.as_deref() == Some(alias.as_str()) && c == &column)
                    .ok_or_else(|| {
                        format!("outer reference {}.{} has no such column", alias, column)
                    })?;
                Ok(VExpr::Col {
                    index,
                    alias: table,
                    column,
                })
            }
            None if frame.iter().any(|(_, c)| c == &column) => {
                let index = frame.iter().position(|(_, c)| c == &column).unwrap();
                Ok(VExpr::Col {
                    index,
                    alias: frame[index].0.clone(),
                    column,
                })
            }
            _ => Ok(VExpr::Outer { table, column }),
        },
        VExpr::BinOp { op, left, right } => Ok(VExpr::BinOp {
            op,
            left: Box::new(resolve_outer(*left, frame)?),
            right: Box::new(resolve_outer(*right, frame)?),
        }),
        VExpr::Not(inner) => Ok(VExpr::Not(Box::new(resolve_outer(*inner, frame)?))),
        VExpr::Exists(_) => Err("outer key contains a nested EXISTS".to_string()),
        other => Ok(other),
    }
}

// ---------------------------------------------------------------------------
// Pass 3: predicate pushdown
// ---------------------------------------------------------------------------

fn pushdown_plan(plan: PhysicalPlan, count: &mut usize) -> PhysicalPlan {
    map_plan(plan, &mut |node| match node {
        PhysicalPlan::Filter { input, predicate } => {
            let mut input = *input;
            let mut kept = Vec::new();
            for conj in split_conjuncts(predicate) {
                match push_pred(input, conj) {
                    Ok(absorbed) => {
                        *count += 1;
                        input = absorbed;
                    }
                    Err((back, conj)) => {
                        input = back;
                        kept.push(conj);
                    }
                }
            }
            match join_conjuncts(kept) {
                Some(predicate) => PhysicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                },
                None => input,
            }
        }
        other => other,
    })
}

/// Push one conjunct at least one operator further down, or hand both back.
///
/// `Err` is the ordinary "could not push" outcome returning ownership of
/// both values, not a failure — boxing it would put an allocation on the
/// common path of every pushdown attempt.
#[allow(clippy::result_large_err)]
fn push_pred(plan: PhysicalPlan, pred: VExpr) -> Result<PhysicalPlan, (PhysicalPlan, VExpr)> {
    // Predicates with embedded subqueries stay put: relocating them would
    // change the scope frames their outer references resolve against.
    if contains_exists(&pred) {
        return Err((plan, pred));
    }
    match plan {
        PhysicalPlan::Filter { input, predicate } => match push_pred(*input, pred) {
            Ok(input) => Ok(PhysicalPlan::Filter {
                input: Box::new(input),
                predicate,
            }),
            Err((input, pred)) => Err((
                PhysicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                },
                pred,
            )),
        },
        PhysicalPlan::Project {
            input,
            exprs,
            columns,
        } => {
            // Substituting projection expressions is only done for column
            // renames and constants; duplicating computed expressions could
            // change evaluation counts (and thus error behaviour).
            let simple = col_indexes(&pred).iter().all(|&i| {
                matches!(
                    exprs.get(i),
                    Some(VExpr::Col { .. } | VExpr::Lit(_) | VExpr::Param(_) | VExpr::Outer { .. })
                )
            });
            if !simple {
                return Err((
                    PhysicalPlan::Project {
                        input,
                        exprs,
                        columns,
                    },
                    pred,
                ));
            }
            let inner_pred = substitute_cols(pred, &exprs);
            Ok(PhysicalPlan::Project {
                input: Box::new(push_into(*input, inner_pred)),
                exprs,
                columns,
            })
        }
        PhysicalPlan::SubqueryScan { input, alias } => Ok(PhysicalPlan::SubqueryScan {
            input: Box::new(push_into(*input, pred)),
            alias,
        }),
        PhysicalPlan::Sort { input, keys } => Ok(PhysicalPlan::Sort {
            input: Box::new(push_into(*input, pred)),
            keys,
        }),
        PhysicalPlan::Distinct { input } => Ok(PhysicalPlan::Distinct {
            input: Box::new(push_into(*input, pred)),
        }),
        PhysicalPlan::ExistsSemiJoin {
            input,
            subplan,
            anti,
        } => Ok(PhysicalPlan::ExistsSemiJoin {
            input: Box::new(push_into(*input, pred)),
            subplan,
            anti,
        }),
        PhysicalPlan::HashSemiJoin {
            input,
            build,
            probe_keys,
            build_keys,
            anti,
        } => Ok(PhysicalPlan::HashSemiJoin {
            input: Box::new(push_into(*input, pred)),
            build,
            probe_keys,
            build_keys,
            anti,
        }),
        PhysicalPlan::UnionAll(branches) => Ok(PhysicalPlan::UnionAll(
            branches
                .into_iter()
                .map(|b| push_into(b, pred.clone()))
                .collect(),
        )),
        PhysicalPlan::With {
            name,
            definition,
            body,
        } => Ok(PhysicalPlan::With {
            name,
            definition,
            body: Box::new(push_into(*body, pred)),
        }),
        PhysicalPlan::NestedLoopJoin { left, right } => {
            let left_width = left.output_columns().len();
            match route_join_pred(&pred, left_width) {
                Some(JoinSide::Left) => Ok(PhysicalPlan::NestedLoopJoin {
                    left: Box::new(push_into(*left, pred)),
                    right,
                }),
                Some(JoinSide::Right) => {
                    let shifted = unshift_cols(pred, left_width);
                    Ok(PhysicalPlan::NestedLoopJoin {
                        left,
                        right: Box::new(push_into(*right, shifted)),
                    })
                }
                None => Err((PhysicalPlan::NestedLoopJoin { left, right }, pred)),
            }
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            build,
        } => {
            let left_width = left.output_columns().len();
            match route_join_pred(&pred, left_width) {
                Some(JoinSide::Left) => Ok(PhysicalPlan::HashJoin {
                    left: Box::new(push_into(*left, pred)),
                    right,
                    left_keys,
                    right_keys,
                    build,
                }),
                Some(JoinSide::Right) => {
                    let shifted = unshift_cols(pred, left_width);
                    Ok(PhysicalPlan::HashJoin {
                        left,
                        right: Box::new(push_into(*right, shifted)),
                        left_keys,
                        right_keys,
                        build,
                    })
                }
                None => Err((
                    PhysicalPlan::HashJoin {
                        left,
                        right,
                        left_keys,
                        right_keys,
                        build,
                    },
                    pred,
                )),
            }
        }
        PhysicalPlan::ExceptAll { left, right } => {
            // σ(L ∖ R) = σ(L) ∖ R: rows σ drops appear 0 times on the left
            // either way; the right side is only ever subtracted.
            Ok(PhysicalPlan::ExceptAll {
                left: Box::new(push_into(*left, pred)),
                right,
            })
        }
        // Filtering before numbering would change the numbers; scans are the
        // floor the predicate comes to rest on.
        other @ (PhysicalPlan::RowNumber { .. }
        | PhysicalPlan::TableScan { .. }
        | PhysicalPlan::CteScan { .. }
        | PhysicalPlan::UnitRow) => Err((other, pred)),
    }
}

/// Push as deep as possible; wherever the conjunct stops, a filter holds it.
fn push_into(plan: PhysicalPlan, pred: VExpr) -> PhysicalPlan {
    match push_pred(plan, pred) {
        Ok(plan) => plan,
        Err((plan, pred)) => PhysicalPlan::Filter {
            input: Box::new(plan),
            predicate: pred,
        },
    }
}

enum JoinSide {
    Left,
    Right,
}

/// Which join input can evaluate the predicate alone? `None` if it spans
/// both (or we cannot tell).
fn route_join_pred(pred: &VExpr, left_width: usize) -> Option<JoinSide> {
    let cols = col_indexes(pred);
    if cols.iter().all(|&i| i < left_width) {
        Some(JoinSide::Left)
    } else if cols.iter().all(|&i| i >= left_width) {
        Some(JoinSide::Right)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Pass 4: estimate-driven build sides
// ---------------------------------------------------------------------------

fn rechoose_plan(
    plan: PhysicalPlan,
    catalog: &dyn Catalog,
    env: &mut Vec<(String, f64)>,
    flips: &mut usize,
) -> PhysicalPlan {
    match plan {
        PhysicalPlan::With {
            name,
            definition,
            body,
        } => {
            let definition = rechoose_plan(*definition, catalog, env, flips);
            let rows = estimate_env(&definition, catalog, env);
            env.push((name.clone(), rows));
            let body = rechoose_plan(*body, catalog, env, flips);
            env.pop();
            PhysicalPlan::With {
                name,
                definition: Box::new(definition),
                body: Box::new(body),
            }
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            build,
        } => {
            let left = rechoose_plan(*left, catalog, env, flips);
            let right = rechoose_plan(*right, catalog, env, flips);
            let (l, r) = (
                estimate_env(&left, catalog, env),
                estimate_env(&right, catalog, env),
            );
            // Ties build on the right (the incoming relation), matching the
            // planner's and the interpreter's default.
            let chosen = if r <= l {
                BuildSide::Right
            } else {
                BuildSide::Left
            };
            if chosen != build {
                *flips += 1;
            }
            PhysicalPlan::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                left_keys,
                right_keys,
                build: chosen,
            }
        }
        other => {
            // `map_plan` would re-enter `With` nodes without the env
            // bookkeeping, so recurse manually one level at a time.
            map_children(other, &mut |c| rechoose_plan(c, catalog, env, flips))
        }
    }
}

/// Rebuild a node with `f` applied to each direct structural child and each
/// `EXISTS` subplan embedded in its expressions (one level, not recursive).
fn map_children(
    plan: PhysicalPlan,
    f: &mut dyn FnMut(PhysicalPlan) -> PhysicalPlan,
) -> PhysicalPlan {
    fn expr_f(e: VExpr, f: &mut dyn FnMut(PhysicalPlan) -> PhysicalPlan) -> VExpr {
        match e {
            VExpr::Exists(subplan) => VExpr::Exists(Box::new(f(*subplan))),
            VExpr::BinOp { op, left, right } => VExpr::BinOp {
                op,
                left: Box::new(expr_f(*left, f)),
                right: Box::new(expr_f(*right, f)),
            },
            VExpr::Not(inner) => VExpr::Not(Box::new(expr_f(*inner, f))),
            other => other,
        }
    }
    match plan {
        PhysicalPlan::UnitRow | PhysicalPlan::TableScan { .. } | PhysicalPlan::CteScan { .. } => {
            plan
        }
        PhysicalPlan::SubqueryScan { input, alias } => PhysicalPlan::SubqueryScan {
            input: Box::new(f(*input)),
            alias,
        },
        PhysicalPlan::NestedLoopJoin { left, right } => PhysicalPlan::NestedLoopJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            build,
        } => PhysicalPlan::HashJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            left_keys,
            right_keys,
            build,
        },
        PhysicalPlan::Filter { input, predicate } => {
            let predicate = expr_f(predicate, f);
            PhysicalPlan::Filter {
                input: Box::new(f(*input)),
                predicate,
            }
        }
        PhysicalPlan::ExistsSemiJoin {
            input,
            subplan,
            anti,
        } => PhysicalPlan::ExistsSemiJoin {
            input: Box::new(f(*input)),
            subplan: Box::new(f(*subplan)),
            anti,
        },
        PhysicalPlan::HashSemiJoin {
            input,
            build,
            probe_keys,
            build_keys,
            anti,
        } => PhysicalPlan::HashSemiJoin {
            input: Box::new(f(*input)),
            build: Box::new(f(*build)),
            probe_keys,
            build_keys,
            anti,
        },
        PhysicalPlan::RowNumber { input, specs } => PhysicalPlan::RowNumber {
            input: Box::new(f(*input)),
            specs,
        },
        PhysicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        PhysicalPlan::Project {
            input,
            exprs,
            columns,
        } => PhysicalPlan::Project {
            input: Box::new(f(*input)),
            exprs,
            columns,
        },
        PhysicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
        PhysicalPlan::UnionAll(branches) => {
            PhysicalPlan::UnionAll(branches.into_iter().map(&mut *f).collect())
        }
        PhysicalPlan::ExceptAll { left, right } => PhysicalPlan::ExceptAll {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        PhysicalPlan::With {
            name,
            definition,
            body,
        } => PhysicalPlan::With {
            name,
            definition: Box::new(f(*definition)),
            body: Box::new(f(*body)),
        },
    }
}

/// [`PhysicalPlan::estimate`] refined with catalog row counts and bound
/// `WITH`-definition cardinalities.
fn estimate_env(plan: &PhysicalPlan, catalog: &dyn Catalog, env: &mut Vec<(String, f64)>) -> f64 {
    match plan {
        PhysicalPlan::UnitRow => 1.0,
        PhysicalPlan::TableScan {
            table,
            estimated_rows,
            ..
        } => catalog
            .table_rows(table)
            .or(*estimated_rows)
            .map(|n| n as f64)
            .unwrap_or(DEFAULT_ROWS),
        PhysicalPlan::CteScan { name, .. } => env
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, rows)| *rows)
            .unwrap_or(DEFAULT_ROWS),
        PhysicalPlan::SubqueryScan { input, .. } => estimate_env(input, catalog, env),
        PhysicalPlan::NestedLoopJoin { left, right } => {
            estimate_env(left, catalog, env) * estimate_env(right, catalog, env)
        }
        PhysicalPlan::HashJoin { left, right, .. } => {
            estimate_env(left, catalog, env).max(estimate_env(right, catalog, env))
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::ExistsSemiJoin { input, .. }
        | PhysicalPlan::HashSemiJoin { input, .. }
        | PhysicalPlan::Distinct { input } => {
            estimate_env(input, catalog, env) * FILTER_SELECTIVITY
        }
        PhysicalPlan::RowNumber { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Project { input, .. } => estimate_env(input, catalog, env),
        PhysicalPlan::UnionAll(branches) => {
            branches.iter().map(|b| estimate_env(b, catalog, env)).sum()
        }
        PhysicalPlan::ExceptAll { left, .. } => estimate_env(left, catalog, env),
        PhysicalPlan::With {
            name,
            definition,
            body,
        } => {
            let rows = estimate_env(definition, catalog, env);
            env.push((name.clone(), rows));
            let out = estimate_env(body, catalog, env);
            env.pop();
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Expression utilities
// ---------------------------------------------------------------------------

/// Flatten an `AND` chain into its conjuncts.
fn split_conjuncts(expr: VExpr) -> Vec<VExpr> {
    match expr {
        VExpr::BinOp {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut out = split_conjuncts(*left);
            out.extend(split_conjuncts(*right));
            out
        }
        other => vec![other],
    }
}

/// Rebuild an `AND` chain; `None` when there is nothing left.
fn join_conjuncts(conjuncts: Vec<VExpr>) -> Option<VExpr> {
    conjuncts.into_iter().reduce(|acc, next| VExpr::BinOp {
        op: BinOp::And,
        left: Box::new(acc),
        right: Box::new(next),
    })
}

/// Every positional column index the expression references (not descending
/// into `EXISTS` subplans — their columns index a different batch).
fn col_indexes(expr: &VExpr) -> Vec<usize> {
    fn go(expr: &VExpr, out: &mut Vec<usize>) {
        match expr {
            VExpr::Col { index, .. } => out.push(*index),
            VExpr::BinOp { left, right, .. } => {
                go(left, out);
                go(right, out);
            }
            VExpr::Not(inner) => go(inner, out),
            _ => {}
        }
    }
    let mut out = Vec::new();
    go(expr, &mut out);
    out
}

fn contains_col(expr: &VExpr) -> bool {
    match expr {
        VExpr::Col { .. } => true,
        VExpr::BinOp { left, right, .. } => contains_col(left) || contains_col(right),
        VExpr::Not(inner) => contains_col(inner),
        _ => false,
    }
}

fn contains_exists(expr: &VExpr) -> bool {
    match expr {
        VExpr::Exists(_) => true,
        VExpr::BinOp { left, right, .. } => contains_exists(left) || contains_exists(right),
        VExpr::Not(inner) => contains_exists(inner),
        _ => false,
    }
}

/// Shift every column index up by `by` (a relation moved right of a join).
fn shift_cols(expr: VExpr, by: usize) -> VExpr {
    match expr {
        VExpr::Col {
            index,
            alias,
            column,
        } => VExpr::Col {
            index: index + by,
            alias,
            column,
        },
        VExpr::BinOp { op, left, right } => VExpr::BinOp {
            op,
            left: Box::new(shift_cols(*left, by)),
            right: Box::new(shift_cols(*right, by)),
        },
        VExpr::Not(inner) => VExpr::Not(Box::new(shift_cols(*inner, by))),
        other => other,
    }
}

/// Shift every column index down by `by` (a predicate routed to the right
/// join input). Only called when every index is ≥ `by`.
fn unshift_cols(expr: VExpr, by: usize) -> VExpr {
    match expr {
        VExpr::Col {
            index,
            alias,
            column,
        } => VExpr::Col {
            index: index - by,
            alias,
            column,
        },
        VExpr::BinOp { op, left, right } => VExpr::BinOp {
            op,
            left: Box::new(unshift_cols(*left, by)),
            right: Box::new(unshift_cols(*right, by)),
        },
        VExpr::Not(inner) => VExpr::Not(Box::new(unshift_cols(*inner, by))),
        other => other,
    }
}

/// Replace every `Col { index: i }` with the projection expression `exprs[i]`.
/// Only called after checking each referenced expression is a rename or
/// constant.
fn substitute_cols(expr: VExpr, exprs: &[VExpr]) -> VExpr {
    match expr {
        VExpr::Col { index, .. } => exprs[index].clone(),
        VExpr::BinOp { op, left, right } => VExpr::BinOp {
            op,
            left: Box::new(substitute_cols(*left, exprs)),
            right: Box::new(substitute_cols(*right, exprs)),
        },
        VExpr::Not(inner) => VExpr::Not(Box::new(substitute_cols(*inner, exprs))),
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SchemaCatalog;
    use crate::storage::TableDef;

    struct RowsCatalog(Vec<(&'static str, Vec<&'static str>, usize)>);

    impl Catalog for RowsCatalog {
        fn table_columns(&self, name: &str) -> Option<Vec<String>> {
            self.0
                .iter()
                .find(|(n, _, _)| *n == name)
                .map(|(_, cols, _)| cols.iter().map(|c| c.to_string()).collect())
        }

        fn table_rows(&self, name: &str) -> Option<usize> {
            self.0
                .iter()
                .find(|(n, _, _)| *n == name)
                .map(|(_, _, r)| *r)
        }
    }

    fn scan(table: &str, alias: &str, columns: &[&str]) -> PhysicalPlan {
        PhysicalPlan::TableScan {
            table: table.to_string(),
            alias: alias.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            estimated_rows: None,
        }
    }

    fn col(index: usize, column: &str) -> VExpr {
        VExpr::Col {
            index,
            alias: None,
            column: column.to_string(),
        }
    }

    fn acol(index: usize, alias: &str, column: &str) -> VExpr {
        VExpr::Col {
            index,
            alias: Some(alias.to_string()),
            column: column.to_string(),
        }
    }

    fn lit_int(v: i64) -> VExpr {
        VExpr::Lit(SqlValue::Int(v))
    }

    fn eq(l: VExpr, r: VExpr) -> VExpr {
        VExpr::BinOp {
            op: BinOp::Eq,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn and(l: VExpr, r: VExpr) -> VExpr {
        VExpr::BinOp {
            op: BinOp::And,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn empty_catalog() -> SchemaCatalog {
        SchemaCatalog::new(Vec::<TableDef>::new())
    }

    #[test]
    fn folds_literal_arithmetic_and_boolean_identities() {
        let mut count = 0;
        let folded = fold_expr(
            and(
                VExpr::Lit(SqlValue::Bool(true)),
                eq(
                    col(0, "a"),
                    VExpr::BinOp {
                        op: BinOp::Add,
                        left: Box::new(lit_int(1)),
                        right: Box::new(lit_int(2)),
                    },
                ),
            ),
            &mut count,
        );
        assert_eq!(folded, eq(col(0, "a"), lit_int(3)));
        assert_eq!(count, 2);
    }

    #[test]
    fn does_not_fold_erroring_subtrees() {
        let mut count = 0;
        let div = VExpr::BinOp {
            op: BinOp::Div,
            left: Box::new(lit_int(1)),
            right: Box::new(lit_int(0)),
        };
        assert_eq!(fold_expr(div.clone(), &mut count), div);
        assert_eq!(count, 0);
    }

    #[test]
    fn elides_filter_true() {
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan("t", "t", &["a"])),
            predicate: eq(lit_int(1), lit_int(1)),
        };
        let (opt, report) = optimize(plan, &empty_catalog());
        assert_eq!(opt, scan("t", "t", &["a"]));
        assert!(report.rewrites.iter().any(|r| r.contains("folded")));
    }

    #[test]
    fn decorrelates_simple_equality_exists() {
        // SELECT … FROM t WHERE EXISTS (SELECT 1 FROM c WHERE c.x = t.a AND c.y = 7)
        let subplan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan("c", "c", &["x", "y"])),
                predicate: and(
                    eq(
                        col(0, "x"),
                        VExpr::Outer {
                            table: Some("t".to_string()),
                            column: "a".to_string(),
                        },
                    ),
                    eq(col(1, "y"), lit_int(7)),
                ),
            }),
            exprs: vec![lit_int(1)],
            columns: vec!["one".to_string()],
        };
        let plan = PhysicalPlan::ExistsSemiJoin {
            input: Box::new(scan("t", "t", &["a", "b"])),
            subplan: Box::new(subplan),
            anti: false,
        };
        let (opt, report) = optimize(plan, &empty_catalog());
        assert!(
            report
                .rewrites
                .iter()
                .any(|r| r.contains("decorrelated ExistsSemiJoin into HashSemiJoin")),
            "rewrites: {:?}",
            report.rewrites
        );
        assert!(report.skipped.is_empty(), "skipped: {:?}", report.skipped);
        let PhysicalPlan::HashSemiJoin {
            probe_keys,
            build_keys,
            build,
            anti,
            ..
        } = opt
        else {
            panic!("expected HashSemiJoin, got {}", opt);
        };
        assert!(!anti);
        assert_eq!(probe_keys, vec![acol(0, "t", "a")]);
        assert_eq!(build_keys.len(), 1);
        // The uncorrelated residue (c.y = 7) stays on the build side.
        let rendered = build.to_string();
        assert!(rendered.contains("Filter"), "build: {}", rendered);
        assert!(rendered.contains("#k0"), "build: {}", rendered);
    }

    #[test]
    fn skips_non_equality_correlation_with_reason() {
        let subplan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan("c", "c", &["x"])),
                predicate: VExpr::BinOp {
                    op: BinOp::Lt,
                    left: Box::new(col(0, "x")),
                    right: Box::new(VExpr::Outer {
                        table: Some("t".to_string()),
                        column: "a".to_string(),
                    }),
                },
            }),
            exprs: vec![lit_int(1)],
            columns: vec!["one".to_string()],
        };
        let plan = PhysicalPlan::ExistsSemiJoin {
            input: Box::new(scan("t", "t", &["a"])),
            subplan: Box::new(subplan),
            anti: true,
        };
        let (opt, report) = optimize(plan, &empty_catalog());
        assert!(matches!(
            opt,
            PhysicalPlan::ExistsSemiJoin { anti: true, .. }
        ));
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].node, "ExistsSemiJoin anti");
        assert!(report.skipped[0].reason.contains("not a simple equality"));
    }

    #[test]
    fn decorrelates_union_all_branches_with_reordered_keys() {
        let outer = |c: &str| VExpr::Outer {
            table: Some("t".to_string()),
            column: c.to_string(),
        };
        let branch = |first_a: bool| PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan("c", "c", &["x", "y"])),
                predicate: if first_a {
                    and(eq(outer("a"), col(0, "x")), eq(outer("b"), col(1, "y")))
                } else {
                    and(eq(outer("b"), col(1, "y")), eq(outer("a"), col(0, "x")))
                },
            }),
            exprs: vec![lit_int(1)],
            columns: vec!["one".to_string()],
        };
        let plan = PhysicalPlan::ExistsSemiJoin {
            input: Box::new(scan("t", "t", &["a", "b"])),
            subplan: Box::new(PhysicalPlan::UnionAll(vec![branch(true), branch(false)])),
            anti: false,
        };
        let (opt, report) = optimize(plan, &empty_catalog());
        assert!(report.skipped.is_empty(), "skipped: {:?}", report.skipped);
        let PhysicalPlan::HashSemiJoin {
            probe_keys, build, ..
        } = opt
        else {
            panic!("expected HashSemiJoin, got {}", opt);
        };
        assert_eq!(probe_keys, vec![acol(0, "t", "a"), acol(1, "t", "b")]);
        assert!(matches!(*build, PhysicalPlan::UnionAll(ref bs) if bs.len() == 2));
    }

    #[test]
    fn pushes_predicate_through_project_and_join() {
        // Filter(a = 1) over Project[a := t.a, z := u.z] over HashJoin(t, u)
        let join = PhysicalPlan::HashJoin {
            left: Box::new(scan("t", "t", &["a", "b"])),
            right: Box::new(scan("u", "u", &["z"])),
            left_keys: vec![col(1, "b")],
            right_keys: vec![col(0, "z")],
            build: BuildSide::Right,
        };
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(join),
                exprs: vec![col(0, "a"), col(2, "z")],
                columns: vec!["a".to_string(), "z".to_string()],
            }),
            predicate: eq(col(0, "a"), lit_int(1)),
        };
        let (opt, report) = optimize(plan, &empty_catalog());
        assert!(
            report
                .rewrites
                .iter()
                .any(|r| r.contains("pushed 1 predicate")),
            "rewrites: {:?}",
            report.rewrites
        );
        // The filter now sits directly on the left scan, below project+join.
        let rendered = opt.to_string();
        let filter_pos = rendered.find("Filter").unwrap();
        let join_pos = rendered.find("HashJoin").unwrap();
        assert!(filter_pos > join_pos, "plan:\n{}", rendered);
    }

    #[test]
    fn does_not_push_below_row_number() {
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::RowNumber {
                input: Box::new(scan("t", "t", &["a"])),
                specs: vec![vec![col(0, "a")]],
            }),
            predicate: eq(col(0, "a"), lit_int(1)),
        };
        let (opt, report) = optimize(plan.clone(), &empty_catalog());
        assert_eq!(opt, plan);
        assert!(
            report.rewrites.is_empty(),
            "rewrites: {:?}",
            report.rewrites
        );
    }

    #[test]
    fn rechooses_build_side_from_catalog_rows() {
        let catalog = RowsCatalog(vec![("big", vec!["a"], 100_000), ("small", vec!["z"], 10)]);
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan("small", "s", &["z"])),
            right: Box::new(scan("big", "b", &["a"])),
            left_keys: vec![col(0, "z")],
            right_keys: vec![col(0, "a")],
            // The planner's shape-only default would build on the right.
            build: BuildSide::Right,
        };
        let (opt, report) = optimize(plan, &catalog);
        let PhysicalPlan::HashJoin { build, .. } = opt else {
            panic!("expected HashJoin");
        };
        assert_eq!(build, BuildSide::Left);
        assert!(
            report.rewrites.iter().any(|r| r.contains("build side")),
            "rewrites: {:?}",
            report.rewrites
        );
    }

    #[test]
    fn live_estimate_binds_with_definitions() {
        let catalog = RowsCatalog(vec![("t", vec!["a"], 5000)]);
        let plan = PhysicalPlan::With {
            name: "q".to_string(),
            definition: Box::new(scan("t", "t", &["a"])),
            body: Box::new(PhysicalPlan::CteScan {
                name: "q".to_string(),
                alias: "q".to_string(),
                columns: vec!["a".to_string()],
            }),
        };
        assert_eq!(live_estimate(&plan, &catalog), 5000.0);
    }
}
