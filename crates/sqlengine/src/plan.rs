//! Logical-to-physical query compilation.
//!
//! The planner turns a parsed [`Query`] into an explicit [`PhysicalPlan`]
//! tree once, ahead of execution. The interpreter in [`crate::exec`]
//! re-derives its join strategy from the AST on every call; the planner makes
//! those decisions explicit and cacheable:
//!
//! * every `FROM` item becomes a scan node (table, CTE or subquery),
//! * equi-join conjuncts become [`PhysicalPlan::HashJoin`] nodes with resolved
//!   key expressions and a **chosen build side** (the smaller estimated
//!   input builds the hash table; ties build on the incoming relation, which
//!   is what the interpreter always does),
//! * the remaining conjuncts become [`PhysicalPlan::Filter`] nodes placed as
//!   soon as every alias they mention is bound (predicate pushdown),
//! * `EXISTS` / `NOT EXISTS` conjuncts become [`PhysicalPlan::ExistsSemiJoin`]
//!   nodes (semi / anti joins against a pre-planned subplan),
//! * `ROW_NUMBER`, `ORDER BY`, projection and `DISTINCT` become explicit
//!   operators.
//!
//! Column references are resolved to **positional** indexes into the input
//! batch at plan time ([`VExpr::Col`]); references to enclosing queries stay
//! symbolic ([`VExpr::Outer`]) and are looked up in the runtime scope stack,
//! mirroring the interpreter's correlated-subquery semantics. The planner
//! consults a [`Catalog`] for table layouts and (optionally) cardinalities,
//! so plans can be built either from live [`Storage`] or from a schema alone
//! ([`SchemaCatalog`]) — the latter is what lets `shredding`'s session cache
//! fully planned queries before any data is attached.

use crate::ast::{BinOp, Expr, FromItem, Query, Select, TableSource};
use crate::error::EngineError;
use crate::storage::{Storage, TableDef};
use crate::value::SqlValue;
use std::collections::HashMap;
use std::fmt;

/// Default row-count estimate for relations whose cardinality the catalog
/// does not know (CTEs, subqueries, schema-only planning).
pub(crate) const DEFAULT_ROWS: f64 = 1000.0;

/// Assumed selectivity of a filter or semi-join, for build-side estimation.
pub(crate) const FILTER_SELECTIVITY: f64 = 0.5;

// ---------------------------------------------------------------------------
// The catalog
// ---------------------------------------------------------------------------

/// What the planner may ask about stored tables: their column layout and,
/// when available, their cardinality.
///
/// Catalogs are `Send + Sync` so planning can happen from any thread against
/// a shared engine or schema (both provided implementations — [`Storage`]
/// and [`SchemaCatalog`] — are plain shared-readable data).
pub trait Catalog: Send + Sync {
    /// The column names of a stored table, in declaration order.
    fn table_columns(&self, name: &str) -> Option<Vec<String>>;

    /// The current number of rows of a stored table, if known.
    fn table_rows(&self, name: &str) -> Option<usize>;
}

impl Catalog for Storage {
    fn table_columns(&self, name: &str) -> Option<Vec<String>> {
        self.table(name).ok().map(|t| t.def.column_names())
    }

    fn table_rows(&self, name: &str) -> Option<usize> {
        self.table(name).ok().map(|t| t.len())
    }
}

/// A data-free catalog built from table definitions alone: layouts are known,
/// cardinalities are not. Used to plan against a schema before any database
/// is attached.
#[derive(Debug, Clone, Default)]
pub struct SchemaCatalog {
    defs: Vec<TableDef>,
}

impl SchemaCatalog {
    /// A catalog over the given table definitions.
    pub fn new(defs: Vec<TableDef>) -> SchemaCatalog {
        SchemaCatalog { defs }
    }
}

impl Catalog for SchemaCatalog {
    fn table_columns(&self, name: &str) -> Option<Vec<String>> {
        self.defs
            .iter()
            .find(|d| d.name == name)
            .map(TableDef::column_names)
    }

    fn table_rows(&self, _name: &str) -> Option<usize> {
        None
    }
}

// ---------------------------------------------------------------------------
// Physical expressions
// ---------------------------------------------------------------------------

/// A scalar expression with column references resolved against the plan
/// node's input batch (positional) or against the enclosing queries' scope
/// stack (symbolic, for correlated subqueries).
///
/// `PartialEq` is structural (indexes, names, literals), which is what the
/// package-level common-subplan elimination in `shredding` keys on.
#[derive(Debug, Clone, PartialEq)]
pub enum VExpr {
    /// Column `index` of the input batch. `alias`/`column` are kept for
    /// rendering only.
    Col {
        index: usize,
        alias: Option<String>,
        column: String,
    },
    /// A reference into an enclosing query's row, resolved at runtime.
    Outer {
        table: Option<String>,
        column: String,
    },
    /// A literal value.
    Lit(SqlValue),
    /// A named placeholder `:name` — a param slot filled from the
    /// `ParamValues` supplied at execution time. Plans with param slots are
    /// compiled once and re-executed with different bindings.
    Param(String),
    /// A binary operation.
    BinOp {
        op: BinOp,
        left: Box<VExpr>,
        right: Box<VExpr>,
    },
    /// Boolean negation.
    Not(Box<VExpr>),
    /// `EXISTS (subplan)`, evaluated per row with the row bound as an outer
    /// scope frame.
    Exists(Box<PhysicalPlan>),
}

impl fmt::Display for VExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VExpr::Col { alias, column, .. } => match alias {
                Some(a) => write!(f, "{}.{}", a, column),
                None => write!(f, "{}", column),
            },
            VExpr::Outer { table, column } => match table {
                Some(t) => write!(f, "outer({}.{})", t, column),
                None => write!(f, "outer({})", column),
            },
            VExpr::Lit(v) => write!(f, "{}", v),
            VExpr::Param(name) => write!(f, ":{}", name),
            VExpr::BinOp { op, left, right } => {
                write!(f, "({} {} {})", left, op.symbol(), right)
            }
            VExpr::Not(inner) => write!(f, "NOT ({})", inner),
            VExpr::Exists(_) => write!(f, "EXISTS (…)"),
        }
    }
}

// ---------------------------------------------------------------------------
// Physical plans
// ---------------------------------------------------------------------------

/// Which input of a [`PhysicalPlan::HashJoin`] builds the hash table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildSide {
    Left,
    Right,
}

impl fmt::Display for BuildSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildSide::Left => write!(f, "left"),
            BuildSide::Right => write!(f, "right"),
        }
    }
}

/// An executable physical plan tree. Produced once by [`plan_query`] and run
/// any number of times by [`crate::vexec`]. `PartialEq` is structural —
/// two plans compare equal iff they are the same operator tree with the
/// same resolved expressions — which is what cross-stage subplan sharing
/// keys on.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// A single row with no columns — the join identity (a `SELECT` without
    /// `FROM` produces exactly one output row).
    UnitRow,
    /// Scan a stored table.
    TableScan {
        table: String,
        alias: String,
        columns: Vec<String>,
        estimated_rows: Option<usize>,
    },
    /// Scan a `WITH`-bound result.
    CteScan {
        name: String,
        alias: String,
        columns: Vec<String>,
    },
    /// Re-alias the result of a planned subquery in `FROM`.
    SubqueryScan {
        input: Box<PhysicalPlan>,
        alias: String,
    },
    /// Cross product (no usable equi-join key).
    NestedLoopJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
    },
    /// Hash equi-join. `left_keys[i]` pairs with `right_keys[i]`; `build`
    /// says which input builds the hash table (the other side probes).
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_keys: Vec<VExpr>,
        right_keys: Vec<VExpr>,
        build: BuildSide,
    },
    /// Keep rows whose predicate evaluates to `TRUE`.
    Filter {
        input: Box<PhysicalPlan>,
        predicate: VExpr,
    },
    /// Keep rows for which the correlated subplan is non-empty (`anti`
    /// inverts: keep rows for which it is empty).
    ExistsSemiJoin {
        input: Box<PhysicalPlan>,
        subplan: Box<PhysicalPlan>,
        anti: bool,
    },
    /// Decorrelated semi/anti join: execute `build` **once**, hash its
    /// `build_keys`, and keep the input rows whose `probe_keys` hit the
    /// table (`anti` inverts). Produced by the logical optimizer
    /// ([`crate::opt`]) from a correlated [`PhysicalPlan::ExistsSemiJoin`]
    /// whose correlation is a conjunction of equalities; `probe_keys[i]`
    /// pairs with `build_keys[i]`. Build rows with a `NULL` key never
    /// match; a probe row with a `NULL` key matches nothing (the semi join
    /// drops it, the anti join keeps it) — exactly the three-valued
    /// semantics of the equality filter it replaces. With empty key lists
    /// the node is an uncorrelated `EXISTS`: the probe matches iff the
    /// build is non-empty.
    HashSemiJoin {
        input: Box<PhysicalPlan>,
        build: Box<PhysicalPlan>,
        probe_keys: Vec<VExpr>,
        build_keys: Vec<VExpr>,
        anti: bool,
    },
    /// Append one `#rn<i>` column per window specification, numbering rows
    /// by the spec's sort keys.
    RowNumber {
        input: Box<PhysicalPlan>,
        specs: Vec<Vec<VExpr>>,
    },
    /// Stable sort by the given keys.
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<VExpr>,
    },
    /// Evaluate the projection list; output columns are named `columns`.
    Project {
        input: Box<PhysicalPlan>,
        exprs: Vec<VExpr>,
        columns: Vec<String>,
    },
    /// Remove duplicate rows, keeping first occurrences.
    Distinct { input: Box<PhysicalPlan> },
    /// Bag union of several inputs.
    UnionAll(Vec<PhysicalPlan>),
    /// Bag difference.
    ExceptAll {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
    },
    /// Materialise `definition` under `name` for `CteScan`s inside `body`.
    With {
        name: String,
        definition: Box<PhysicalPlan>,
        body: Box<PhysicalPlan>,
    },
}

impl PhysicalPlan {
    /// The output column names of the plan.
    pub fn output_columns(&self) -> Vec<String> {
        match self {
            PhysicalPlan::UnitRow => Vec::new(),
            PhysicalPlan::TableScan { columns, .. } | PhysicalPlan::CteScan { columns, .. } => {
                columns.clone()
            }
            PhysicalPlan::SubqueryScan { input, .. } => input.output_columns(),
            PhysicalPlan::NestedLoopJoin { left, right }
            | PhysicalPlan::HashJoin { left, right, .. } => {
                let mut cols = left.output_columns();
                cols.extend(right.output_columns());
                cols
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::ExistsSemiJoin { input, .. }
            | PhysicalPlan::HashSemiJoin { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Distinct { input } => input.output_columns(),
            PhysicalPlan::RowNumber { input, specs } => {
                let mut cols = input.output_columns();
                cols.extend((0..specs.len()).map(|i| format!("#rn{}", i)));
                cols
            }
            PhysicalPlan::Project { columns, .. } => columns.clone(),
            PhysicalPlan::UnionAll(branches) => branches
                .first()
                .map(PhysicalPlan::output_columns)
                .unwrap_or_default(),
            PhysicalPlan::ExceptAll { left, .. } => left.output_columns(),
            PhysicalPlan::With { body, .. } => body.output_columns(),
        }
    }

    /// Number of operator nodes in the plan (used by tests and explain).
    pub fn node_count(&self) -> usize {
        1 + match self {
            PhysicalPlan::UnitRow
            | PhysicalPlan::TableScan { .. }
            | PhysicalPlan::CteScan { .. } => 0,
            PhysicalPlan::SubqueryScan { input, .. }
            | PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::RowNumber { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Distinct { input } => input.node_count(),
            PhysicalPlan::ExistsSemiJoin { input, subplan, .. } => {
                input.node_count() + subplan.node_count()
            }
            PhysicalPlan::HashSemiJoin { input, build, .. } => {
                input.node_count() + build.node_count()
            }
            PhysicalPlan::NestedLoopJoin { left, right }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::ExceptAll { left, right } => left.node_count() + right.node_count(),
            PhysicalPlan::UnionAll(branches) => branches.iter().map(PhysicalPlan::node_count).sum(),
            PhysicalPlan::With {
                definition, body, ..
            } => definition.node_count() + body.node_count(),
        }
    }

    /// The operator kind name, as shown at the head of each rendered plan
    /// line (used to bucket per-operator metrics).
    pub fn kind(&self) -> &'static str {
        match self {
            PhysicalPlan::UnitRow => "UnitRow",
            PhysicalPlan::TableScan { .. } => "TableScan",
            PhysicalPlan::CteScan { .. } => "CteScan",
            PhysicalPlan::SubqueryScan { .. } => "SubqueryScan",
            PhysicalPlan::NestedLoopJoin { .. } => "NestedLoopJoin",
            PhysicalPlan::HashJoin { .. } => "HashJoin",
            PhysicalPlan::Filter { .. } => "Filter",
            PhysicalPlan::ExistsSemiJoin { .. } => "ExistsSemiJoin",
            PhysicalPlan::HashSemiJoin { .. } => "HashSemiJoin",
            PhysicalPlan::RowNumber { .. } => "RowNumber",
            PhysicalPlan::Sort { .. } => "Sort",
            PhysicalPlan::Project { .. } => "Project",
            PhysicalPlan::Distinct { .. } => "Distinct",
            PhysicalPlan::UnionAll(_) => "UnionAll",
            PhysicalPlan::ExceptAll { .. } => "ExceptAll",
            PhysicalPlan::With { .. } => "With",
        }
    }

    /// Is this operator a **pipeline breaker** — one that must observe its
    /// whole input before emitting its first output row? Breakers are the
    /// operators the morsel-parallel executor ([`crate::par`]) cannot
    /// stream: they accumulate per-worker partial state (sorted runs, row
    /// materialisations) and merge it, instead of emitting per-morsel
    /// results in morsel order. Everything else (scans, filters, joins,
    /// projections, exists-semijoins) is streaming: its output for a morsel
    /// depends only on that morsel's rows, so per-morsel intermediate
    /// memory is bounded by the morsel size.
    ///
    /// `HashJoin` is deliberately *not* classified as a breaker: only its
    /// build side is blocking, and the build table is partitioned across
    /// workers rather than accumulated per-worker (see `crate::par`).
    pub fn is_pipeline_breaker(&self) -> bool {
        matches!(
            self,
            PhysicalPlan::Sort { .. }
                | PhysicalPlan::RowNumber { .. }
                | PhysicalPlan::Distinct { .. }
                | PhysicalPlan::UnionAll(_)
                | PhysicalPlan::ExceptAll { .. }
        )
    }

    /// The node's direct structural children (its inputs), in render order.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::UnitRow
            | PhysicalPlan::TableScan { .. }
            | PhysicalPlan::CteScan { .. } => Vec::new(),
            PhysicalPlan::SubqueryScan { input, .. }
            | PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::RowNumber { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Distinct { input } => vec![input],
            PhysicalPlan::ExistsSemiJoin { input, subplan, .. } => vec![input, subplan],
            PhysicalPlan::HashSemiJoin { input, build, .. } => vec![input, build],
            PhysicalPlan::NestedLoopJoin { left, right }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::ExceptAll { left, right } => vec![left, right],
            PhysicalPlan::UnionAll(branches) => branches.iter().collect(),
            PhysicalPlan::With {
                definition, body, ..
            } => vec![definition, body],
        }
    }

    /// `EXISTS (…)` subplans referenced by this node's expressions (not by
    /// its structural children). These execute once per input row via
    /// [`VExpr::Exists`] and get profiled like any other node.
    pub(crate) fn expr_subplans(&self) -> Vec<&PhysicalPlan> {
        fn go<'p>(e: &'p VExpr, acc: &mut Vec<&'p PhysicalPlan>) {
            match e {
                VExpr::Exists(sub) => acc.push(sub),
                VExpr::BinOp { left, right, .. } => {
                    go(left, acc);
                    go(right, acc);
                }
                VExpr::Not(inner) => go(inner, acc),
                VExpr::Col { .. } | VExpr::Outer { .. } | VExpr::Lit(_) | VExpr::Param(_) => {}
            }
        }
        let mut acc = Vec::new();
        match self {
            PhysicalPlan::Filter { predicate, .. } => go(predicate, &mut acc),
            PhysicalPlan::HashJoin {
                left_keys,
                right_keys,
                ..
            } => {
                left_keys.iter().for_each(|k| go(k, &mut acc));
                right_keys.iter().for_each(|k| go(k, &mut acc));
            }
            PhysicalPlan::HashSemiJoin {
                probe_keys,
                build_keys,
                ..
            } => {
                probe_keys.iter().for_each(|k| go(k, &mut acc));
                build_keys.iter().for_each(|k| go(k, &mut acc));
            }
            PhysicalPlan::RowNumber { specs, .. } => specs
                .iter()
                .for_each(|keys| keys.iter().for_each(|k| go(k, &mut acc))),
            PhysicalPlan::Sort { keys, .. } => keys.iter().for_each(|k| go(k, &mut acc)),
            PhysicalPlan::Project { exprs, .. } => exprs.iter().for_each(|e| go(e, &mut acc)),
            _ => {}
        }
        acc
    }

    /// Every node of the plan in pre-order: the node itself, then the
    /// subplans of its expressions, then its structural children. A node's
    /// position in this list is its stable *pre-order index*, the key the
    /// profiled executor files per-operator actuals under.
    pub fn nodes(&self) -> Vec<&PhysicalPlan> {
        fn go<'p>(p: &'p PhysicalPlan, acc: &mut Vec<&'p PhysicalPlan>) {
            acc.push(p);
            for sub in p.expr_subplans() {
                go(sub, acc);
            }
            for child in p.children() {
                go(child, acc);
            }
        }
        let mut acc = Vec::new();
        go(self, &mut acc);
        acc
    }

    /// Every stored table this plan (or any of its subplans — `EXISTS`
    /// expressions, semi-join subplans, `WITH` definitions) scans. The
    /// incremental maintenance layer uses this to skip subtrees a write
    /// batch cannot have affected.
    pub fn referenced_tables(&self) -> std::collections::BTreeSet<String> {
        self.nodes()
            .into_iter()
            .filter_map(|n| match n {
                PhysicalPlan::TableScan { table, .. } => Some(table.clone()),
                _ => None,
            })
            .collect()
    }

    /// Every *free* `WITH`-bound name this plan scans: `CteScan` names not
    /// bound by an enclosing `With` inside this subtree. A stage plan has no
    /// free CTEs; subtrees of it (e.g. an `EXISTS` subplan under the `WITH`
    /// body) may.
    pub fn free_ctes(&self) -> std::collections::BTreeSet<String> {
        fn go(
            p: &PhysicalPlan,
            bound: &mut Vec<String>,
            acc: &mut std::collections::BTreeSet<String>,
        ) {
            if let PhysicalPlan::CteScan { name, .. } = p {
                if !bound.iter().any(|b| b == name) {
                    acc.insert(name.clone());
                }
            }
            for sub in p.expr_subplans() {
                go(sub, bound, acc);
            }
            if let PhysicalPlan::With {
                name,
                definition,
                body,
            } = p
            {
                go(definition, bound, acc);
                bound.push(name.clone());
                go(body, bound, acc);
                bound.pop();
            } else {
                for child in p.children() {
                    go(child, bound, acc);
                }
            }
        }
        let mut acc = std::collections::BTreeSet::new();
        go(self, &mut Vec::new(), &mut acc);
        acc
    }

    /// The plan's param slots: every named placeholder referenced anywhere in
    /// the plan tree (including subplans), in first-occurrence order.
    /// Executing the plan requires a bound value for each.
    pub fn params(&self) -> Vec<String> {
        fn go_expr(e: &VExpr, acc: &mut Vec<String>) {
            match e {
                VExpr::Param(name) => {
                    if !acc.contains(name) {
                        acc.push(name.clone());
                    }
                }
                VExpr::Col { .. } | VExpr::Outer { .. } | VExpr::Lit(_) => {}
                VExpr::BinOp { left, right, .. } => {
                    go_expr(left, acc);
                    go_expr(right, acc);
                }
                VExpr::Not(inner) => go_expr(inner, acc),
                VExpr::Exists(sub) => go_plan(sub, acc),
            }
        }
        fn go_plan(p: &PhysicalPlan, acc: &mut Vec<String>) {
            match p {
                PhysicalPlan::UnitRow
                | PhysicalPlan::TableScan { .. }
                | PhysicalPlan::CteScan { .. } => {}
                PhysicalPlan::SubqueryScan { input, .. } | PhysicalPlan::Distinct { input } => {
                    go_plan(input, acc)
                }
                PhysicalPlan::NestedLoopJoin { left, right }
                | PhysicalPlan::ExceptAll { left, right } => {
                    go_plan(left, acc);
                    go_plan(right, acc);
                }
                PhysicalPlan::HashJoin {
                    left,
                    right,
                    left_keys,
                    right_keys,
                    ..
                } => {
                    go_plan(left, acc);
                    go_plan(right, acc);
                    left_keys.iter().for_each(|k| go_expr(k, acc));
                    right_keys.iter().for_each(|k| go_expr(k, acc));
                }
                PhysicalPlan::Filter { input, predicate } => {
                    go_plan(input, acc);
                    go_expr(predicate, acc);
                }
                PhysicalPlan::ExistsSemiJoin { input, subplan, .. } => {
                    go_plan(input, acc);
                    go_plan(subplan, acc);
                }
                PhysicalPlan::HashSemiJoin {
                    input,
                    build,
                    probe_keys,
                    build_keys,
                    ..
                } => {
                    go_plan(input, acc);
                    go_plan(build, acc);
                    probe_keys.iter().for_each(|k| go_expr(k, acc));
                    build_keys.iter().for_each(|k| go_expr(k, acc));
                }
                PhysicalPlan::RowNumber { input, specs } => {
                    go_plan(input, acc);
                    specs
                        .iter()
                        .for_each(|keys| keys.iter().for_each(|k| go_expr(k, acc)));
                }
                PhysicalPlan::Sort { input, keys } => {
                    go_plan(input, acc);
                    keys.iter().for_each(|k| go_expr(k, acc));
                }
                PhysicalPlan::Project { input, exprs, .. } => {
                    go_plan(input, acc);
                    exprs.iter().for_each(|e| go_expr(e, acc));
                }
                PhysicalPlan::UnionAll(branches) => branches.iter().for_each(|b| go_plan(b, acc)),
                PhysicalPlan::With {
                    definition, body, ..
                } => {
                    go_plan(definition, acc);
                    go_plan(body, acc);
                }
            }
        }
        let mut acc = Vec::new();
        go_plan(self, &mut acc);
        acc
    }

    /// Rough output-cardinality estimate, used to choose hash-join build
    /// sides. The logical optimizer ([`crate::opt`]) refines these with
    /// catalog row counts and `WITH`-definition cardinalities.
    pub(crate) fn estimate(&self) -> f64 {
        match self {
            PhysicalPlan::UnitRow => 1.0,
            PhysicalPlan::TableScan { estimated_rows, .. } => {
                estimated_rows.map(|n| n as f64).unwrap_or(DEFAULT_ROWS)
            }
            PhysicalPlan::CteScan { .. } => DEFAULT_ROWS,
            PhysicalPlan::SubqueryScan { input, .. } => input.estimate(),
            PhysicalPlan::NestedLoopJoin { left, right } => left.estimate() * right.estimate(),
            PhysicalPlan::HashJoin { left, right, .. } => left.estimate().max(right.estimate()),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::ExistsSemiJoin { input, .. }
            | PhysicalPlan::HashSemiJoin { input, .. } => input.estimate() * FILTER_SELECTIVITY,
            PhysicalPlan::RowNumber { input, .. } | PhysicalPlan::Sort { input, .. } => {
                input.estimate()
            }
            PhysicalPlan::Project { input, .. } => input.estimate(),
            PhysicalPlan::Distinct { input } => input.estimate() * FILTER_SELECTIVITY,
            PhysicalPlan::UnionAll(branches) => branches.iter().map(PhysicalPlan::estimate).sum(),
            PhysicalPlan::ExceptAll { left, .. } => left.estimate(),
            PhysicalPlan::With { body, .. } => body.estimate(),
        }
    }

    /// This node's own render line, without indentation or children.
    fn node_line(&self) -> String {
        match self {
            PhysicalPlan::UnitRow => "UnitRow".to_string(),
            PhysicalPlan::TableScan {
                table,
                alias,
                estimated_rows,
                ..
            } => {
                let mut line = format!("TableScan {} AS {}", table, alias);
                if let Some(n) = estimated_rows {
                    line.push_str(&format!(" (rows={})", n));
                }
                line
            }
            PhysicalPlan::CteScan { name, alias, .. } => {
                format!("CteScan {} AS {}", name, alias)
            }
            PhysicalPlan::SubqueryScan { alias, .. } => format!("SubqueryScan AS {}", alias),
            PhysicalPlan::NestedLoopJoin { .. } => "NestedLoopJoin".to_string(),
            PhysicalPlan::HashJoin {
                left_keys,
                right_keys,
                build,
                ..
            } => {
                let keys: Vec<String> = left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(l, r)| format!("{} = {}", l, r))
                    .collect();
                format!("HashJoin build={} keys=[{}]", build, keys.join(", "))
            }
            PhysicalPlan::Filter { predicate, .. } => format!("Filter {}", predicate),
            PhysicalPlan::ExistsSemiJoin { anti, .. } => {
                if *anti {
                    "ExistsSemiJoin anti".to_string()
                } else {
                    "ExistsSemiJoin".to_string()
                }
            }
            PhysicalPlan::HashSemiJoin {
                probe_keys,
                build_keys,
                anti,
                ..
            } => {
                let keys: Vec<String> = probe_keys
                    .iter()
                    .zip(build_keys)
                    .map(|(p, b)| format!("{} = {}", p, b))
                    .collect();
                format!(
                    "HashSemiJoin{} keys=[{}]",
                    if *anti { " anti" } else { "" },
                    keys.join(", ")
                )
            }
            PhysicalPlan::RowNumber { specs, .. } => {
                let rendered: Vec<String> = specs
                    .iter()
                    .map(|keys| {
                        let ks: Vec<String> = keys.iter().map(VExpr::to_string).collect();
                        format!("[{}]", ks.join(", "))
                    })
                    .collect();
                format!("RowNumber over {}", rendered.join(" "))
            }
            PhysicalPlan::Sort { keys, .. } => {
                let ks: Vec<String> = keys.iter().map(VExpr::to_string).collect();
                format!("Sort [{}]", ks.join(", "))
            }
            PhysicalPlan::Project { exprs, columns, .. } => {
                let items: Vec<String> = exprs
                    .iter()
                    .zip(columns)
                    .map(|(e, c)| format!("{} AS {}", e, c))
                    .collect();
                format!("Project [{}]", items.join(", "))
            }
            PhysicalPlan::Distinct { .. } => "Distinct".to_string(),
            PhysicalPlan::UnionAll(_) => "UnionAll".to_string(),
            PhysicalPlan::ExceptAll { .. } => "ExceptAll".to_string(),
            PhysicalPlan::With { name, .. } => format!("With {}", name),
        }
    }

    fn render(&self, out: &mut String, level: usize) {
        for _ in 0..level {
            out.push_str("  ");
        }
        out.push_str(&self.node_line());
        out.push('\n');
        for child in self.children() {
            child.render(out, level + 1);
        }
    }

    /// Render the plan tree with each node annotated with runtime actuals
    /// (`EXPLAIN ANALYZE` style). `actuals` is indexed by the node pre-order
    /// index from [`PhysicalPlan::nodes`], as produced by the profiled
    /// executor; a node with no recorded executions is annotated
    /// `never executed`. Elapsed times are inclusive of children.
    pub fn render_analyzed(&self, actuals: &[OpActuals]) -> String {
        let ids: HashMap<usize, usize> = self
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, n)| (*n as *const PhysicalPlan as usize, i))
            .collect();
        fn go(
            plan: &PhysicalPlan,
            out: &mut String,
            level: usize,
            ids: &HashMap<usize, usize>,
            actuals: &[OpActuals],
        ) {
            for _ in 0..level {
                out.push_str("  ");
            }
            out.push_str(&plan.node_line());
            let stats = ids
                .get(&(plan as *const PhysicalPlan as usize))
                .and_then(|&id| actuals.get(id));
            match stats {
                Some(a) if a.batches > 0 => {
                    out.push_str(&format!(
                        "  (actual batches={} rows_in={} rows_out={} elapsed={:.3}ms)",
                        a.batches,
                        a.rows_in,
                        a.rows_out,
                        a.nanos as f64 / 1e6,
                    ));
                }
                _ => out.push_str("  (actual never executed)"),
            }
            out.push('\n');
            for child in plan.children() {
                go(child, out, level + 1, ids, actuals);
            }
        }
        let mut out = String::new();
        go(self, &mut out, 0, &ids, actuals);
        out.trim_end().to_string()
    }
}

/// Runtime actuals accumulated for one plan node by the profiled executor
/// (see `vexec::execute_plan_profiled`). `nanos` is wall time inclusive of
/// the node's children, Postgres-`EXPLAIN ANALYZE` style; `batches` counts
/// executions of the node (correlated subplans run once per outer row).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpActuals {
    pub batches: u64,
    pub rows_in: u64,
    pub rows_out: u64,
    pub nanos: u64,
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(&mut out, 0);
        write!(f, "{}", out.trim_end())
    }
}

// ---------------------------------------------------------------------------
// The planner
// ---------------------------------------------------------------------------

/// Compile a query into a physical plan against the given catalog.
pub fn plan_query(query: &Query, catalog: &dyn Catalog) -> Result<PhysicalPlan, EngineError> {
    let planner = Planner { catalog };
    let mut ctx = PlanCtx::default();
    planner.plan_query(query, &mut ctx)
}

/// One column of a plan node's output: the binding alias (absent after
/// projection) and the column name.
type SchemaCol = (Option<String>, String);

/// Planning context: `WITH` bindings and the schemas of enclosing queries
/// (outermost first), for correlated-reference resolution.
#[derive(Default)]
struct PlanCtx {
    ctes: Vec<(String, Vec<String>)>,
    outer: Vec<Vec<SchemaCol>>,
}

/// Window specifications available to projection/sort resolution: the
/// original `ORDER BY` key lists and the batch position of the first `#rn`
/// column.
struct RnMap<'a> {
    specs: &'a [Vec<Expr>],
    base: usize,
}

struct Planner<'a> {
    catalog: &'a dyn Catalog,
}

impl Planner<'_> {
    fn plan_query(&self, query: &Query, ctx: &mut PlanCtx) -> Result<PhysicalPlan, EngineError> {
        match query {
            Query::Select(s) => self.plan_select(s, ctx),
            Query::UnionAll(branches) => {
                if branches.is_empty() {
                    return Err(EngineError::TypeError("empty UNION ALL".to_string()));
                }
                let plans = branches
                    .iter()
                    .map(|b| self.plan_query(b, ctx))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(PhysicalPlan::UnionAll(plans))
            }
            Query::ExceptAll(left, right) => Ok(PhysicalPlan::ExceptAll {
                left: Box::new(self.plan_query(left, ctx)?),
                right: Box::new(self.plan_query(right, ctx)?),
            }),
            Query::With {
                name,
                definition,
                body,
            } => {
                let def_plan = self.plan_select(definition, ctx)?;
                ctx.ctes.push((name.clone(), def_plan.output_columns()));
                let body_plan = self.plan_query(body, ctx);
                ctx.ctes.pop();
                Ok(PhysicalPlan::With {
                    name: name.clone(),
                    definition: Box::new(def_plan),
                    body: Box::new(body_plan?),
                })
            }
        }
    }

    fn plan_select(&self, select: &Select, ctx: &mut PlanCtx) -> Result<PhysicalPlan, EngineError> {
        // 1. Plan the FROM items.
        let mut rels: Vec<(PhysicalPlan, String, Vec<String>)> = Vec::new();
        for item in &select.from {
            rels.push(self.plan_from_item(item, ctx)?);
        }
        let from_aliases: Vec<String> = rels.iter().map(|(_, a, _)| a.clone()).collect();

        // 2. Join left to right, mirroring the interpreter's conjunct
        //    partitioning: hash keys where an equi-join connects the incoming
        //    relation to the bound ones, filters as soon as every mentioned
        //    alias is bound, the rest (EXISTS, unqualified references) after
        //    the final join.
        let mut pending: Vec<Expr> = select
            .where_clause
            .as_ref()
            .map(|w| w.conjuncts())
            .unwrap_or_default();
        let mut current: Option<PhysicalPlan> = None;
        let mut schema: Vec<SchemaCol> = Vec::new();
        let mut bound_aliases: Vec<String> = Vec::new();

        for (rel_plan, alias, columns) in rels {
            let rel_schema: Vec<SchemaCol> = columns
                .iter()
                .map(|c| (Some(alias.clone()), c.clone()))
                .collect();

            let mut hash_keys: Vec<(Expr, Expr)> = Vec::new(); // (bound side, new side)
            let mut now_applicable: Vec<Expr> = Vec::new();
            let mut still_pending: Vec<Expr> = Vec::new();
            for conj in pending.drain(..) {
                let refs = conj.referenced_aliases();
                let from_refs: Vec<&String> =
                    refs.iter().filter(|a| from_aliases.contains(a)).collect();
                let all_bound_after = from_refs
                    .iter()
                    .all(|a| bound_aliases.contains(a) || *a == &alias)
                    && !conj.contains_unqualified_column()
                    && !conj.contains_exists();
                if !all_bound_after {
                    still_pending.push(conj);
                    continue;
                }
                if let Expr::BinOp {
                    op: BinOp::Eq,
                    left,
                    right,
                } = &conj
                {
                    let l_refs = left.referenced_aliases();
                    let r_refs = right.referenced_aliases();
                    let l_new = l_refs.iter().any(|a| a == &alias);
                    let r_new = r_refs.iter().any(|a| a == &alias);
                    let l_bound_only = l_refs.iter().all(|a| bound_aliases.contains(a));
                    let r_bound_only = r_refs.iter().all(|a| bound_aliases.contains(a));
                    let r_new_only = r_refs.iter().all(|a| a == &alias);
                    let l_new_only = l_refs.iter().all(|a| a == &alias);
                    if l_bound_only && r_new && r_new_only && !l_new && !bound_aliases.is_empty() {
                        hash_keys.push(((**left).clone(), (**right).clone()));
                        continue;
                    }
                    if r_bound_only && l_new && l_new_only && !r_new && !bound_aliases.is_empty() {
                        hash_keys.push(((**right).clone(), (**left).clone()));
                        continue;
                    }
                }
                now_applicable.push(conj);
            }
            pending = still_pending;

            let joined = match current.take() {
                None => {
                    debug_assert!(hash_keys.is_empty(), "first relation has no bound side");
                    rel_plan
                }
                Some(acc) => {
                    if hash_keys.is_empty() {
                        PhysicalPlan::NestedLoopJoin {
                            left: Box::new(acc),
                            right: Box::new(rel_plan),
                        }
                    } else {
                        let mut left_keys = Vec::with_capacity(hash_keys.len());
                        let mut right_keys = Vec::with_capacity(hash_keys.len());
                        for (bound_side, new_side) in &hash_keys {
                            left_keys.push(self.resolve(bound_side, ctx, &schema, None)?);
                            right_keys.push(self.resolve(new_side, ctx, &rel_schema, None)?);
                        }
                        // Build-side heuristic: the smaller estimated input
                        // builds the hash table; ties build on the incoming
                        // relation.
                        let build = if rel_plan.estimate() <= acc.estimate() {
                            BuildSide::Right
                        } else {
                            BuildSide::Left
                        };
                        PhysicalPlan::HashJoin {
                            left: Box::new(acc),
                            right: Box::new(rel_plan),
                            left_keys,
                            right_keys,
                            build,
                        }
                    }
                }
            };
            schema.extend(rel_schema);
            bound_aliases.push(alias);

            let mut filtered = joined;
            for conj in &now_applicable {
                let predicate = self.resolve(conj, ctx, &schema, None)?;
                filtered = PhysicalPlan::Filter {
                    input: Box::new(filtered),
                    predicate,
                };
            }
            current = Some(filtered);
        }

        let mut plan = current.unwrap_or(PhysicalPlan::UnitRow);

        // 3. Residual conjuncts: EXISTS becomes a semi/anti join; anything
        //    else (unqualified references, EXISTS under OR) a plain filter.
        for conj in &pending {
            plan = match conj {
                Expr::Exists(sub) => PhysicalPlan::ExistsSemiJoin {
                    input: Box::new(plan),
                    subplan: Box::new(self.plan_subquery(sub, ctx, &schema)?),
                    anti: false,
                },
                Expr::Not(inner) => match inner.as_ref() {
                    Expr::Exists(sub) => PhysicalPlan::ExistsSemiJoin {
                        input: Box::new(plan),
                        subplan: Box::new(self.plan_subquery(sub, ctx, &schema)?),
                        anti: true,
                    },
                    _ => PhysicalPlan::Filter {
                        predicate: self.resolve(conj, ctx, &schema, None)?,
                        input: Box::new(plan),
                    },
                },
                _ => PhysicalPlan::Filter {
                    predicate: self.resolve(conj, ctx, &schema, None)?,
                    input: Box::new(plan),
                },
            };
        }

        // 4. ROW_NUMBER windows used by the projection.
        let specs = crate::exec::collect_row_number_specs(select);
        if !specs.is_empty() {
            let mut resolved_specs = Vec::with_capacity(specs.len());
            for keys in &specs {
                let resolved = keys
                    .iter()
                    .map(|k| self.resolve(k, ctx, &schema, None))
                    .collect::<Result<Vec<_>, _>>()?;
                resolved_specs.push(resolved);
            }
            let base = schema.len();
            plan = PhysicalPlan::RowNumber {
                input: Box::new(plan),
                specs: resolved_specs,
            };
            for i in 0..specs.len() {
                schema.push((None, format!("#rn{}", i)));
            }
            debug_assert_eq!(base + specs.len(), schema.len());
        }
        let rn = RnMap {
            specs: &specs,
            base: schema.len() - specs.len(),
        };

        // 5. ORDER BY sorts the joined rows before projection (projection is
        //    per-row, so this matches the interpreter's stable post-projection
        //    sort on pre-projection keys).
        if !select.order_by.is_empty() {
            let keys = select
                .order_by
                .iter()
                .map(|k| self.resolve(k, ctx, &schema, Some(&rn)))
                .collect::<Result<Vec<_>, _>>()?;
            plan = PhysicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }

        // 6. Projection.
        let mut exprs = Vec::with_capacity(select.items.len());
        let mut columns = Vec::with_capacity(select.items.len());
        for item in &select.items {
            exprs.push(self.resolve(&item.expr, ctx, &schema, Some(&rn))?);
            columns.push(item.alias.clone());
        }
        plan = PhysicalPlan::Project {
            input: Box::new(plan),
            exprs,
            columns,
        };

        // 7. DISTINCT.
        if select.distinct {
            plan = PhysicalPlan::Distinct {
                input: Box::new(plan),
            };
        }
        Ok(plan)
    }

    fn plan_from_item(
        &self,
        item: &FromItem,
        ctx: &mut PlanCtx,
    ) -> Result<(PhysicalPlan, String, Vec<String>), EngineError> {
        let (plan, columns) = match &item.source {
            TableSource::Named(name) => {
                if let Some((_, columns)) = ctx.ctes.iter().rev().find(|(n, _)| n == name).cloned()
                {
                    (
                        PhysicalPlan::CteScan {
                            name: name.clone(),
                            alias: item.alias.clone(),
                            columns: columns.clone(),
                        },
                        columns,
                    )
                } else if let Some(columns) = self.catalog.table_columns(name) {
                    (
                        PhysicalPlan::TableScan {
                            table: name.clone(),
                            alias: item.alias.clone(),
                            columns: columns.clone(),
                            estimated_rows: self.catalog.table_rows(name),
                        },
                        columns,
                    )
                } else {
                    return Err(EngineError::NoSuchTable(name.clone()));
                }
            }
            TableSource::Subquery(q) => {
                let sub = self.plan_query(q, ctx)?;
                let columns = sub.output_columns();
                (
                    PhysicalPlan::SubqueryScan {
                        input: Box::new(sub),
                        alias: item.alias.clone(),
                    },
                    columns,
                )
            }
        };
        Ok((plan, item.alias.clone(), columns))
    }

    /// Plan a correlated subquery: the enclosing schema becomes an outer
    /// frame its column references may resolve against.
    fn plan_subquery(
        &self,
        query: &Query,
        ctx: &mut PlanCtx,
        schema: &[SchemaCol],
    ) -> Result<PhysicalPlan, EngineError> {
        ctx.outer.push(schema.to_vec());
        let plan = self.plan_query(query, ctx);
        ctx.outer.pop();
        plan
    }

    /// Resolve a scalar expression against the node's input schema, falling
    /// back to the enclosing queries' schemas for correlated references.
    fn resolve(
        &self,
        expr: &Expr,
        ctx: &mut PlanCtx,
        schema: &[SchemaCol],
        rn: Option<&RnMap<'_>>,
    ) -> Result<VExpr, EngineError> {
        match expr {
            Expr::Column { table, column } => self.resolve_column(table, column, ctx, schema),
            Expr::Literal(v) => Ok(VExpr::Lit(v.clone())),
            Expr::Param(name) => Ok(VExpr::Param(name.clone())),
            Expr::BinOp { op, left, right } => Ok(VExpr::BinOp {
                op: *op,
                left: Box::new(self.resolve(left, ctx, schema, rn)?),
                right: Box::new(self.resolve(right, ctx, schema, rn)?),
            }),
            Expr::Not(inner) => Ok(VExpr::Not(Box::new(self.resolve(inner, ctx, schema, rn)?))),
            Expr::Exists(q) => Ok(VExpr::Exists(Box::new(self.plan_subquery(q, ctx, schema)?))),
            Expr::RowNumber { order_by } => {
                let rn = rn.ok_or_else(|| {
                    EngineError::TypeError(
                        "ROW_NUMBER is only allowed in the select list".to_string(),
                    )
                })?;
                let idx =
                    rn.specs.iter().position(|s| s == order_by).ok_or_else(|| {
                        EngineError::TypeError("unplanned ROW_NUMBER".to_string())
                    })?;
                Ok(VExpr::Col {
                    index: rn.base + idx,
                    alias: None,
                    column: format!("#rn{}", idx),
                })
            }
        }
    }

    fn resolve_column(
        &self,
        table: &Option<String>,
        column: &str,
        ctx: &PlanCtx,
        schema: &[SchemaCol],
    ) -> Result<VExpr, EngineError> {
        match table {
            Some(alias) => {
                if schema.iter().any(|(a, _)| a.as_deref() == Some(alias)) {
                    return match schema
                        .iter()
                        .position(|(a, c)| a.as_deref() == Some(alias) && c == column)
                    {
                        Some(index) => Ok(VExpr::Col {
                            index,
                            alias: Some(alias.clone()),
                            column: column.to_string(),
                        }),
                        None => Err(EngineError::UnknownColumn {
                            qualifier: Some(alias.clone()),
                            name: column.to_string(),
                        }),
                    };
                }
                for outer in ctx.outer.iter().rev() {
                    if outer.iter().any(|(a, _)| a.as_deref() == Some(alias)) {
                        return if outer
                            .iter()
                            .any(|(a, c)| a.as_deref() == Some(alias) && c == column)
                        {
                            Ok(VExpr::Outer {
                                table: Some(alias.clone()),
                                column: column.to_string(),
                            })
                        } else {
                            Err(EngineError::UnknownColumn {
                                qualifier: Some(alias.clone()),
                                name: column.to_string(),
                            })
                        };
                    }
                }
                Err(EngineError::UnknownAlias(alias.clone()))
            }
            None => {
                // Mirror the interpreter: an unqualified name must be unique
                // across the current schema *and* every enclosing frame.
                let local: Vec<usize> = schema
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, c))| c == column)
                    .map(|(i, _)| i)
                    .collect();
                let outer_hits: usize = ctx
                    .outer
                    .iter()
                    .map(|frame| frame.iter().filter(|(_, c)| c == column).count())
                    .sum();
                if local.len() + outer_hits > 1 {
                    return Err(EngineError::AmbiguousColumn(column.to_string()));
                }
                if let Some(&index) = local.first() {
                    return Ok(VExpr::Col {
                        index,
                        alias: schema[index].0.clone(),
                        column: column.to_string(),
                    });
                }
                if outer_hits == 1 {
                    return Ok(VExpr::Outer {
                        table: None,
                        column: column.to_string(),
                    });
                }
                Err(EngineError::UnknownColumn {
                    qualifier: None,
                    name: column.to_string(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Query, Select};
    use crate::storage::ColumnType;

    fn catalog() -> SchemaCatalog {
        SchemaCatalog::new(vec![
            TableDef::new(
                "employees",
                vec![
                    ("id", ColumnType::Int),
                    ("dept", ColumnType::Text),
                    ("name", ColumnType::Text),
                    ("salary", ColumnType::Int),
                ],
            ),
            TableDef::new(
                "departments",
                vec![("id", ColumnType::Int), ("name", ColumnType::Text)],
            ),
        ])
    }

    #[test]
    fn equi_joins_plan_as_hash_joins() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("d", "name"), "dept")
                .item(Expr::col("e", "name"), "emp")
                .from_named("departments", "d")
                .from_named("employees", "e")
                .filter(Expr::eq(Expr::col("d", "name"), Expr::col("e", "dept"))),
        );
        let plan = plan_query(&q, &catalog()).unwrap();
        let rendered = plan.to_string();
        assert!(rendered.contains("HashJoin"), "{}", rendered);
        assert!(rendered.contains("d.name = e.dept"), "{}", rendered);
        assert_eq!(plan.output_columns(), vec!["dept", "emp"]);
    }

    #[test]
    fn cross_products_plan_as_nested_loops() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("a", "id"), "x")
                .from_named("employees", "a")
                .from_named("employees", "b"),
        );
        let plan = plan_query(&q, &catalog()).unwrap();
        assert!(plan.to_string().contains("NestedLoopJoin"));
    }

    #[test]
    fn single_table_predicates_plan_as_filters() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "name"), "name")
                .from_named("employees", "e")
                .filter(Expr::binop(
                    BinOp::Gt,
                    Expr::col("e", "salary"),
                    Expr::lit(10_000),
                )),
        );
        let plan = plan_query(&q, &catalog()).unwrap();
        let rendered = plan.to_string();
        assert!(
            rendered.contains("Filter (e.salary > 10000)"),
            "{}",
            rendered
        );
    }

    #[test]
    fn exists_conjuncts_plan_as_semi_joins() {
        let sub = Query::select(
            Select::new()
                .item(Expr::lit(1), "one")
                .from_named("departments", "d")
                .filter(Expr::eq(Expr::col("d", "name"), Expr::col("e", "dept"))),
        );
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "name"), "name")
                .from_named("employees", "e")
                .filter(Expr::not(Expr::Exists(Box::new(sub)))),
        );
        let plan = plan_query(&q, &catalog()).unwrap();
        let rendered = plan.to_string();
        assert!(rendered.contains("ExistsSemiJoin anti"), "{}", rendered);
        assert!(rendered.contains("outer(e.dept)"), "{}", rendered);
    }

    #[test]
    fn build_side_prefers_the_smaller_cardinality() {
        let mut storage = Storage::new();
        storage
            .create_table(TableDef::new("big", vec![("k", ColumnType::Int)]))
            .unwrap();
        storage
            .create_table(TableDef::new("small", vec![("k", ColumnType::Int)]))
            .unwrap();
        for i in 0..50 {
            storage.insert("big", vec![SqlValue::Int(i)]).unwrap();
        }
        storage.insert("small", vec![SqlValue::Int(1)]).unwrap();

        // big ⋈ small: the incoming (right) side is smaller — build right.
        let q = Query::select(
            Select::new()
                .item(Expr::col("b", "k"), "k")
                .from_named("big", "b")
                .from_named("small", "s")
                .filter(Expr::eq(Expr::col("b", "k"), Expr::col("s", "k"))),
        );
        assert!(plan_query(&q, &storage)
            .unwrap()
            .to_string()
            .contains("build=right"));

        // small ⋈ big: the accumulated (left) side is smaller — build left.
        let q = Query::select(
            Select::new()
                .item(Expr::col("b", "k"), "k")
                .from_named("small", "s")
                .from_named("big", "b")
                .filter(Expr::eq(Expr::col("b", "k"), Expr::col("s", "k"))),
        );
        assert!(plan_query(&q, &storage)
            .unwrap()
            .to_string()
            .contains("build=left"));
    }

    #[test]
    fn unknown_tables_and_columns_fail_at_plan_time() {
        let q = Query::select(
            Select::new()
                .item(Expr::lit(1), "x")
                .from_named("missing", "m"),
        );
        assert!(matches!(
            plan_query(&q, &catalog()),
            Err(EngineError::NoSuchTable(_))
        ));
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "missing"), "x")
                .from_named("employees", "e"),
        );
        assert!(matches!(
            plan_query(&q, &catalog()),
            Err(EngineError::UnknownColumn { .. })
        ));
    }
}
