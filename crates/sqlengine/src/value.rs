//! Flat SQL values.
//!
//! The engine only needs the base types that λNRC tables may contain
//! (integers, booleans, strings) plus `NULL`, which the natural-index scheme
//! uses to pad key columns of heterogeneous unions.
//!
//! Strings are stored as `Arc<str>`: cloning a value — which the columnar
//! transposes, hash-join build keys and result gathering all do per row — is
//! a reference-count bump instead of a heap copy, and values stay `Send +
//! Sync` so batches can be shared across threads.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single SQL scalar value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SqlValue {
    /// `NULL`. Ordered before every non-null value (as with `NULLS FIRST`).
    Null,
    Bool(bool),
    Int(i64),
    Str(Arc<str>),
}

impl SqlValue {
    /// Build a string value.
    pub fn str<S: Into<Arc<str>>>(s: S) -> SqlValue {
        SqlValue::Str(s.into())
    }

    /// Is this `NULL`?
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            SqlValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer content, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            SqlValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            SqlValue::Str(s) => Some(&s[..]),
            _ => None,
        }
    }

    /// SQL equality: `NULL` is not equal to anything (three-valued logic is
    /// simplified to `false`, which is what `WHERE` needs).
    pub fn sql_eq(&self, other: &SqlValue) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self == other
    }

    /// Total ordering used by `ORDER BY` and `ROW_NUMBER`: nulls first, then
    /// booleans, integers and strings; values of different runtime type are
    /// ordered by type rank (this never happens for well-typed queries but
    /// keeps sorting total).
    pub fn sql_cmp(&self, other: &SqlValue) -> Ordering {
        fn rank(v: &SqlValue) -> u8 {
            match v {
                SqlValue::Null => 0,
                SqlValue::Bool(_) => 1,
                SqlValue::Int(_) => 2,
                SqlValue::Str(_) => 3,
            }
        }
        match (self, other) {
            (SqlValue::Bool(a), SqlValue::Bool(b)) => a.cmp(b),
            (SqlValue::Int(a), SqlValue::Int(b)) => a.cmp(b),
            (SqlValue::Str(a), SqlValue::Str(b)) => a.cmp(b),
            (SqlValue::Null, SqlValue::Null) => Ordering::Equal,
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// The SQL type name of this value, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            SqlValue::Null => "null",
            SqlValue::Bool(_) => "boolean",
            SqlValue::Int(_) => "integer",
            SqlValue::Str(_) => "text",
        }
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Null => write!(f, "NULL"),
            SqlValue::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            SqlValue::Int(i) => write!(f, "{}", i),
            SqlValue::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

impl From<i64> for SqlValue {
    fn from(i: i64) -> Self {
        SqlValue::Int(i)
    }
}

impl From<bool> for SqlValue {
    fn from(b: bool) -> Self {
        SqlValue::Bool(b)
    }
}

impl From<&str> for SqlValue {
    fn from(s: &str) -> Self {
        SqlValue::Str(Arc::from(s))
    }
}

impl From<String> for SqlValue {
    fn from(s: String) -> Self {
        SqlValue::Str(Arc::from(s))
    }
}

impl From<Arc<str>> for SqlValue {
    fn from(s: Arc<str>) -> Self {
        SqlValue::Str(s)
    }
}

/// A row is a vector of scalar values, positionally matched to a row schema.
pub type Row = Vec<SqlValue>;

/// Values for a query's named placeholders (`:name`), keyed by name. Passed
/// to `Engine::execute_plan_bound` when executing a parameterized plan.
pub type ParamValues = std::collections::BTreeMap<String, SqlValue>;

/// Lexicographic row comparison under [`SqlValue::sql_cmp`], used by
/// `ORDER BY` and `ROW_NUMBER` in both the interpreter and the vectorized
/// executor.
pub fn compare_rows(a: &[SqlValue], b: &[SqlValue]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let c = x.sql_cmp(y);
        if c != Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_not_equal_to_anything() {
        assert!(!SqlValue::Null.sql_eq(&SqlValue::Null));
        assert!(!SqlValue::Null.sql_eq(&SqlValue::Int(1)));
        assert!(SqlValue::Int(1).sql_eq(&SqlValue::Int(1)));
    }

    #[test]
    fn ordering_puts_nulls_first() {
        assert_eq!(SqlValue::Null.sql_cmp(&SqlValue::Int(-100)), Ordering::Less);
        assert_eq!(SqlValue::Int(1).sql_cmp(&SqlValue::Int(2)), Ordering::Less);
        assert_eq!(
            SqlValue::str("a").sql_cmp(&SqlValue::str("b")),
            Ordering::Less
        );
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(SqlValue::str("it's").to_string(), "'it''s'");
        assert_eq!(SqlValue::Bool(true).to_string(), "TRUE");
        assert_eq!(SqlValue::Null.to_string(), "NULL");
    }

    #[test]
    fn conversions() {
        assert_eq!(SqlValue::from(3i64), SqlValue::Int(3));
        assert_eq!(SqlValue::from(true), SqlValue::Bool(true));
        assert_eq!(SqlValue::from("x"), SqlValue::str("x"));
    }
}
