//! Abstract syntax for the SQL:1999 subset emitted by the shredding
//! translation (Section 7 of the paper).
//!
//! The grammar mirrors the paper's final target language:
//!
//! ```text
//! Query terms    L ::= (union all) C⃗
//! Comprehensions C ::= with q as (S) C | S'
//! Subqueries     S ::= select R from G⃗ where X
//! Inner terms    N ::= X | row_number() over (order by X⃗)
//! Base terms     X ::= x.ℓ | c(X⃗) | empty L
//! ```
//!
//! plus `ORDER BY`, `DISTINCT` and `EXCEPT ALL`, which the baselines
//! (loop-lifting, Van den Bussche) and the flat-query benchmark need.

use crate::value::SqlValue;
use std::fmt;

/// A complete query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A plain `SELECT`.
    Select(Box<Select>),
    /// `q1 UNION ALL q2 UNION ALL …` (bag union, preserving multiplicity).
    UnionAll(Vec<Query>),
    /// `q1 EXCEPT ALL q2` (bag difference); used by flat benchmark queries.
    ExceptAll(Box<Query>, Box<Query>),
    /// `WITH q AS (SELECT …) body` — a let-bound subquery.
    With {
        name: String,
        definition: Box<Select>,
        body: Box<Query>,
    },
}

impl Query {
    /// Wrap a select in a query.
    pub fn select(s: Select) -> Query {
        Query::Select(Box::new(s))
    }

    /// Union of several queries; a singleton list collapses to the query
    /// itself and an empty list is rejected by the executor.
    pub fn union_all(mut qs: Vec<Query>) -> Query {
        if qs.len() == 1 {
            qs.pop().expect("length checked")
        } else {
            Query::UnionAll(qs)
        }
    }

    /// `WITH name AS (definition) body`.
    pub fn with(name: &str, definition: Select, body: Query) -> Query {
        Query::With {
            name: name.to_string(),
            definition: Box::new(definition),
            body: Box::new(body),
        }
    }

    /// The output column names of the query (taken from the first branch).
    pub fn output_columns(&self) -> Vec<String> {
        match self {
            Query::Select(s) => s.items.iter().map(|i| i.alias.clone()).collect(),
            Query::UnionAll(qs) => qs.first().map(Query::output_columns).unwrap_or_default(),
            Query::ExceptAll(l, _) => l.output_columns(),
            Query::With { body, .. } => body.output_columns(),
        }
    }

    /// Count the SELECT blocks in the query — a rough complexity measure
    /// reported by the experiments harness.
    pub fn select_count(&self) -> usize {
        match self {
            Query::Select(s) => {
                1 + s
                    .items
                    .iter()
                    .map(|i| i.expr.subquery_count())
                    .sum::<usize>()
                    + s.where_clause
                        .as_ref()
                        .map(|w| w.subquery_count())
                        .unwrap_or(0)
            }
            Query::UnionAll(qs) => qs.iter().map(Query::select_count).sum(),
            Query::ExceptAll(l, r) => l.select_count() + r.select_count(),
            Query::With {
                definition, body, ..
            } => Query::Select(definition.clone()).select_count() + body.select_count(),
        }
    }
}

/// A `SELECT … FROM … WHERE … ORDER BY …` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    /// `DISTINCT`? (used only by set-semantics baselines).
    pub distinct: bool,
    /// The projection list.
    pub items: Vec<SelectItem>,
    /// The `FROM` clause.
    pub from: Vec<FromItem>,
    /// The `WHERE` clause.
    pub where_clause: Option<Expr>,
    /// The final `ORDER BY` (used when a deterministic output order is
    /// required, e.g. for loop-lifting's list semantics).
    pub order_by: Vec<Expr>,
}

impl Select {
    /// An empty select to be filled in builder style.
    pub fn new() -> Select {
        Select::default()
    }

    /// Add a projection item `expr AS alias`.
    pub fn item(mut self, expr: Expr, alias: &str) -> Select {
        self.items.push(SelectItem {
            expr,
            alias: alias.to_string(),
        });
        self
    }

    /// Add a `FROM` item `source AS alias`.
    pub fn from_item(mut self, source: TableSource, alias: &str) -> Select {
        self.from.push(FromItem {
            source,
            alias: alias.to_string(),
        });
        self
    }

    /// Add a `FROM` item over a stored table or WITH-bound name.
    pub fn from_named(self, name: &str, alias: &str) -> Select {
        self.from_item(TableSource::Named(name.to_string()), alias)
    }

    /// Set the `WHERE` clause.
    pub fn filter(mut self, expr: Expr) -> Select {
        self.where_clause = Some(expr);
        self
    }

    /// Set `DISTINCT`.
    pub fn distinct(mut self) -> Select {
        self.distinct = true;
        self
    }

    /// Append an `ORDER BY` key.
    pub fn order_by(mut self, expr: Expr) -> Select {
        self.order_by.push(expr);
        self
    }
}

/// One projection item `expr AS alias`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: String,
}

/// One `FROM` item `source AS alias`.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    pub source: TableSource,
    pub alias: String,
}

/// A data source in `FROM`: a stored table or WITH-bound query referenced by
/// name, or an inline subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    Named(String),
    Subquery(Box<Query>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
}

impl BinOp {
    /// SQL spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Neq => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Concat => "||",
        }
    }
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference `alias.column` (or bare `column`).
    Column {
        table: Option<String>,
        column: String,
    },
    /// A literal value.
    Literal(SqlValue),
    /// A named placeholder `:name` — a bind variable whose value is supplied
    /// when the query (or its compiled plan) is executed.
    Param(String),
    /// A binary operation.
    BinOp {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Boolean negation.
    Not(Box<Expr>),
    /// `EXISTS (subquery)`, possibly correlated with the enclosing query.
    Exists(Box<Query>),
    /// `ROW_NUMBER() OVER (ORDER BY keys)`.
    RowNumber { order_by: Vec<Expr> },
}

impl Expr {
    /// `alias.column`.
    pub fn col(table: &str, column: &str) -> Expr {
        Expr::Column {
            table: Some(table.to_string()),
            column: column.to_string(),
        }
    }

    /// A bare column reference.
    pub fn bare(column: &str) -> Expr {
        Expr::Column {
            table: None,
            column: column.to_string(),
        }
    }

    /// A literal.
    pub fn lit<V: Into<SqlValue>>(v: V) -> Expr {
        Expr::Literal(v.into())
    }

    /// A named placeholder `:name`.
    pub fn param(name: &str) -> Expr {
        Expr::Param(name.to_string())
    }

    /// `left op right`.
    pub fn binop(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::BinOp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Equality.
    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binop(BinOp::Eq, left, right)
    }

    /// Conjunction.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binop(BinOp::And, left, right)
    }

    /// Disjunction.
    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binop(BinOp::Or, left, right)
    }

    /// Negation. (A constructor taking the operand by value, not a `Not`
    /// impl for `Expr` — the AST builder API is all free-standing.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// Fold a conjunction over the given expressions (`TRUE` when empty).
    pub fn conj<I: IntoIterator<Item = Expr>>(exprs: I) -> Expr {
        let mut it = exprs.into_iter();
        match it.next() {
            None => Expr::lit(true),
            Some(first) => it.fold(first, Expr::and),
        }
    }

    /// `ROW_NUMBER() OVER (ORDER BY keys)`.
    pub fn row_number(order_by: Vec<Expr>) -> Expr {
        Expr::RowNumber { order_by }
    }

    /// All aliases of columns mentioned in this expression (not descending
    /// into subqueries, which resolve their own scopes).
    pub fn referenced_aliases(&self) -> Vec<String> {
        fn go(e: &Expr, acc: &mut Vec<String>) {
            match e {
                Expr::Column { table: Some(t), .. } => {
                    if !acc.contains(t) {
                        acc.push(t.clone());
                    }
                }
                Expr::Column { table: None, .. } | Expr::Literal(_) | Expr::Param(_) => {}
                Expr::BinOp { left, right, .. } => {
                    go(left, acc);
                    go(right, acc);
                }
                Expr::Not(inner) => go(inner, acc),
                Expr::Exists(_) => {}
                Expr::RowNumber { order_by } => order_by.iter().for_each(|k| go(k, acc)),
            }
        }
        let mut acc = Vec::new();
        go(self, &mut acc);
        acc
    }

    /// Does the expression contain a `ROW_NUMBER` call?
    pub fn contains_row_number(&self) -> bool {
        match self {
            Expr::RowNumber { .. } => true,
            Expr::BinOp { left, right, .. } => {
                left.contains_row_number() || right.contains_row_number()
            }
            Expr::Not(inner) => inner.contains_row_number(),
            _ => false,
        }
    }

    /// Number of nested subqueries (EXISTS bodies).
    pub fn subquery_count(&self) -> usize {
        match self {
            Expr::Exists(q) => q.select_count(),
            Expr::BinOp { left, right, .. } => left.subquery_count() + right.subquery_count(),
            Expr::Not(inner) => inner.subquery_count(),
            _ => 0,
        }
    }

    /// Does the expression reference a column without a table qualifier?
    /// (The executor and planner defer such predicates until every relation
    /// is bound, since the reference may resolve into any of them.)
    pub fn contains_unqualified_column(&self) -> bool {
        match self {
            Expr::Column { table: None, .. } => true,
            Expr::Column { .. } | Expr::Literal(_) | Expr::Param(_) => false,
            Expr::BinOp { left, right, .. } => {
                left.contains_unqualified_column() || right.contains_unqualified_column()
            }
            Expr::Not(inner) => inner.contains_unqualified_column(),
            Expr::Exists(_) => false,
            Expr::RowNumber { order_by } => order_by.iter().any(Expr::contains_unqualified_column),
        }
    }

    /// Does the expression contain an `EXISTS` subquery (at any depth)?
    pub fn contains_exists(&self) -> bool {
        match self {
            Expr::Exists(_) => true,
            Expr::BinOp { left, right, .. } => left.contains_exists() || right.contains_exists(),
            Expr::Not(inner) => inner.contains_exists(),
            _ => false,
        }
    }

    /// Split a conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<Expr> {
        match self {
            Expr::BinOp {
                op: BinOp::And,
                left,
                right,
            } => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            other => vec![other.clone()],
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::print_query(self))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::print_expr(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::and(
            Expr::and(Expr::lit(true), Expr::eq(Expr::bare("a"), Expr::lit(1))),
            Expr::lit(false),
        );
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn conj_of_empty_is_true() {
        assert_eq!(Expr::conj(vec![]), Expr::lit(true));
    }

    #[test]
    fn union_all_of_one_collapses() {
        let s = Select::new().item(Expr::lit(1), "x");
        let q = Query::union_all(vec![Query::select(s)]);
        assert!(matches!(q, Query::Select(_)));
    }

    #[test]
    fn output_columns_come_from_first_branch() {
        let s1 = Select::new()
            .item(Expr::lit(1), "a")
            .item(Expr::lit(2), "b");
        let s2 = Select::new()
            .item(Expr::lit(3), "a")
            .item(Expr::lit(4), "b");
        let q = Query::UnionAll(vec![Query::select(s1), Query::select(s2)]);
        assert_eq!(q.output_columns(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn referenced_aliases_are_collected() {
        let e = Expr::and(
            Expr::eq(Expr::col("x", "a"), Expr::col("y", "b")),
            Expr::eq(Expr::col("x", "c"), Expr::lit(1)),
        );
        assert_eq!(
            e.referenced_aliases(),
            vec!["x".to_string(), "y".to_string()]
        );
    }

    #[test]
    fn row_number_detection() {
        assert!(Expr::row_number(vec![Expr::bare("a")]).contains_row_number());
        assert!(!Expr::lit(1).contains_row_number());
    }
}
