//! A parser for the SQL dialect emitted by [`crate::printer`].
//!
//! The parser exists so that (a) generated SQL text can be executed directly
//! (`Engine::execute_sql`), mimicking the paper's setup where Links ships SQL
//! strings to PostgreSQL, and (b) the printer/parser round trip can be tested:
//! `parse(print(q))` must evaluate to the same result as `q`.

use crate::ast::{BinOp, Expr, FromItem, Query, Select, SelectItem, TableSource};
use crate::error::EngineError;
use crate::value::SqlValue;

/// Parse a SQL string into a [`Query`].
pub fn parse_query(input: &str) -> Result<Query, EngineError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let q = parser.parse_query()?;
    parser.expect_eof()?;
    Ok(q)
}

/// Parse a SQL string into an expression (used in tests).
pub fn parse_expr(input: &str) -> Result<Expr, EngineError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let e = parser.parse_or()?;
    parser.expect_eof()?;
    Ok(e)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Str(String),
    Symbol(String),
    /// A named placeholder `:name`.
    Param(String),
}

fn tokenize(input: &str) -> Result<Vec<Token>, EngineError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let n = text
                .parse::<i64>()
                .map_err(|_| EngineError::Parse(format!("bad integer literal {}", text)))?;
            tokens.push(Token::Int(n));
        } else if c.is_alphabetic() || c == '_' || c == '#' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '#')
            {
                i += 1;
            }
            tokens.push(Token::Ident(chars[start..i].iter().collect()));
        } else if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= chars.len() {
                    return Err(EngineError::Parse(
                        "unterminated string literal".to_string(),
                    ));
                }
                if chars[i] == '\'' {
                    if i + 1 < chars.len() && chars[i + 1] == '\'' {
                        s.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    s.push(chars[i]);
                    i += 1;
                }
            }
            tokens.push(Token::Str(s));
        } else {
            // Multi-character symbols first.
            let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
            if two == "<>" || two == "<=" || two == ">=" || two == "||" {
                tokens.push(Token::Symbol(two));
                i += 2;
            } else if c == ':' {
                i += 1;
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                if start == i {
                    return Err(EngineError::Parse(
                        "expected a parameter name after ':'".to_string(),
                    ));
                }
                tokens.push(Token::Param(chars[start..i].iter().collect()));
            } else if "(),.=<>+-*/%".contains(c) {
                tokens.push(Token::Symbol(c.to_string()));
                i += 1;
            } else {
                return Err(EngineError::Parse(format!("unexpected character {:?}", c)));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), EngineError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(EngineError::Parse(format!(
                "expected keyword {}, found {:?}",
                kw,
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), EngineError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(EngineError::Parse(format!(
                "expected {:?}, found {:?}",
                sym,
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String, EngineError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(EngineError::Parse(format!(
                "expected identifier, found {:?}",
                other
            ))),
        }
    }

    fn expect_eof(&self) -> Result<(), EngineError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(EngineError::Parse(format!(
                "unexpected trailing input at {:?}",
                self.peek()
            )))
        }
    }

    /// query := atom (UNION ALL atom | EXCEPT ALL atom)*
    fn parse_query(&mut self) -> Result<Query, EngineError> {
        let first = self.parse_query_atom()?;
        let mut union_branches = vec![first];
        let mut result: Option<Query> = None;
        loop {
            if self.peek_keyword("union") {
                self.pos += 1;
                self.expect_keyword("all")?;
                let next = self.parse_query_atom()?;
                union_branches.push(next);
            } else if self.peek_keyword("except") {
                self.pos += 1;
                self.expect_keyword("all")?;
                let left = if union_branches.len() == 1 {
                    union_branches.pop().expect("nonempty")
                } else {
                    Query::UnionAll(std::mem::take(&mut union_branches))
                };
                let right = self.parse_query_atom()?;
                result = Some(Query::ExceptAll(Box::new(left), Box::new(right)));
                break;
            } else {
                break;
            }
        }
        match result {
            Some(q) => Ok(q),
            None => Ok(Query::union_all(union_branches)),
        }
    }

    /// atom := '(' query ')' | WITH name AS '(' select ')' atom | select
    fn parse_query_atom(&mut self) -> Result<Query, EngineError> {
        if self.eat_symbol("(") {
            let q = self.parse_query()?;
            self.expect_symbol(")")?;
            return Ok(q);
        }
        if self.eat_keyword("with") {
            let name = self.expect_ident()?;
            self.expect_keyword("as")?;
            self.expect_symbol("(")?;
            let def = self.parse_select()?;
            self.expect_symbol(")")?;
            let body = self.parse_query_atom()?;
            return Ok(Query::With {
                name,
                definition: Box::new(def),
                body: Box::new(body),
            });
        }
        Ok(Query::Select(Box::new(self.parse_select()?)))
    }

    fn parse_select(&mut self) -> Result<Select, EngineError> {
        self.expect_keyword("select")?;
        let mut select = Select::new();
        if self.eat_keyword("distinct") {
            select.distinct = true;
        }
        loop {
            let expr = self.parse_or()?;
            let alias = if self.eat_keyword("as") {
                self.expect_ident()?
            } else {
                // Derive an alias from a bare column reference.
                match &expr {
                    Expr::Column { column, .. } => column.clone(),
                    _ => format!("col{}", select.items.len() + 1),
                }
            };
            select.items.push(SelectItem { expr, alias });
            if !self.eat_symbol(",") {
                break;
            }
        }
        if self.eat_keyword("from") {
            loop {
                let source = if self.eat_symbol("(") {
                    let q = self.parse_query()?;
                    self.expect_symbol(")")?;
                    TableSource::Subquery(Box::new(q))
                } else {
                    TableSource::Named(self.expect_ident()?)
                };
                let alias = if self.eat_keyword("as") {
                    self.expect_ident()?
                } else if let Some(Token::Ident(s)) = self.peek() {
                    // Implicit alias, as in `FROM employees e` — but do not
                    // swallow keywords.
                    let lowered = s.to_ascii_lowercase();
                    if ["where", "order", "union", "except", "group"].contains(&lowered.as_str()) {
                        match &source {
                            TableSource::Named(n) => n.clone(),
                            TableSource::Subquery(_) => {
                                return Err(EngineError::Parse(
                                    "subquery in FROM requires an alias".to_string(),
                                ))
                            }
                        }
                    } else {
                        self.expect_ident()?
                    }
                } else {
                    match &source {
                        TableSource::Named(n) => n.clone(),
                        TableSource::Subquery(_) => {
                            return Err(EngineError::Parse(
                                "subquery in FROM requires an alias".to_string(),
                            ))
                        }
                    }
                };
                select.from.push(FromItem { source, alias });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        if self.eat_keyword("where") {
            select.where_clause = Some(self.parse_or()?);
        }
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                select.order_by.push(self.parse_or()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        Ok(select)
    }

    fn parse_or(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("or") {
            let right = self.parse_and()?;
            left = Expr::or(left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("and") {
            let right = self.parse_not()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, EngineError> {
        if self.eat_keyword("not") {
            let inner = self.parse_not()?;
            return Ok(Expr::not(inner));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, EngineError> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(Token::Symbol(s)) => match s.as_str() {
                "=" => Some(BinOp::Eq),
                "<>" => Some(BinOp::Neq),
                "<" => Some(BinOp::Lt),
                "<=" => Some(BinOp::Le),
                ">" => Some(BinOp::Gt),
                ">=" => Some(BinOp::Ge),
                _ => None,
            },
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let right = self.parse_additive()?;
                Ok(Expr::binop(op, left, right))
            }
            None => Ok(left),
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(s)) => match s.as_str() {
                    "+" => Some(BinOp::Add),
                    "-" => Some(BinOp::Sub),
                    "||" => Some(BinOp::Concat),
                    _ => None,
                },
                _ => None,
            };
            match op {
                Some(op) => {
                    self.pos += 1;
                    let right = self.parse_multiplicative()?;
                    left = Expr::binop(op, left, right);
                }
                None => return Ok(left),
            }
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.parse_primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(s)) => match s.as_str() {
                    "*" => Some(BinOp::Mul),
                    "/" => Some(BinOp::Div),
                    "%" => Some(BinOp::Mod),
                    _ => None,
                },
                _ => None,
            };
            match op {
                Some(op) => {
                    self.pos += 1;
                    let right = self.parse_primary()?;
                    left = Expr::binop(op, left, right);
                }
                None => return Ok(left),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, EngineError> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Expr::Literal(SqlValue::Int(n))),
            Some(Token::Str(s)) => Ok(Expr::Literal(SqlValue::str(s))),
            Some(Token::Param(name)) => Ok(Expr::Param(name)),
            Some(Token::Symbol(s)) if s == "(" => {
                let e = self.parse_or()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Symbol(s)) if s == "-" => {
                // Unary minus over an integer literal.
                match self.next() {
                    Some(Token::Int(n)) => Ok(Expr::Literal(SqlValue::Int(-n))),
                    other => Err(EngineError::Parse(format!(
                        "expected integer after unary minus, found {:?}",
                        other
                    ))),
                }
            }
            Some(Token::Ident(id)) => {
                let lowered = id.to_ascii_lowercase();
                match lowered.as_str() {
                    "true" => Ok(Expr::Literal(SqlValue::Bool(true))),
                    "false" => Ok(Expr::Literal(SqlValue::Bool(false))),
                    "null" => Ok(Expr::Literal(SqlValue::Null)),
                    "exists" => {
                        self.expect_symbol("(")?;
                        let q = self.parse_query()?;
                        self.expect_symbol(")")?;
                        Ok(Expr::Exists(Box::new(q)))
                    }
                    "row_number" => {
                        self.expect_symbol("(")?;
                        self.expect_symbol(")")?;
                        self.expect_keyword("over")?;
                        self.expect_symbol("(")?;
                        self.expect_keyword("order")?;
                        self.expect_keyword("by")?;
                        let mut keys = Vec::new();
                        loop {
                            keys.push(self.parse_or()?);
                            if !self.eat_symbol(",") {
                                break;
                            }
                        }
                        self.expect_symbol(")")?;
                        Ok(Expr::RowNumber { order_by: keys })
                    }
                    _ => {
                        if self.eat_symbol(".") {
                            let column = self.expect_ident()?;
                            Ok(Expr::col(&id, &column))
                        } else {
                            Ok(Expr::bare(&id))
                        }
                    }
                }
            }
            other => Err(EngineError::Parse(format!("unexpected token {:?}", other))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_query;

    #[test]
    fn parses_simple_select() {
        let q =
            parse_query("SELECT e.emp AS emp FROM employees AS e WHERE e.salary > 10000").unwrap();
        match &q {
            Query::Select(s) => {
                assert_eq!(s.items.len(), 1);
                assert_eq!(s.from.len(), 1);
                assert!(s.where_clause.is_some());
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn parses_union_all_and_except_all() {
        let q = parse_query(
            "(SELECT t.emp AS emp FROM tasks AS t) UNION ALL (SELECT e.emp AS emp FROM employees AS e)",
        )
        .unwrap();
        assert!(matches!(q, Query::UnionAll(ref v) if v.len() == 2));
        let q2 = parse_query(
            "(SELECT t.emp AS emp FROM tasks AS t) EXCEPT ALL (SELECT e.emp AS emp FROM employees AS e)",
        )
        .unwrap();
        assert!(matches!(q2, Query::ExceptAll(_, _)));
    }

    #[test]
    fn parses_with_and_row_number() {
        let sql = "WITH q AS (SELECT x.name AS i1_name, ROW_NUMBER() OVER (ORDER BY x.name) AS i2 FROM departments AS x) \
                   SELECT z.i2 AS i1_2 FROM q AS z";
        let q = parse_query(sql).unwrap();
        assert!(matches!(q, Query::With { .. }));
    }

    #[test]
    fn parses_exists_and_not() {
        let e = parse_expr("NOT (EXISTS (SELECT 1 AS one FROM tasks AS t WHERE t.emp = e.name))")
            .unwrap();
        assert!(matches!(e, Expr::Not(_)));
    }

    #[test]
    fn parses_string_escapes_and_booleans() {
        let e = parse_expr("'it''s' || 'fine'").unwrap();
        assert!(matches!(
            e,
            Expr::BinOp {
                op: BinOp::Concat,
                ..
            }
        ));
        assert_eq!(parse_expr("TRUE").unwrap(), Expr::lit(true));
        assert_eq!(parse_expr("NULL").unwrap(), Expr::Literal(SqlValue::Null));
    }

    #[test]
    fn operator_precedence_and_binds_tighter_than_or() {
        let e = parse_expr("a = 1 OR b = 2 AND c = 3").unwrap();
        match e {
            Expr::BinOp {
                op: BinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::BinOp { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn print_parse_round_trip_preserves_structure() {
        let sql = "WITH q AS (SELECT x.name AS n, ROW_NUMBER() OVER (ORDER BY x.name) AS i FROM departments AS x) \
                   (SELECT z.n AS n FROM q AS z WHERE (z.i > 1)) UNION ALL (SELECT y.dept AS n FROM employees AS y)";
        let q1 = parse_query(sql).unwrap();
        let printed = print_query(&q1);
        let q2 = parse_query(&printed).unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_query("SELEC x").is_err());
        assert!(parse_query("SELECT 'unterminated").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_query("SELECT 1 AS x EXTRA").is_err());
    }
}
