//! Rendering of SQL ASTs as SQL:1999 text.
//!
//! The output matches the dialect shown in Section 7 of the paper (and is
//! accepted by PostgreSQL): `WITH`, `UNION ALL`, `ROW_NUMBER() OVER (ORDER BY
//! …)`, `EXISTS`, qualified column references and literal constants.

use crate::ast::{Expr, FromItem, Query, Select, TableSource};

/// Render a query as SQL text.
pub fn print_query(q: &Query) -> String {
    let mut out = String::new();
    write_query(&mut out, q, 0);
    out
}

/// Render an expression as SQL text.
pub fn print_expr(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_query(out: &mut String, q: &Query, level: usize) {
    match q {
        Query::Select(s) => write_select(out, s, level),
        Query::UnionAll(qs) => {
            for (i, sub) in qs.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                    indent(out, level);
                    out.push_str("UNION ALL\n");
                }
                indent(out, level);
                out.push('(');
                out.push('\n');
                write_query(out, sub, level + 1);
                out.push('\n');
                indent(out, level);
                out.push(')');
            }
        }
        Query::ExceptAll(l, r) => {
            indent(out, level);
            out.push_str("(\n");
            write_query(out, l, level + 1);
            out.push('\n');
            indent(out, level);
            out.push_str(")\nEXCEPT ALL\n");
            indent(out, level);
            out.push_str("(\n");
            write_query(out, r, level + 1);
            out.push('\n');
            indent(out, level);
            out.push(')');
        }
        Query::With {
            name,
            definition,
            body,
        } => {
            indent(out, level);
            out.push_str("WITH ");
            out.push_str(name);
            out.push_str(" AS (\n");
            write_select(out, definition, level + 1);
            out.push('\n');
            indent(out, level);
            out.push_str(")\n");
            write_query(out, body, level);
        }
    }
}

fn write_select(out: &mut String, s: &Select, level: usize) {
    indent(out, level);
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in s.items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_expr(out, &item.expr);
        out.push_str(" AS ");
        out.push_str(&item.alias);
    }
    if !s.from.is_empty() {
        out.push('\n');
        indent(out, level);
        out.push_str("FROM ");
        for (i, f) in s.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_from(out, f, level);
        }
    }
    if let Some(w) = &s.where_clause {
        out.push('\n');
        indent(out, level);
        out.push_str("WHERE ");
        write_expr(out, w);
    }
    if !s.order_by.is_empty() {
        out.push('\n');
        indent(out, level);
        out.push_str("ORDER BY ");
        for (i, k) in s.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, k);
        }
    }
}

fn write_from(out: &mut String, f: &FromItem, level: usize) {
    match &f.source {
        TableSource::Named(n) => {
            out.push_str(n);
        }
        TableSource::Subquery(q) => {
            out.push_str("(\n");
            write_query(out, q, level + 1);
            out.push('\n');
            indent(out, level);
            out.push(')');
        }
    }
    out.push_str(" AS ");
    out.push_str(&f.alias);
}

fn write_expr(out: &mut String, e: &Expr) {
    match e {
        Expr::Column { table, column } => {
            if let Some(t) = table {
                out.push_str(t);
                out.push('.');
            }
            out.push_str(column);
        }
        Expr::Literal(v) => out.push_str(&v.to_string()),
        Expr::Param(name) => {
            out.push(':');
            out.push_str(name);
        }
        Expr::BinOp { op, left, right } => {
            out.push('(');
            write_expr(out, left);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            write_expr(out, right);
            out.push(')');
        }
        Expr::Not(inner) => {
            out.push_str("NOT (");
            write_expr(out, inner);
            out.push(')');
        }
        Expr::Exists(q) => {
            out.push_str("EXISTS (");
            let sub = print_query(q);
            out.push_str(&sub.replace('\n', " "));
            out.push(')');
        }
        Expr::RowNumber { order_by } => {
            out.push_str("ROW_NUMBER() OVER (ORDER BY ");
            for (i, k) in order_by.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, k);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Query, Select, TableSource};

    #[test]
    fn prints_simple_select() {
        let q = Query::select(
            Select::new()
                .item(Expr::col("e", "emp"), "emp")
                .from_named("employees", "e")
                .filter(Expr::binop(
                    BinOp::Gt,
                    Expr::col("e", "salary"),
                    Expr::lit(10000),
                )),
        );
        let sql = print_query(&q);
        assert!(sql.contains("SELECT e.emp AS emp"));
        assert!(sql.contains("FROM employees AS e"));
        assert!(sql.contains("WHERE (e.salary > 10000)"));
    }

    #[test]
    fn prints_with_row_number_and_union() {
        let inner = Select::new()
            .item(Expr::col("x", "name"), "i1_name")
            .item(Expr::row_number(vec![Expr::col("x", "name")]), "i2")
            .from_named("departments", "x");
        let outer = Select::new()
            .item(Expr::col("z", "i2"), "i1_2")
            .from_named("q", "z");
        let q = Query::UnionAll(vec![
            Query::with("q", inner.clone(), Query::select(outer.clone())),
            Query::with("q", inner, Query::select(outer)),
        ]);
        let sql = print_query(&q);
        assert!(sql.contains("WITH q AS ("));
        assert!(sql.contains("ROW_NUMBER() OVER (ORDER BY x.name)"));
        assert!(sql.contains("UNION ALL"));
    }

    #[test]
    fn prints_exists_and_not() {
        let sub = Query::select(
            Select::new()
                .item(Expr::lit(1), "one")
                .from_named("tasks", "t"),
        );
        let e = Expr::not(Expr::Exists(Box::new(sub)));
        let sql = print_expr(&e);
        assert!(sql.starts_with("NOT (EXISTS (SELECT 1 AS one"));
    }

    #[test]
    fn prints_subquery_in_from() {
        let inner = Query::select(Select::new().item(Expr::lit(1), "a"));
        let q = Query::select(
            Select::new()
                .item(Expr::col("s", "a"), "a")
                .from_item(TableSource::Subquery(Box::new(inner)), "s"),
        );
        let sql = print_query(&q);
        assert!(sql.contains(") AS s"));
    }
}
