//! The span model: pipeline stages, per-query profiles and the per-call
//! collector threaded through `prepare`/`execute_bound`.

use std::sync::Mutex;
use std::time::Instant;

/// One phase of the shredding pipeline. `prepare` produces the first six,
/// `execute_bound` the next three, and `Maintain` times the incremental
/// upkeep of a live subscription after a committed write batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    Typecheck,
    Normalise,
    Shred,
    Sqlgen,
    Plan,
    Verify,
    Execute,
    Decode,
    Stitch,
    Maintain,
}

impl Stage {
    pub const ALL: [Stage; 10] = [
        Stage::Typecheck,
        Stage::Normalise,
        Stage::Shred,
        Stage::Sqlgen,
        Stage::Plan,
        Stage::Verify,
        Stage::Execute,
        Stage::Decode,
        Stage::Stitch,
        Stage::Maintain,
    ];

    /// Name of the registry histogram this stage's spans feed, e.g.
    /// `"stage.execute"`. Static so recording does not allocate.
    pub fn metric_name(self) -> &'static str {
        match self {
            Stage::Typecheck => "stage.typecheck",
            Stage::Normalise => "stage.normalise",
            Stage::Shred => "stage.shred",
            Stage::Sqlgen => "stage.sqlgen",
            Stage::Plan => "stage.plan",
            Stage::Verify => "stage.verify",
            Stage::Execute => "stage.execute",
            Stage::Decode => "stage.decode",
            Stage::Stitch => "stage.stitch",
            Stage::Maintain => "stage.maintain",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Stage::Typecheck => "typecheck",
            Stage::Normalise => "normalise",
            Stage::Shred => "shred",
            Stage::Sqlgen => "sqlgen",
            Stage::Plan => "plan",
            Stage::Verify => "verify",
            Stage::Execute => "execute",
            Stage::Decode => "decode",
            Stage::Stitch => "stitch",
            Stage::Maintain => "maintain",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One timed phase of one query. A profile may contain several spans for the
/// same stage (e.g. one `Execute` span per shredded SQL stage); readers sum
/// them per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub stage: Stage,
    pub nanos: u64,
}

/// Accumulated actuals for one physical-plan node of one shredded stage.
/// `node` is the node's pre-order index inside that stage's plan tree;
/// `nanos` is inclusive of the node's children (Postgres-style actual time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorProfile {
    /// Index of the shredded SQL stage this node belongs to.
    pub stage: usize,
    /// Pre-order index of the node within the stage's plan tree.
    pub node: usize,
    /// Operator kind, e.g. `"HashJoin"`.
    pub op: String,
    /// Number of times the node was executed (correlated subplans run once
    /// per outer row, so this can exceed 1).
    pub batches: u64,
    /// Total rows fed in by direct children across all executions.
    pub rows_in: u64,
    /// Total rows produced across all executions.
    pub rows_out: u64,
    /// Wall time, inclusive of children.
    pub nanos: u64,
}

/// A finished per-query profile, as delivered to the [`crate::ObsSink`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryProfile {
    /// Short human-readable identifier for the query (truncated plan key).
    pub query: String,
    /// Backend that executed it.
    pub backend: String,
    /// Whether the plan came from the session plan cache.
    pub cached: bool,
    /// Whether per-operator profiling was enabled for this execution.
    pub profiled: bool,
    pub spans: Vec<Span>,
    pub operators: Vec<OperatorProfile>,
    /// End-to-end wall time of the execute call.
    pub total_nanos: u64,
}

impl QueryProfile {
    /// Sum of all spans recorded for `stage`, in nanoseconds.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.nanos)
            .sum()
    }
}

/// What the morsel-parallel executor did during one query: how many morsels
/// were dispatched to the worker pool, the peak number of simultaneously
/// busy workers, and each morsel's wall time (feeds the `morsel` latency
/// histogram). All zeros / empty for a `workers(1)` execution, which never
/// enters the parallel executor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MorselStats {
    pub dispatched: u64,
    pub peak_workers: u64,
    pub morsel_nanos: Vec<u64>,
}

impl MorselStats {
    pub fn is_empty(&self) -> bool {
        self.dispatched == 0 && self.morsel_nanos.is_empty()
    }

    /// Fold another execution's stats in (stage-parallel packages record
    /// one `MorselStats` per stage).
    pub fn merge(&mut self, other: &MorselStats) {
        self.dispatched += other.dispatched;
        self.peak_workers = self.peak_workers.max(other.peak_workers);
        self.morsel_nanos.extend_from_slice(&other.morsel_nanos);
    }
}

/// Per-call span collector. One `QueryObs` lives for the duration of a single
/// `prepare` or `execute` call and is threaded by shared reference through
/// the pipeline; the mutexes are uncontended (single caller) and exist only
/// so the collector can be used behind `&self` trait interfaces.
#[derive(Debug, Default)]
pub struct QueryObs {
    profile_ops: bool,
    spans: Mutex<Vec<Span>>,
    operators: Mutex<Vec<OperatorProfile>>,
    morsels: Mutex<MorselStats>,
}

impl QueryObs {
    pub fn new(profile_ops: bool) -> Self {
        Self {
            profile_ops,
            ..Self::default()
        }
    }

    /// Whether per-operator (plan-node) profiling is requested for this call.
    pub fn profile_operators(&self) -> bool {
        self.profile_ops
    }

    pub fn record(&self, stage: Stage, nanos: u64) {
        self.spans
            .lock()
            .expect("obs lock")
            .push(Span { stage, nanos });
    }

    /// Time `f` and record the elapsed nanoseconds as a span for `stage`.
    pub fn time<R>(&self, stage: Stage, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(
            stage,
            start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
        out
    }

    pub fn push_operators(&self, ops: impl IntoIterator<Item = OperatorProfile>) {
        self.operators.lock().expect("obs lock").extend(ops);
    }

    /// Fold one parallel execution's morsel tally into this call's stats
    /// (called once per executed stage; `workers(1)` stages record nothing).
    pub fn record_morsels(&self, stats: &MorselStats) {
        if !stats.is_empty() {
            self.morsels.lock().expect("obs lock").merge(stats);
        }
    }

    /// Drain the collected spans and operator actuals.
    pub fn take(&self) -> (Vec<Span>, Vec<OperatorProfile>) {
        let spans = std::mem::take(&mut *self.spans.lock().expect("obs lock"));
        let ops = std::mem::take(&mut *self.operators.lock().expect("obs lock"));
        (spans, ops)
    }

    /// Drain the morsel stats collected by parallel executions.
    pub fn take_morsels(&self) -> MorselStats {
        std::mem::take(&mut *self.morsels.lock().expect("obs lock"))
    }
}

/// Time `f` under `stage` when a collector is present; otherwise just run it.
/// This keeps call sites branch-cheap: with `None` the only cost is the
/// `Option` check.
pub fn time_maybe<R>(obs: Option<&QueryObs>, stage: Stage, f: impl FnOnce() -> R) -> R {
    match obs {
        Some(o) => o.time(stage, f),
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_accumulates_spans() {
        let obs = QueryObs::new(true);
        assert!(obs.profile_operators());
        obs.record(Stage::Execute, 10);
        let out = obs.time(Stage::Execute, || 42);
        assert_eq!(out, 42);
        obs.push_operators([OperatorProfile {
            stage: 0,
            node: 0,
            op: "TableScan".into(),
            batches: 1,
            rows_in: 0,
            rows_out: 5,
            nanos: 100,
        }]);
        let (spans, ops) = obs.take();
        assert_eq!(spans.len(), 2);
        assert_eq!(ops.len(), 1);
        let profile = QueryProfile {
            spans,
            ..Default::default()
        };
        assert!(profile.stage_nanos(Stage::Execute) >= 10);
        assert_eq!(profile.stage_nanos(Stage::Stitch), 0);
    }
}
