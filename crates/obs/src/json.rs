//! Minimal JSON value model, renderer and recursive-descent parser.
//!
//! The workspace carries no external dependencies, so snapshot serialisation
//! is hand-rolled. Numbers are kept as their source text so 64-bit integer
//! values round-trip exactly (no detour through `f64`).

use std::fmt::Write as _;

/// A parsed or to-be-rendered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// The number's canonical source text (e.g. `"42"`, `"-1"`, `"0.5"`).
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an ordered key/value list (insertion order is preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn from_u64(v: u64) -> Self {
        Json::Num(v.to_string())
    }

    pub fn from_i64(v: i64) -> Self {
        Json::Num(v.to_string())
    }

    pub fn from_f64(v: f64) -> Self {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Accepts exactly one top-level value surrounded by
/// optional whitespace.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(format!("expected number at byte {start}"));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Validate it actually parses as a number before accepting the token.
    text.parse::<f64>()
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
    Ok(Json::Num(text.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar. Multi-byte sequences are copied
                // verbatim (input is a &str, so they are valid).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = Json::Obj(vec![
            ("a".into(), Json::from_u64(u64::MAX)),
            ("b".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("c".into(), Json::Str("he said \"hi\"\n".into())),
            ("d".into(), Json::from_i64(-42)),
        ]);
        let text = v.render();
        let back = parse(&text).expect("parse");
        assert_eq!(v, back);
        assert_eq!(back.get("a").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn parses_whitespace_and_floats() {
        let back = parse(" { \"x\" : [ 1.5 , -2 ] } ").expect("parse");
        let arr = back.get("x").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.5));
        assert_eq!(arr[1].as_i64(), Some(-2));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }
}
