//! Lock-free counters, gauges and log-linear latency histograms.
//!
//! The registry itself uses an `RwLock` only to intern instrument names on
//! first use; every `inc`/`set`/`record` afterwards is a handful of atomic
//! operations on `Arc`-shared instruments, so recording never takes a lock
//! and the registry is count-exact under concurrent writers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::json::{self, Json};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge (signed, so deltas can go negative).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of significand bits per power-of-two group: 32 sub-buckets, so the
/// relative quantile error from bucketing is at most ~3% (half a bucket).
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Values 0..32 get exact unit buckets; every further power of two up to
/// 2^63 gets 32 log-linear sub-buckets: (64 - 5 + 1) * 32 buckets in total.
const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
        ((msb - SUB_BITS + 1) as usize) * SUB as usize + sub
    }
}

/// Midpoint of the value range covered by bucket `i` (the representative
/// value reported for quantiles falling in that bucket).
fn bucket_value(i: usize) -> u64 {
    if i < SUB as usize {
        i as u64
    } else {
        let group = (i / SUB as usize) as u32; // >= 1
        let sub = (i % SUB as usize) as u64;
        let msb = group + SUB_BITS - 1;
        let width = 1u64 << (msb - SUB_BITS);
        (1u64 << msb) + sub * width + width / 2
    }
}

/// A lock-free log-linear histogram of `u64` samples (nanoseconds by
/// convention). Recording is three relaxed atomic RMW operations; quantile
/// readout walks a snapshot of the buckets. `count`, `sum`, `min` and `max`
/// are tracked exactly; quantiles are exact below 32 and within ~3% above.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, AtomicU64::default);
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Time one invocation of `f`, record the elapsed nanoseconds, and return
    /// `f`'s result.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record_duration(start.elapsed());
        out
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// The value at quantile `q` in `[0, 1]` (0 when empty). Exact for
    /// samples below 32ns; within one log-linear sub-bucket (~3%) otherwise.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Clamp the representative midpoint into the observed range
                // so p100 never exceeds the true max.
                return bucket_value(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64 / 1e6
        }
    }
}

/// Shared registry of named instruments. Cheap to clone via `Arc`; the name
/// maps are `RwLock`-guarded but only touched when an instrument is first
/// created (or looked up by name) — the hot recording path is lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().expect("metrics lock").get(name) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().expect("metrics lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().expect("metrics lock").get(name) {
            return Arc::clone(g);
        }
        let mut map = self.gauges.write().expect("metrics lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().expect("metrics lock").get(name) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().expect("metrics lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Record `nanos` into the histogram named `name`.
    pub fn record(&self, name: &str, nanos: u64) {
        self.histogram(name).record(nanos);
    }

    /// Snapshot every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time, JSON-serialisable view of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    pub fn to_json(&self) -> String {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::from_u64(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::from_i64(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::from_u64(h.count)),
                            ("sum".into(), Json::from_u64(h.sum)),
                            ("min".into(), Json::from_u64(h.min)),
                            ("max".into(), Json::from_u64(h.max)),
                            ("p50".into(), Json::from_u64(h.p50)),
                            ("p95".into(), Json::from_u64(h.p95)),
                            ("p99".into(), Json::from_u64(h.p99)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ])
        .render()
    }

    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = json::parse(text)?;
        let counters = root
            .get("counters")
            .and_then(Json::as_obj)
            .ok_or("missing counters object")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), v.as_u64().ok_or("counter not a number")?)))
            .collect::<Result<Vec<_>, String>>()?;
        let gauges = root
            .get("gauges")
            .and_then(Json::as_obj)
            .ok_or("missing gauges object")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), v.as_i64().ok_or("gauge not a number")?)))
            .collect::<Result<Vec<_>, String>>()?;
        let histograms = root
            .get("histograms")
            .and_then(Json::as_obj)
            .ok_or("missing histograms object")?
            .iter()
            .map(|(k, v)| {
                let field = |name: &str| -> Result<u64, String> {
                    v.get(name)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("histogram {k} missing {name}"))
                };
                Ok((
                    k.clone(),
                    HistogramSnapshot {
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        p50: field("p50")?,
                        p95: field("p95")?,
                        p99: field("p99")?,
                    },
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            counters,
            gauges,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for probe in [v, v + v / 3, v + v / 2] {
                let i = bucket_index(probe);
                assert!(i < NUM_BUCKETS, "index {i} out of range for {probe}");
                assert!(i >= last, "index not monotone at {probe}");
                last = i;
            }
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_value_round_trips() {
        for shift in 0..63u32 {
            let v = (1u64 << shift) + (1u64 << shift) / 3;
            let i = bucket_index(v);
            let rep = bucket_value(i);
            // The representative midpoint must land back in the same bucket.
            assert_eq!(bucket_index(rep), i, "value {v} rep {rep}");
        }
    }

    #[test]
    fn quantiles_are_close() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5) as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.05, "p50 {p50}");
        let p99 = h.quantile(0.99) as f64;
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.05, "p99 {p99}");
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.min(), 1000);
    }

    #[test]
    fn registry_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter("queries.executed").add(7);
        reg.gauge("cache.entries").set(-3);
        reg.histogram("stage.execute").record(12345);
        let snap = reg.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("parse");
        assert_eq!(snap, back);
        assert_eq!(back.counter("queries.executed"), Some(7));
        assert_eq!(back.gauge("cache.entries"), Some(-3));
        assert_eq!(back.histogram("stage.execute").unwrap().count, 1);
    }
}
