//! Pluggable destinations for finished [`QueryProfile`]s.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::profile::QueryProfile;

/// Receiver for finished per-query profiles.
///
/// Contract: `record` is called once per completed execute call (after the
/// result has been produced), possibly from many threads at once, and must
/// not block for long — it sits on the query hot path. Implementations must
/// tolerate profiles from cached plans (prepare spans absent) and from
/// unprofiled runs (`operators` empty). Dropping profiles is allowed (the
/// default ring buffer drops the oldest); panicking is not.
pub trait ObsSink: Send + Sync + std::fmt::Debug {
    fn record(&self, profile: QueryProfile);
}

/// Default sink: a bounded in-memory ring buffer of the most recent profiles.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<QueryProfile>>,
}

impl RingSink {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// The retained profiles, oldest first.
    pub fn recent(&self) -> Vec<QueryProfile> {
        self.buf
            .lock()
            .expect("sink lock")
            .iter()
            .cloned()
            .collect()
    }

    pub fn len(&self) -> usize {
        self.buf.lock().expect("sink lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.buf.lock().expect("sink lock").clear();
    }
}

impl Default for RingSink {
    fn default() -> Self {
        Self::new(128)
    }
}

impl ObsSink for RingSink {
    fn record(&self, profile: QueryProfile) {
        let mut buf = self.buf.lock().expect("sink lock");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(profile);
    }
}

/// A sink that discards every profile.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ObsSink for NullSink {
    fn record(&self, _profile: QueryProfile) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest() {
        let sink = RingSink::new(2);
        for i in 0..3u64 {
            sink.record(QueryProfile {
                total_nanos: i,
                ..Default::default()
            });
        }
        let recent = sink.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].total_nanos, 1);
        assert_eq!(recent[1].total_nanos, 2);
    }
}
