//! Pipeline-wide observability for the query-shredding engine.
//!
//! This crate is deliberately dependency-free and splits into three layers:
//!
//! * [`metrics`] — a lock-free [`MetricsRegistry`] of atomic [`Counter`]s,
//!   [`Gauge`]s and log-linear latency [`Histogram`]s with p50/p95/p99/max
//!   readout, snapshotted into a JSON-serialisable [`MetricsSnapshot`].
//!   Instruments are registered once (short registry lock) and recorded
//!   entirely with atomics afterwards, so a single registry can be shared by
//!   every session clone and recorded into from many threads without
//!   contention.
//! * [`profile`] — the span model: each query execution produces a
//!   [`QueryProfile`] holding one [`Span`] per pipeline [`Stage`]
//!   (typecheck, normalise, shred, sqlgen, plan, verify, execute, decode,
//!   stitch) plus optional per-operator actuals ([`OperatorProfile`]).
//!   [`QueryObs`] is the per-call collector threaded through the pipeline.
//! * [`sink`] — the pluggable [`ObsSink`] trait finished profiles are pushed
//!   to, with a bounded in-memory [`RingSink`] as the default.
//!
//! The [`json`] module is a minimal hand-rolled JSON encoder/parser (the
//! workspace has no serde) used for the `MetricsSnapshot` round-trip.

#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod profile;
pub mod sink;

pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use profile::{time_maybe, MorselStats, OperatorProfile, QueryObs, QueryProfile, Span, Stage};
pub use sink::{NullSink, ObsSink, RingSink};
