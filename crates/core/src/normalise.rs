//! Query normalisation (Section 2.2 and Appendix C of the paper).
//!
//! Normalisation proceeds in three stages:
//!
//! 1. **Symbolic evaluation** (the rewrite relation ;c): β-reduction for
//!    functions, records, conditionals and singleton-bag comprehensions, plus
//!    commuting conversions that hoist `for`, `if`, `∅` and `⊎` out of
//!    elimination frames. This eliminates all higher-order features.
//! 2. **If-hoisting** (the rewrite relation ;h): conditionals are hoisted out
//!    of primitive applications, records, unions and singletons so that every
//!    conditional ends up directly under a comprehension, where stage 3 can
//!    turn it into a `where` clause.
//! 3. A **type-directed structural pass** that produces the normal form of
//!    [`crate::nf`], assigning a fresh static index to every `return`.
//!
//! The two rewrite relations are each strongly normalising (Theorem 15 and
//! Proposition 17 in the paper); we iterate their union to a fixed point,
//! which converges on every query expressible in the source language (a large
//! step bound guards against pathological inputs).

use crate::error::ShredError;
use crate::nf::{Comprehension, Generator, NfBase, NfTerm, NormQuery, StaticIndex};
use nrc::schema::Schema;
use nrc::term::{Constant, PrimOp, Term};
use nrc::typecheck::{infer, Context};
use nrc::types::Type;

/// Maximum number of rewrite steps before normalisation gives up. Real
/// queries use a few hundred steps at most; the bound exists only to turn a
/// hypothetical divergence into an error.
const MAX_REWRITE_STEPS: usize = 1_000_000;

/// Normalise a closed flat–nested query to its normal form, assigning fresh
/// static indexes to every comprehension (Theorem 1).
pub fn normalise(term: &Term, schema: &Schema) -> Result<NormQuery, ShredError> {
    normalise_with_type(term, schema).map(|(q, _)| q)
}

/// Normalise a closed flat–nested query, also returning its (nested) result
/// type. The type is inferred *after* the rewriting stages, when all
/// higher-order features have been eliminated, so queries built with
/// λ-abstractions in argument position are accepted.
pub fn normalise_with_type(term: &Term, schema: &Schema) -> Result<(NormQuery, Type), ShredError> {
    normalise_with_type_obs(term, schema, None)
}

/// [`normalise_with_type`] with stage tracing: the rewrite passes record a
/// `Stage::Normalise` span (two spans — readers sum them) and type inference
/// a `Stage::Typecheck` span into the per-call collector when one is present.
pub fn normalise_with_type_obs(
    term: &Term,
    schema: &Schema,
    obs: Option<&obs::QueryObs>,
) -> Result<(NormQuery, Type), ShredError> {
    let rewritten = obs::time_maybe(obs, obs::Stage::Normalise, || rewrite_to_normal_form(term))?;
    let ty = obs::time_maybe(obs, obs::Stage::Typecheck, || {
        nrc::typecheck::typecheck(&rewritten, schema).map_err(ShredError::Type)
    })?;
    let query = obs::time_maybe(obs, obs::Stage::Normalise, || {
        normalise_rewritten(&rewritten, &ty, schema)
    })?;
    Ok((query, ty))
}

/// Normalise a closed query whose type is already known.
pub fn normalise_at(term: &Term, ty: &Type, schema: &Schema) -> Result<NormQuery, ShredError> {
    let rewritten = rewrite_to_normal_form(term)?;
    normalise_rewritten(&rewritten, ty, schema)
}

/// Run the structural (stage-3) pass on an already-rewritten term.
fn normalise_rewritten(
    rewritten: &Term,
    ty: &Type,
    schema: &Schema,
) -> Result<NormQuery, ShredError> {
    let elem = match ty {
        Type::Bag(elem) => elem.as_ref(),
        other => return Err(ShredError::NotAQuery(other.to_string())),
    };
    if !ty.is_nested() {
        return Err(ShredError::NotFlatNested(ty.to_string()));
    }
    let mut normaliser = Normaliser {
        schema,
        next_tag: 1,
        fresh_var: 0,
    };
    let branches = normaliser.comprehensions(
        rewritten,
        elem,
        Vec::new(),
        NfBase::truth(),
        &Context::empty(),
    )?;
    Ok(NormQuery { branches })
}

/// Apply the rewrite relations ;c and ;h to a fixed point.
pub fn rewrite_to_normal_form(term: &Term) -> Result<Term, ShredError> {
    let mut current = term.clone();
    for _ in 0..MAX_REWRITE_STEPS {
        match step(&current) {
            Some(next) => current = next,
            None => return Ok(current),
        }
    }
    Err(ShredError::RewriteDiverged)
}

/// Perform a single rewrite step anywhere in the term (outermost first), or
/// return `None` if the term is in ;c/;h normal form.
fn step(term: &Term) -> Option<Term> {
    if let Some(t) = step_root(term) {
        return Some(t);
    }
    // Recurse into children, left to right.
    match term {
        Term::Var(_) | Term::Const(_) | Term::Param(_, _) | Term::Table(_) | Term::EmptyBag(_) => {
            None
        }
        Term::PrimApp(op, args) => step_in_list(args).map(|args| Term::PrimApp(*op, args)),
        Term::If(c, t, e) => {
            step_in_three(c, t, e).map(|(c, t, e)| Term::If(Box::new(c), Box::new(t), Box::new(e)))
        }
        Term::Lam(x, b) => step(b).map(|b| Term::Lam(x.clone(), Box::new(b))),
        Term::App(f, a) => step_in_two(f, a).map(|(f, a)| Term::App(Box::new(f), Box::new(a))),
        Term::Record(fields) => {
            for (i, (_, t)) in fields.iter().enumerate() {
                if let Some(t2) = step(t) {
                    let mut fields = fields.clone();
                    fields[i].1 = t2;
                    return Some(Term::Record(fields));
                }
            }
            None
        }
        Term::Project(t, l) => step(t).map(|t| Term::Project(Box::new(t), l.clone())),
        Term::Empty(t) => step(t).map(|t| Term::Empty(Box::new(t))),
        Term::Singleton(t) => step(t).map(|t| Term::Singleton(Box::new(t))),
        Term::Union(l, r) => step_in_two(l, r).map(|(l, r)| Term::Union(Box::new(l), Box::new(r))),
        Term::For(x, s, b) => {
            step_in_two(s, b).map(|(s, b)| Term::For(x.clone(), Box::new(s), Box::new(b)))
        }
    }
}

fn step_in_two(a: &Term, b: &Term) -> Option<(Term, Term)> {
    if let Some(a2) = step(a) {
        return Some((a2, b.clone()));
    }
    step(b).map(|b2| (a.clone(), b2))
}

fn step_in_three(a: &Term, b: &Term, c: &Term) -> Option<(Term, Term, Term)> {
    if let Some(a2) = step(a) {
        return Some((a2, b.clone(), c.clone()));
    }
    if let Some(b2) = step(b) {
        return Some((a.clone(), b2, c.clone()));
    }
    step(c).map(|c2| (a.clone(), b.clone(), c2))
}

fn step_in_list(items: &[Term]) -> Option<Vec<Term>> {
    for (i, t) in items.iter().enumerate() {
        if let Some(t2) = step(t) {
            let mut items = items.to_vec();
            items[i] = t2;
            return Some(items);
        }
    }
    None
}

/// Rename the binder of a comprehension body if it would capture a free
/// variable of `other`.
fn avoid_capture(binder: &str, body: &Term, other: &Term) -> (String, Term) {
    if other.free_vars().contains(&binder.to_string()) {
        let fresh = format!("{}~", binder);
        let renamed = body.subst(binder, &Term::Var(fresh.clone()));
        (fresh, renamed)
    } else {
        (binder.to_string(), body.clone())
    }
}

/// Try all root-level rewrite rules.
fn step_root(term: &Term) -> Option<Term> {
    match term {
        // ---- β-rules (;c) ----
        Term::App(f, a) => match f.as_ref() {
            Term::Lam(x, body) => Some(body.subst(x, a)),
            // Commuting conversion: hoist `if` out of the function position.
            Term::If(c, t, e) => Some(Term::If(
                c.clone(),
                Box::new(Term::App(t.clone(), a.clone())),
                Box::new(Term::App(e.clone(), a.clone())),
            )),
            _ => None,
        },
        Term::Project(t, label) => match t.as_ref() {
            Term::Record(fields) => fields
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, v)| v.clone()),
            Term::If(c, l, r) => Some(Term::If(
                c.clone(),
                Box::new(Term::Project(l.clone(), label.clone())),
                Box::new(Term::Project(r.clone(), label.clone())),
            )),
            _ => None,
        },
        Term::If(c, t, e) => match c.as_ref() {
            Term::Const(Constant::Bool(true)) => Some((**t).clone()),
            Term::Const(Constant::Bool(false)) => Some((**e).clone()),
            // Hoist a conditional out of the condition position.
            Term::If(c2, t2, e2) => Some(Term::If(
                c2.clone(),
                Box::new(Term::If(t2.clone(), t.clone(), e.clone())),
                Box::new(Term::If(e2.clone(), t.clone(), e.clone())),
            )),
            _ => None,
        },
        Term::For(x, src, body) => match src.as_ref() {
            // for (x ← return M) N  ⇝  N[x := M]
            Term::Singleton(m) => Some(body.subst(x, m)),
            // for (x ← ∅) N  ⇝  ∅
            Term::EmptyBag(_) => Some(Term::EmptyBag(None)),
            // for (x ← M₁ ⊎ M₂) N  ⇝  for (x ← M₁) N ⊎ for (x ← M₂) N
            Term::Union(m1, m2) => Some(Term::Union(
                Box::new(Term::For(x.clone(), m1.clone(), body.clone())),
                Box::new(Term::For(x.clone(), m2.clone(), body.clone())),
            )),
            // for (x ← if L then M else N) P  ⇝  if L then … else …
            Term::If(c, t, e) => Some(Term::If(
                c.clone(),
                Box::new(Term::For(x.clone(), t.clone(), body.clone())),
                Box::new(Term::For(x.clone(), e.clone(), body.clone())),
            )),
            // for (x ← for (y ← M) N) P  ⇝  for (y ← M) for (x ← N) P
            Term::For(y, m, n) => {
                let (y2, n2) = avoid_capture(y, n, body);
                Some(Term::For(
                    y2,
                    m.clone(),
                    Box::new(Term::For(x.clone(), Box::new(n2), body.clone())),
                ))
            }
            _ => None,
        },
        // ---- if-hoisting (;h) ----
        Term::PrimApp(op, args) => {
            for (i, a) in args.iter().enumerate() {
                if let Term::If(c, t, e) = a {
                    let mut then_args = args.clone();
                    then_args[i] = (**t).clone();
                    let mut else_args = args.clone();
                    else_args[i] = (**e).clone();
                    return Some(Term::If(
                        c.clone(),
                        Box::new(Term::PrimApp(*op, then_args)),
                        Box::new(Term::PrimApp(*op, else_args)),
                    ));
                }
            }
            None
        }
        Term::Record(fields) => {
            for (i, (_, v)) in fields.iter().enumerate() {
                if let Term::If(c, t, e) = v {
                    let mut then_fields = fields.clone();
                    then_fields[i].1 = (**t).clone();
                    let mut else_fields = fields.clone();
                    else_fields[i].1 = (**e).clone();
                    return Some(Term::If(
                        c.clone(),
                        Box::new(Term::Record(then_fields)),
                        Box::new(Term::Record(else_fields)),
                    ));
                }
            }
            None
        }
        Term::Singleton(inner) => match inner.as_ref() {
            Term::If(c, t, e) => Some(Term::If(
                c.clone(),
                Box::new(Term::Singleton(t.clone())),
                Box::new(Term::Singleton(e.clone())),
            )),
            _ => None,
        },
        Term::Union(l, r) => {
            if let Term::If(c, t, e) = l.as_ref() {
                return Some(Term::If(
                    c.clone(),
                    Box::new(Term::Union(t.clone(), r.clone())),
                    Box::new(Term::Union(e.clone(), r.clone())),
                ));
            }
            if let Term::If(c, t, e) = r.as_ref() {
                return Some(Term::If(
                    c.clone(),
                    Box::new(Term::Union(l.clone(), t.clone())),
                    Box::new(Term::Union(l.clone(), e.clone())),
                ));
            }
            None
        }
        _ => None,
    }
}

/// The stage-3 structural normaliser.
struct Normaliser<'a> {
    schema: &'a Schema,
    next_tag: u32,
    fresh_var: usize,
}

impl<'a> Normaliser<'a> {
    fn fresh_tag(&mut self) -> StaticIndex {
        let t = StaticIndex(self.next_tag);
        self.next_tag += 1;
        t
    }

    fn fresh_var(&mut self) -> String {
        self.fresh_var += 1;
        format!("η{}", self.fresh_var)
    }

    /// `B⟦M⟧*_{A, G⃗, L}`: the comprehensions of a bag-typed term.
    fn comprehensions(
        &mut self,
        term: &Term,
        elem_ty: &Type,
        gens: Vec<Generator>,
        cond: NfBase,
        ctx: &Context,
    ) -> Result<Vec<Comprehension>, ShredError> {
        match term {
            Term::Singleton(body) => {
                let tag = self.fresh_tag();
                let body = self.norm_term(body, elem_ty, ctx)?;
                Ok(vec![Comprehension {
                    generators: gens,
                    condition: cond,
                    tag,
                    body,
                }])
            }
            Term::For(x, src, body) => match src.as_ref() {
                Term::Table(t) => {
                    let table = self
                        .schema
                        .table(t)
                        .ok_or_else(|| ShredError::Type(nrc::TypeError::NoSuchTable(t.clone())))?;
                    // Rename the bound variable so that all generators of the
                    // whole normal form are distinct (the paper assumes this
                    // before let-insertion; it also keeps correlated SQL
                    // subqueries unambiguous). The name is sanitised so it is
                    // always a valid SQL identifier, even if rewriting minted
                    // helper names with punctuation.
                    self.fresh_var += 1;
                    let sanitised: String = x
                        .chars()
                        .filter(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    let stem = if sanitised.is_empty() {
                        "v"
                    } else {
                        &sanitised
                    };
                    let fresh = format!("{}_{}", stem, self.fresh_var);
                    let body = body.subst(x, &Term::Var(fresh.clone()));
                    let ctx = ctx.extend(&fresh, table.row_type());
                    let mut gens = gens;
                    gens.push(Generator::new(&fresh, t));
                    self.comprehensions(&body, elem_ty, gens, cond, &ctx)
                }
                other => Err(ShredError::NotInNormalForm(format!(
                    "comprehension source is not a table: {}",
                    other
                ))),
            },
            Term::Table(t) => {
                // B⟦table t⟧* = B⟦for (x ← t) return x⟧* for fresh x.
                let x = self.fresh_var();
                let expanded = Term::For(
                    x.clone(),
                    Box::new(Term::Table(t.clone())),
                    Box::new(Term::Singleton(Box::new(Term::Var(x)))),
                );
                self.comprehensions(&expanded, elem_ty, gens, cond, ctx)
            }
            Term::EmptyBag(_) => Ok(Vec::new()),
            Term::Union(l, r) => {
                let mut out = self.comprehensions(l, elem_ty, gens.clone(), cond.clone(), ctx)?;
                out.extend(self.comprehensions(r, elem_ty, gens, cond, ctx)?);
                Ok(out)
            }
            Term::If(c, t, e) => {
                let test = self.norm_base(c, ctx)?;
                let mut out = self.comprehensions(
                    t,
                    elem_ty,
                    gens.clone(),
                    cond.clone().and(test.clone()),
                    ctx,
                )?;
                out.extend(self.comprehensions(e, elem_ty, gens, cond.and(test.negate()), ctx)?);
                Ok(out)
            }
            other => Err(ShredError::NotInNormalForm(format!(
                "unexpected bag-typed term after rewriting: {}",
                other
            ))),
        }
    }

    /// `⟦M⟧_A`: normalise a term at a given type.
    fn norm_term(&mut self, term: &Term, ty: &Type, ctx: &Context) -> Result<NfTerm, ShredError> {
        match ty {
            Type::Base(_) => Ok(NfTerm::Base(self.norm_base(term, ctx)?)),
            Type::Record(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (label, field_ty) in fields {
                    let projected = self.project_field(term, label)?;
                    out.push((label.clone(), self.norm_term(&projected, field_ty, ctx)?));
                }
                Ok(NfTerm::Record(out))
            }
            Type::Bag(elem) => {
                let branches = self.comprehensions(term, elem, Vec::new(), NfBase::truth(), ctx)?;
                Ok(NfTerm::Query(NormQuery { branches }))
            }
            Type::Fun(_, _) => Err(ShredError::NotFlatNested(ty.to_string())),
        }
    }

    /// `F⟦M⟧_{A,ℓ}`: project a field of a record-typed normalised term,
    /// η-expanding variables.
    fn project_field(&mut self, term: &Term, label: &str) -> Result<Term, ShredError> {
        match term {
            Term::Record(fields) => fields
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| {
                    ShredError::NotInNormalForm(format!("record without field {}", label))
                }),
            Term::Var(x) => Ok(Term::Project(
                Box::new(Term::Var(x.clone())),
                label.to_string(),
            )),
            // A projection of a projection (x.ℓ.ℓ′) can only arise from nested
            // record columns, which flat tables do not have, but handle it for
            // robustness.
            Term::Project(_, _) => Ok(Term::Project(Box::new(term.clone()), label.to_string())),
            other => Err(ShredError::NotInNormalForm(format!(
                "cannot project field {} from {}",
                label, other
            ))),
        }
    }

    /// `⟦X⟧_O`: normalise a base-typed term.
    fn norm_base(&mut self, term: &Term, ctx: &Context) -> Result<NfBase, ShredError> {
        match term {
            Term::Project(inner, field) => match inner.as_ref() {
                Term::Var(x) => Ok(NfBase::Proj {
                    var: x.clone(),
                    field: field.clone(),
                }),
                other => Err(ShredError::NotInNormalForm(format!(
                    "projection from non-variable {}",
                    other
                ))),
            },
            Term::Const(c) => Ok(NfBase::Const(c.clone())),
            Term::Param(name, ty) => Ok(NfBase::Param(name.clone(), *ty)),
            Term::PrimApp(op, args) => Ok(NfBase::Prim(
                *op,
                args.iter()
                    .map(|a| self.norm_base(a, ctx))
                    .collect::<Result<_, _>>()?,
            )),
            Term::Empty(inner) => {
                let inner_ty = infer(inner, ctx, self.schema).map_err(ShredError::Type)?;
                let elem = match &inner_ty {
                    Type::Bag(elem) => elem.as_ref().clone(),
                    other => return Err(ShredError::NotAQuery(other.to_string())),
                };
                let branches =
                    self.comprehensions(inner, &elem, Vec::new(), NfBase::truth(), ctx)?;
                Ok(NfBase::IsEmpty(Box::new(NormQuery { branches })))
            }
            // A residual boolean conditional (possible when stage-2 hoisting
            // pushed an `if` into a condition position): encode it with
            // boolean connectives, which is sound at type Bool.
            Term::If(c, t, e) => {
                let c = self.norm_base(c, ctx)?;
                let t = self.norm_base(t, ctx)?;
                let e = self.norm_base(e, ctx)?;
                Ok(NfBase::Prim(
                    PrimOp::Or,
                    vec![
                        NfBase::Prim(PrimOp::And, vec![c.clone(), t]),
                        NfBase::Prim(PrimOp::And, vec![c.negate(), e]),
                    ],
                ))
            }
            other => Err(ShredError::NotInNormalForm(format!(
                "unexpected base-typed term after rewriting: {}",
                other
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrc::builder::*;
    use nrc::schema::{Database, TableSchema};
    use nrc::stdlib;
    use nrc::types::BaseType;
    use nrc::value::Value;

    fn schema() -> Schema {
        Schema::new()
            .with_table(
                TableSchema::new(
                    "departments",
                    vec![("id", BaseType::Int), ("name", BaseType::String)],
                )
                .with_key(vec!["id"]),
            )
            .with_table(
                TableSchema::new(
                    "employees",
                    vec![
                        ("id", BaseType::Int),
                        ("dept", BaseType::String),
                        ("name", BaseType::String),
                        ("salary", BaseType::Int),
                    ],
                )
                .with_key(vec!["id"]),
            )
            .with_table(
                TableSchema::new(
                    "tasks",
                    vec![
                        ("id", BaseType::Int),
                        ("employee", BaseType::String),
                        ("task", BaseType::String),
                    ],
                )
                .with_key(vec!["id"]),
            )
    }

    fn db() -> Database {
        let mut db = Database::new(schema());
        for (id, name) in [(1, "Product"), (2, "Research"), (3, "Sales")] {
            db.insert_row(
                "departments",
                vec![("id", Value::Int(id)), ("name", Value::string(name))],
            )
            .unwrap();
        }
        for (id, dept, name, salary) in [
            (1, "Product", "Alex", 20000),
            (2, "Product", "Bert", 900),
            (3, "Research", "Cora", 50000),
            (4, "Sales", "Erik", 2000000),
        ] {
            db.insert_row(
                "employees",
                vec![
                    ("id", Value::Int(id)),
                    ("dept", Value::string(dept)),
                    ("name", Value::string(name)),
                    ("salary", Value::Int(salary)),
                ],
            )
            .unwrap();
        }
        for (id, emp, task) in [
            (1, "Alex", "build"),
            (2, "Bert", "build"),
            (3, "Cora", "abstract"),
            (4, "Erik", "call"),
        ] {
            db.insert_row(
                "tasks",
                vec![
                    ("id", Value::Int(id)),
                    ("employee", Value::string(emp)),
                    ("task", Value::string(task)),
                ],
            )
            .unwrap();
        }
        db
    }

    /// Normalisation must preserve the nested semantics (Theorem 1).
    fn assert_norm_preserves(q: &Term) {
        let schema = schema();
        let db = db();
        let original = nrc::eval(q, &db).unwrap();
        let normal = normalise(q, &schema).unwrap();
        let renormalised = nrc::eval(&normal.to_term(), &db).unwrap();
        assert!(
            original.multiset_eq(&renormalised),
            "normalisation changed semantics:\n  original: {}\n  normal:  {}",
            original,
            renormalised
        );
    }

    #[test]
    fn beta_reduction_eliminates_applications() {
        let q = app(
            lam(
                "p",
                for_where(
                    "e",
                    table("employees"),
                    app(var("p"), var("e")),
                    singleton(project(var("e"), "name")),
                ),
            ),
            lam("x", gt(project(var("x"), "salary"), int(1000))),
        );
        let n = normalise(&q, &schema()).unwrap();
        assert_eq!(n.branches.len(), 1);
        assert_norm_preserves(&q);
    }

    #[test]
    fn higher_order_combinators_normalise_to_flat_comprehensions() {
        let q = stdlib::filter_fn(
            lam("y", gt(project(var("y"), "salary"), int(1000))),
            table("employees"),
        );
        let n = normalise(&q, &schema()).unwrap();
        assert_eq!(n.branches.len(), 1);
        assert_eq!(n.branches[0].generators.len(), 1);
        assert_norm_preserves(&q);
    }

    #[test]
    fn nested_for_sources_are_flattened() {
        // for (x ← for (y ← employees) return y) return x.name
        let q = for_in(
            "x",
            for_in("y", table("employees"), singleton(var("y"))),
            singleton(project(var("x"), "name")),
        );
        let n = normalise(&q, &schema()).unwrap();
        assert_eq!(n.branches.len(), 1);
        assert_eq!(n.branches[0].generators.len(), 1);
        assert_norm_preserves(&q);
    }

    #[test]
    fn unions_are_hoisted_to_the_top() {
        let q = for_in(
            "x",
            union(
                for_where(
                    "e",
                    table("employees"),
                    lt(project(var("e"), "salary"), int(1000)),
                    singleton(var("e")),
                ),
                for_where(
                    "e",
                    table("employees"),
                    gt(project(var("e"), "salary"), int(100000)),
                    singleton(var("e")),
                ),
            ),
            singleton(project(var("x"), "name")),
        );
        let n = normalise(&q, &schema()).unwrap();
        assert_eq!(n.branches.len(), 2);
        assert_norm_preserves(&q);
    }

    #[test]
    fn conditionals_become_where_clauses() {
        // for (e ← employees) (if e.salary > 1000 then return e.name else ∅)
        let q = for_in(
            "e",
            table("employees"),
            if_then_else(
                gt(project(var("e"), "salary"), int(1000)),
                singleton(project(var("e"), "name")),
                empty_bag(),
            ),
        );
        let n = normalise(&q, &schema()).unwrap();
        assert_eq!(n.branches.len(), 1);
        assert!(!n.branches[0].condition.is_truth());
        assert_norm_preserves(&q);
    }

    #[test]
    fn conditional_with_both_branches_splits_into_two_comprehensions() {
        let q = for_in(
            "e",
            table("employees"),
            if_then_else(
                gt(project(var("e"), "salary"), int(1000)),
                singleton(string("big")),
                singleton(string("small")),
            ),
        );
        let n = normalise(&q, &schema()).unwrap();
        assert_eq!(n.branches.len(), 2);
        assert_norm_preserves(&q);
    }

    #[test]
    fn bare_table_is_eta_expanded() {
        let q = table("employees");
        let n = normalise(&q, &schema()).unwrap();
        assert_eq!(n.branches.len(), 1);
        assert_eq!(n.branches[0].generators.len(), 1);
        // The body must be a record listing every column explicitly.
        match &n.branches[0].body {
            NfTerm::Record(fields) => assert_eq!(fields.len(), 4),
            other => panic!("expected an η-expanded record, got {:?}", other),
        }
        assert_norm_preserves(&q);
    }

    #[test]
    fn nested_query_bodies_are_normalised_recursively() {
        let q = for_in(
            "d",
            table("departments"),
            singleton(record(vec![
                ("name", project(var("d"), "name")),
                (
                    "emps",
                    stdlib::filter(table("employees"), |e| {
                        eq(project(e, "dept"), project(var("d"), "name"))
                    }),
                ),
            ])),
        );
        let n = normalise(&q, &schema()).unwrap();
        assert_eq!(n.branches.len(), 1);
        match &n.branches[0].body {
            NfTerm::Record(fields) => {
                assert!(matches!(fields[1].1, NfTerm::Query(_)));
            }
            other => panic!("expected a record body, got {:?}", other),
        }
        assert_norm_preserves(&q);
        // Tags must be unique across the whole query.
        let tags = n.tags();
        let mut dedup = tags.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(tags.len(), dedup.len());
    }

    #[test]
    fn emptiness_tests_are_normalised_in_place() {
        // Departments with no employee earning over 100000.
        let q = for_where(
            "d",
            table("departments"),
            is_empty(for_where(
                "e",
                table("employees"),
                and(
                    eq(project(var("e"), "dept"), project(var("d"), "name")),
                    gt(project(var("e"), "salary"), int(100000)),
                ),
                singleton(var("e")),
            )),
            singleton(project(var("d"), "name")),
        );
        let n = normalise(&q, &schema()).unwrap();
        assert_eq!(n.branches.len(), 1);
        assert!(matches!(
            n.branches[0].condition,
            NfBase::IsEmpty(_) | NfBase::Prim(_, _)
        ));
        assert_norm_preserves(&q);
    }

    #[test]
    fn any_and_all_combinators_normalise() {
        let q = for_where(
            "d",
            table("departments"),
            stdlib::all(
                stdlib::filter(table("employees"), |e| {
                    eq(project(e, "dept"), project(var("d"), "name"))
                }),
                |e| gt(project(e, "salary"), int(500)),
            ),
            singleton(project(var("d"), "name")),
        );
        assert_norm_preserves(&q);
    }

    #[test]
    fn boolean_conditional_in_condition_position_is_encoded() {
        // where (if e.salary > 1000 then e.dept = "Sales" else true)
        let q = for_where(
            "e",
            table("employees"),
            if_then_else(
                gt(project(var("e"), "salary"), int(1000)),
                eq(project(var("e"), "dept"), string("Sales")),
                boolean(true),
            ),
            singleton(project(var("e"), "name")),
        );
        assert_norm_preserves(&q);
    }

    #[test]
    fn normalising_a_non_query_fails() {
        assert!(matches!(
            normalise(&int(3), &schema()),
            Err(ShredError::NotAQuery(_))
        ));
    }

    #[test]
    fn rewriting_is_idempotent_on_normal_forms() {
        let q = for_where(
            "e",
            table("employees"),
            gt(project(var("e"), "salary"), int(1000)),
            singleton(project(var("e"), "name")),
        );
        let r1 = rewrite_to_normal_form(&q).unwrap();
        let r2 = rewrite_to_normal_form(&r1).unwrap();
        assert_eq!(r1, r2);
    }
}
