//! The end-to-end query shredding pipeline (Figure 1(c) of the paper).
//!
//! ```text
//! λNRC query
//!   │ normalise            (crate::normalise)
//!   ▼
//! normal form + static indexes
//!   │ shred                (crate::shred)     — one flat query per bag constructor
//!   │ let-insert           (crate::letins)    — flat ⟨static, dynamic⟩ indexes
//!   │ SQL generation       (crate::sqlgen)    — WITH / UNION ALL / ROW_NUMBER
//!   ▼
//! SQL queries  ── run on sqlengine ──▶ flat results
//!   │ decode               (crate::flatten)
//!   │ stitch               (crate::stitch)
//!   ▼
//! nested value  (≡ evaluating the original query directly — Theorem 4)
//! ```

use crate::error::ShredError;
use crate::flatten::{value_to_sql, ColumnarStage, ResultLayout};
use crate::letins::{let_insert, LetQuery};
use crate::nf::NormQuery;
use crate::normalise::normalise_with_type;
use crate::semantics::{IndexScheme, ShredResult};
use crate::shred::{shred_query, shred_type, Package, ShreddedQuery};
use crate::stitch::stitch_rows;
use nrc::schema::{Database, Schema};
use nrc::term::Term;
use nrc::types::{Path, Type};
use nrc::value::Value;
use sqlengine::plan::{plan_query, PhysicalPlan, SchemaCatalog};
use sqlengine::storage::{ColumnType, Storage, TableDef};
use sqlengine::{Engine, Query};
use std::sync::Arc;

/// Everything produced for one bag constructor of the result type: the
/// shredded query, its let-inserted form, the SQL rendering, the compiled
/// physical plan and the column layout used to decode results.
#[derive(Debug, Clone)]
pub struct QueryStage {
    pub path: Path,
    pub shredded: ShreddedQuery,
    pub let_inserted: LetQuery,
    pub sql: Query,
    /// The physical plan compiled from `sql` against the source schema.
    /// Executing a compiled query runs this plan directly — no parsing or
    /// planning happens per execution, so cached plans amortise completely.
    pub plan: PhysicalPlan,
    /// The stage's column layout, resolved once at compile time and shared
    /// by `Arc` with every per-execution [`ColumnarStage`] decoded from it.
    pub layout: Arc<ResultLayout>,
    /// What the logical optimizer did to `plan` — rewrites applied and
    /// correlated subqueries it had to leave in place (surfaced as `O001`
    /// diagnostics by [`crate::verify`]). Empty when the query was compiled
    /// with optimization disabled.
    pub opt: sqlengine::OptReport,
    /// Package-level common-subplan sharing: when set, `plan`'s top-level
    /// `WITH` definition is structurally identical to the shared subplan at
    /// this slot of [`CompiledQuery::shared`], and executors may run `body`
    /// with the shared result bound under `name` instead of recomputing the
    /// definition. `plan` itself stays fully self-contained — the profiled,
    /// incremental and text paths keep using it unchanged.
    pub shared: Option<SharedSlot>,
}

/// A stage's binding into the package's shared-subplan table (see
/// [`QueryStage::shared`]).
#[derive(Debug, Clone)]
pub struct SharedSlot {
    /// Index into [`CompiledQuery::shared`].
    pub index: usize,
    /// The CTE name the stage's plan binds the definition under.
    pub name: String,
    /// The stage's plan with the top-level `With` node stripped; its free
    /// `CteScan`s of `name` resolve against the shared result.
    pub body: PhysicalPlan,
}

/// A fully compiled nested query: the normal form plus one [`QueryStage`] per
/// bag constructor of the result type.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    pub normalised: NormQuery,
    pub result_type: Type,
    pub stages: Package<QueryStage>,
    /// Subplans shared by two or more stages (package-level CSE): each is a
    /// top-level `WITH` definition, structurally equal across its consuming
    /// stages and free of outside CTE references, hoisted so executors run
    /// it once per package instead of once per stage. Empty when compiled
    /// without optimization.
    pub shared: Vec<PhysicalPlan>,
}

impl CompiledQuery {
    /// The number of flat queries (= the nesting degree of the result type).
    pub fn query_count(&self) -> usize {
        self.stages.nesting_degree()
    }

    /// The SQL text of every stage, outermost first.
    pub fn sql_texts(&self) -> Vec<String> {
        self.stages
            .annotations()
            .into_iter()
            .map(|s| sqlengine::print_query(&s.sql))
            .collect()
    }
}

/// Compile a nested λNRC query down to SQL: normalise, shred at every path of
/// the result type, let-insert, generate SQL and run the logical optimizer
/// over every stage plan.
pub fn compile(term: &Term, schema: &Schema) -> Result<CompiledQuery, ShredError> {
    let (normalised, result_type) = normalise_with_type(term, schema)?;
    compile_normalised(normalised, result_type, schema)
}

/// [`compile`] with the logical optimizer switched off: stage plans come out
/// of the planner exactly as `sqlgen` shaped them (correlated `EXISTS`
/// subqueries, no pushdown, no cross-stage sharing). This is the
/// differential baseline the optimizer is tested and benchmarked against.
pub fn compile_unoptimized(term: &Term, schema: &Schema) -> Result<CompiledQuery, ShredError> {
    let (normalised, result_type) = normalise_with_type(term, schema)?;
    compile_normalised_opts(normalised, result_type, schema, None, false)
}

/// Compile an already-normalised query (optimized).
pub fn compile_normalised(
    normalised: NormQuery,
    result_type: Type,
    schema: &Schema,
) -> Result<CompiledQuery, ShredError> {
    compile_normalised_obs(normalised, result_type, schema, None)
}

/// [`compile_normalised`] with stage tracing: each shredded stage records
/// `Stage::Shred` (shredding, layout construction and let-insertion),
/// `Stage::Sqlgen` and `Stage::Plan` spans into the per-call collector when
/// one is present.
pub fn compile_normalised_obs(
    normalised: NormQuery,
    result_type: Type,
    schema: &Schema,
    obs: Option<&obs::QueryObs>,
) -> Result<CompiledQuery, ShredError> {
    compile_normalised_opts(normalised, result_type, schema, obs, true)
}

/// [`compile_normalised_obs`] with an explicit optimizer switch. With
/// `optimize` set, every stage plan runs through [`sqlengine::optimize`]
/// (constant folding, `EXISTS` decorrelation, predicate pushdown,
/// estimate-driven build-side choice) inside its `Stage::Plan` span, and the
/// package is scanned for stages whose top-level `WITH` definitions are
/// structurally equal — those are hoisted into [`CompiledQuery::shared`] so
/// executors run each once per package (cross-stage CSE).
pub fn compile_normalised_opts(
    normalised: NormQuery,
    result_type: Type,
    schema: &Schema,
    obs: Option<&obs::QueryObs>,
    optimize: bool,
) -> Result<CompiledQuery, ShredError> {
    if !matches!(result_type, Type::Bag(_)) {
        return Err(ShredError::NotAQuery(result_type.to_string()));
    }
    let catalog = SchemaCatalog::new(table_defs_of_schema(schema));
    let stages = crate::shred::package_by(&result_type, &mut |path: &Path| {
        let (shredded, layout, let_inserted) =
            obs::time_maybe(obs, obs::Stage::Shred, || -> Result<_, ShredError> {
                let shredded = shred_query(&normalised, path)?;
                let shredded_type = shred_type(&result_type, path)?;
                let layout = Arc::new(ResultLayout::new(&shredded_type.inner));
                let let_inserted = let_insert(&shredded)?;
                Ok((shredded, layout, let_inserted))
            })?;
        let sql = obs::time_maybe(obs, obs::Stage::Sqlgen, || {
            crate::sqlgen::sql_of_let_query(&let_inserted, &layout, schema)
        })?;
        let (plan, opt) = obs::time_maybe(obs, obs::Stage::Plan, || {
            let plan = plan_query(&sql, &catalog).map_err(ShredError::Engine)?;
            Ok::<_, ShredError>(if optimize {
                sqlengine::optimize(plan, &catalog)
            } else {
                (plan, sqlengine::OptReport::default())
            })
        })?;
        Ok::<QueryStage, ShredError>(QueryStage {
            path: path.clone(),
            shredded,
            let_inserted,
            sql,
            plan,
            layout,
            opt,
            shared: None,
        })
    })?;
    let (stages, shared) = if optimize {
        share_subplans(stages)?
    } else {
        (stages, Vec::new())
    };
    Ok(CompiledQuery {
        normalised,
        result_type,
        stages,
        shared,
    })
}

/// Package-level common-subplan elimination: find top-level `WITH`
/// definitions that are structurally equal across two or more stages and
/// self-contained (no free CTE references), hoist each distinct one into a
/// shared slot, and record on every consuming stage the slot plus its
/// `With`-stripped body. Sharing is only sound at package level — a single
/// stage's plan already evaluates its `WITH` definition exactly once, so
/// the duplicated work the paper's shredding scheme introduces is *across*
/// the flat queries of one package, where every inner stage re-derives the
/// same outer comprehension under its CTE.
fn share_subplans(
    stages: Package<QueryStage>,
) -> Result<(Package<QueryStage>, Vec<PhysicalPlan>), ShredError> {
    let mut uses: Vec<(PhysicalPlan, usize)> = Vec::new();
    for stage in stages.annotations() {
        if let PhysicalPlan::With { definition, .. } = &stage.plan {
            if definition.free_ctes().is_empty() {
                match uses.iter_mut().find(|(d, _)| d == definition.as_ref()) {
                    Some((_, n)) => *n += 1,
                    None => uses.push((definition.as_ref().clone(), 1)),
                }
            }
        }
    }
    let shared: Vec<PhysicalPlan> = uses
        .iter()
        .filter(|(_, n)| *n >= 2)
        .map(|(d, _)| d.clone())
        .collect();
    if shared.is_empty() {
        return Ok((stages, Vec::new()));
    }
    let stages = stages.try_map(&mut |stage: &QueryStage| {
        let mut stage = stage.clone();
        if let PhysicalPlan::With {
            name,
            definition,
            body,
        } = &stage.plan
        {
            if let Some(index) = shared.iter().position(|d| d == definition.as_ref()) {
                stage.opt.rewrites.push(format!(
                    "bound `{}` to package-shared subplan #{} (cross-stage CSE)",
                    name, index
                ));
                stage.shared = Some(SharedSlot {
                    index,
                    name: name.clone(),
                    body: (**body).clone(),
                });
            }
        }
        Ok::<_, ShredError>(stage)
    })?;
    Ok((stages, shared))
}

/// Execute a compiled query on a SQL engine and stitch the shredded results
/// back into a nested value. Each stage runs its pre-compiled physical plan
/// on the vectorized executor — repeat executions perform no parsing or
/// planning work.
pub fn execute(compiled: &CompiledQuery, engine: &Engine) -> Result<Value, ShredError> {
    execute_bound(compiled, engine, &sqlengine::ParamValues::new())
}

/// Execute a compiled query with bound values for its `:name` param slots.
/// The stages' physical plans are immutable — binding happens inside the
/// vectorized executor, so re-executing the same compiled query with
/// different bindings does zero parsing, shredding, SQL generation or
/// physical planning.
///
/// The result path is **columnar end to end**: each stage's vectorized
/// batch is handed over as `Arc`-shared columns, grouped by its outer index
/// columns ([`ColumnarStage::decode`]) and stitched straight into the
/// nested value ([`stitch`]) — no row-major transpose, no per-row
/// `FlatValue` tree, no per-cell string copies.
pub fn execute_bound(
    compiled: &CompiledQuery,
    engine: &Engine,
    params: &sqlengine::ParamValues,
) -> Result<Value, ShredError> {
    execute_bound_obs(compiled, engine, params, None)
}

/// [`execute_bound`] with stage tracing and optional per-operator profiling.
/// Each stage records an `Stage::Execute` and a `Stage::Decode` span, the
/// final stitch a `Stage::Stitch` span. When the collector additionally
/// requests operator profiling ([`obs::QueryObs::profile_operators`]), each
/// stage runs through the instrumented executor and pushes one
/// [`obs::OperatorProfile`] per physical-plan node (pre-order indexed); the
/// unprofiled path is byte-identical to [`execute_bound`] apart from one
/// `Option` check per stage.
pub fn execute_bound_obs(
    compiled: &CompiledQuery,
    engine: &Engine,
    params: &sqlengine::ParamValues,
    obs: Option<&obs::QueryObs>,
) -> Result<Value, ShredError> {
    execute_bound_obs_opts(
        compiled,
        engine,
        params,
        obs,
        sqlengine::ExecOptions::default(),
    )
}

/// [`execute_bound_obs`] with explicit execution options. With
/// `opts.workers > 1` the package's stages — independent by construction
/// (each is one self-contained flat query; only the final stitch joins
/// them) — are executed **and decoded** concurrently on scoped threads
/// handed out from an atomic cursor, and each stage's own plan execution
/// fans morsels across its share of the same worker budget
/// (`workers / stage_count`, so a single-stage package gets the full pool
/// at operator level while a 4-stage package overlaps whole stages).
/// Results are reassembled in the package's canonical depth-first stage
/// order, so the stitched value is identical to the sequential path's.
pub fn execute_bound_obs_opts(
    compiled: &CompiledQuery,
    engine: &Engine,
    params: &sqlengine::ParamValues,
    obs: Option<&obs::QueryObs>,
    opts: sqlengine::ExecOptions,
) -> Result<Value, ShredError> {
    let profile_ops = obs.is_some_and(|o| o.profile_operators());
    let stage_refs: Vec<&QueryStage> = compiled.stages.annotations();
    let n = stage_refs.len();

    // Run each package-shared subplan once; stages carrying a shared slot
    // bind the columnar result under their CTE name instead of recomputing
    // the definition. The profiled path skips sharing — its per-operator
    // actuals are defined over the stage's self-contained plan.
    let shared: Vec<sqlengine::ColumnarResult> = if profile_ops {
        Vec::new()
    } else {
        compiled
            .shared
            .iter()
            .map(|plan| {
                let (result, stats) = obs::time_maybe(obs, obs::Stage::Execute, || {
                    engine.execute_plan_bound_opts(plan, params, opts)
                })?;
                if let Some(o) = obs {
                    o.record_morsels(&obs::MorselStats {
                        dispatched: stats.morsels_dispatched,
                        peak_workers: stats.peak_workers,
                        morsel_nanos: stats.morsel_nanos,
                    });
                }
                Ok(result)
            })
            .collect::<Result<_, ShredError>>()?
    };
    let shared = &shared[..];

    let decoded: Vec<ColumnarStage> = if opts.workers > 1 && n > 1 {
        let stage_opts = sqlengine::ExecOptions {
            workers: (opts.workers / n.min(opts.workers)).max(1),
            ..opts
        };
        let threads = opts.workers.min(n);
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let run = || {
            let mut local: Vec<(usize, Result<ColumnarStage, ShredError>)> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                local.push((
                    i,
                    run_stage(
                        stage_refs[i],
                        i,
                        engine,
                        params,
                        obs,
                        profile_ops,
                        stage_opts,
                        shared,
                    ),
                ));
            }
            local
        };
        let collected: Vec<Vec<(usize, Result<ColumnarStage, ShredError>)>> =
            std::thread::scope(|s| {
                let handles: Vec<_> = (1..threads).map(|_| s.spawn(run)).collect();
                let mine = run();
                let mut all = vec![mine];
                for h in handles {
                    match h.join() {
                        Ok(v) => all.push(v),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                all
            });
        let mut slots: Vec<Option<Result<ColumnarStage, ShredError>>> =
            (0..n).map(|_| None).collect();
        for (i, r) in collected.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(ShredError::Internal(
                        "stage result missing after join".to_string(),
                    ))
                })
            })
            .collect::<Result<Vec<_>, _>>()?
    } else {
        stage_refs
            .iter()
            .enumerate()
            .map(|(i, stage)| run_stage(stage, i, engine, params, obs, profile_ops, opts, shared))
            .collect::<Result<Vec<_>, _>>()?
    };

    // Reassemble in the package's canonical depth-first order — the same
    // order `annotations()` listed the stages in, so stage `i` lands back
    // on the constructor it came from.
    let mut results = decoded.into_iter();
    let stages: Package<ColumnarStage> = compiled.stages.try_map(&mut |_: &QueryStage| {
        results.next().ok_or_else(|| {
            ShredError::Internal("stage count mismatch during reassembly".to_string())
        })
    })?;
    crate::stitch::stitch_obs(stages, obs)
}

/// Execute and decode one shredded stage: the per-stage body of
/// [`execute_bound_obs_opts`], shared by its sequential and stage-parallel
/// paths.
#[allow(clippy::too_many_arguments)]
fn run_stage(
    stage: &QueryStage,
    i: usize,
    engine: &Engine,
    params: &sqlengine::ParamValues,
    obs: Option<&obs::QueryObs>,
    profile_ops: bool,
    opts: sqlengine::ExecOptions,
    shared: &[sqlengine::ColumnarResult],
) -> Result<ColumnarStage, ShredError> {
    let result = if profile_ops {
        let (result, prof, stats) = obs::time_maybe(obs, obs::Stage::Execute, || {
            engine.execute_plan_profiled_opts(&stage.plan, params, opts)
        })?;
        if let Some(o) = obs {
            let nodes = stage.plan.nodes();
            o.push_operators(
                prof.ops
                    .iter()
                    .enumerate()
                    .map(|(n, a)| obs::OperatorProfile {
                        stage: i,
                        node: n,
                        op: nodes[n].kind().to_string(),
                        batches: a.batches,
                        rows_in: a.rows_in,
                        rows_out: a.rows_out,
                        nanos: a.nanos,
                    }),
            );
            o.record_morsels(&obs::MorselStats {
                dispatched: stats.morsels_dispatched,
                peak_workers: stats.peak_workers,
                morsel_nanos: stats.morsel_nanos,
            });
        }
        result
    } else {
        let (result, stats) = obs::time_maybe(obs, obs::Stage::Execute, || {
            match &stage.shared {
                // CSE path: execute the With-stripped body against the
                // pre-computed shared definition (column `Arc`s shared).
                Some(slot) if slot.index < shared.len() => engine.execute_plan_bound_ctes_opts(
                    &slot.body,
                    params,
                    &[(slot.name.clone(), shared[slot.index].clone())],
                    opts,
                ),
                _ => engine.execute_plan_bound_opts(&stage.plan, params, opts),
            }
        })?;
        if let Some(o) = obs {
            o.record_morsels(&obs::MorselStats {
                dispatched: stats.morsels_dispatched,
                peak_workers: stats.peak_workers,
                morsel_nanos: stats.morsel_nanos,
            });
        }
        result
    };
    ColumnarStage::decode_obs(stage.layout.clone(), result, obs)
}

/// Execute a compiled query over the row-major result path: transpose each
/// stage's columnar result into rows, decode per-row [`FlatValue`] trees
/// and stitch with [`stitch_rows`]. This is the differential oracle for
/// [`execute`]'s columnar path (the benchmark harness times the two against
/// each other).
pub fn execute_rows(compiled: &CompiledQuery, engine: &Engine) -> Result<Value, ShredError> {
    let results: Package<ShredResult> = compiled.stages.try_map(&mut |stage: &QueryStage| {
        let rs = engine.execute_plan(&stage.plan)?.into_result_set();
        stage.layout.decode(&rs)
    })?;
    stitch_rows(results, IndexScheme::Flat)
}

/// Execute a compiled query by shipping SQL *text* to the engine (parsing it
/// back), exactly as Links ships SQL strings to PostgreSQL. Slower than
/// [`execute`], but exercises the printer/parser round trip — and, since
/// text consumers receive row-major results, the row-path decode + stitch.
pub fn execute_via_sql_text(
    compiled: &CompiledQuery,
    engine: &Engine,
) -> Result<Value, ShredError> {
    let results: Package<ShredResult> = compiled.stages.try_map(&mut |stage: &QueryStage| {
        let text = sqlengine::print_query(&stage.sql);
        let rs = engine.execute_sql(&text)?;
        stage.layout.decode(&rs)
    })?;
    stitch_rows(results, IndexScheme::Flat)
}

// ---------------------------------------------------------------------------
// Bridging the λNRC database to the SQL engine
// ---------------------------------------------------------------------------

/// Convert a λNRC schema into SQL table definitions.
pub fn table_defs_of_schema(schema: &Schema) -> Vec<TableDef> {
    schema
        .tables()
        .map(|t| {
            let columns = t
                .columns
                .iter()
                .map(|(c, ty)| {
                    let col_ty = match ty {
                        nrc::BaseType::Int => ColumnType::Int,
                        nrc::BaseType::Bool => ColumnType::Bool,
                        nrc::BaseType::String | nrc::BaseType::Unit => ColumnType::Text,
                    };
                    (c.as_str(), col_ty)
                })
                .collect();
            let mut def = TableDef::new(t.name.clone(), columns);
            def.key = t.key.clone();
            def
        })
        .collect()
}

/// Load an in-memory λNRC database into SQL engine storage. Rows keep their
/// column order from the schema.
pub fn storage_from_database(db: &Database) -> Result<Storage, ShredError> {
    let mut storage = Storage::new();
    for def in table_defs_of_schema(&db.schema) {
        let name = def.name.clone();
        storage.create_table(def).map_err(ShredError::Engine)?;
        let table_schema = db
            .schema
            .table(&name)
            .ok_or_else(|| ShredError::Internal(format!("schema lost table {}", name)))?;
        for row in db
            .table_rows_unordered(&name)
            .map_err(|e| ShredError::Internal(e.to_string()))?
        {
            let mut sql_row = Vec::with_capacity(table_schema.columns.len());
            for (column, _) in &table_schema.columns {
                let v = row.field(column).ok_or_else(|| {
                    ShredError::Internal(format!("row missing column {}", column))
                })?;
                sql_row.push(value_to_sql(v)?);
            }
            storage.insert(&name, sql_row).map_err(ShredError::Engine)?;
        }
    }
    Ok(storage)
}

/// An engine loaded with the contents of a λNRC database.
pub fn engine_from_database(db: &Database) -> Result<Engine, ShredError> {
    Ok(Engine::with_storage(storage_from_database(db)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{ShreddedMemoryBackend, Shredder};
    use nrc::builder::*;
    use nrc::schema::TableSchema;
    use nrc::types::BaseType;

    fn schema() -> Schema {
        Schema::new()
            .with_table(
                TableSchema::new(
                    "departments",
                    vec![("id", BaseType::Int), ("name", BaseType::String)],
                )
                .with_key(vec!["id"]),
            )
            .with_table(
                TableSchema::new(
                    "employees",
                    vec![
                        ("id", BaseType::Int),
                        ("dept", BaseType::String),
                        ("name", BaseType::String),
                        ("salary", BaseType::Int),
                    ],
                )
                .with_key(vec!["id"]),
            )
            .with_table(
                TableSchema::new(
                    "tasks",
                    vec![
                        ("id", BaseType::Int),
                        ("employee", BaseType::String),
                        ("task", BaseType::String),
                    ],
                )
                .with_key(vec!["id"]),
            )
    }

    fn db() -> Database {
        let mut db = Database::new(schema());
        for (id, name) in [
            (1, "Product"),
            (2, "Quality"),
            (3, "Research"),
            (4, "Sales"),
        ] {
            db.insert_row(
                "departments",
                vec![("id", Value::Int(id)), ("name", Value::string(name))],
            )
            .unwrap();
        }
        for (id, dept, name, salary) in [
            (1, "Product", "Alex", 20000),
            (2, "Product", "Bert", 900),
            (3, "Research", "Cora", 50000),
            (4, "Research", "Drew", 60000),
            (5, "Sales", "Erik", 2000000),
            (6, "Sales", "Fred", 700),
            (7, "Sales", "Gina", 100000),
        ] {
            db.insert_row(
                "employees",
                vec![
                    ("id", Value::Int(id)),
                    ("dept", Value::string(dept)),
                    ("name", Value::string(name)),
                    ("salary", Value::Int(salary)),
                ],
            )
            .unwrap();
        }
        for (id, emp, task) in [
            (1, "Alex", "build"),
            (2, "Bert", "build"),
            (3, "Cora", "abstract"),
            (4, "Cora", "build"),
            (5, "Cora", "call"),
            (6, "Cora", "dissemble"),
            (7, "Cora", "enthuse"),
            (8, "Drew", "abstract"),
            (9, "Drew", "enthuse"),
            (10, "Erik", "call"),
            (11, "Erik", "enthuse"),
            (12, "Fred", "call"),
            (13, "Gina", "call"),
            (14, "Gina", "dissemble"),
        ] {
            db.insert_row(
                "tasks",
                vec![
                    ("id", Value::Int(id)),
                    ("employee", Value::string(emp)),
                    ("task", Value::string(task)),
                ],
            )
            .unwrap();
        }
        db
    }

    /// The two-level nested query used throughout the paper's Section 3.
    fn department_employee_tasks() -> Term {
        for_in(
            "d",
            table("departments"),
            singleton(record(vec![
                ("department", project(var("d"), "name")),
                (
                    "employees",
                    for_where(
                        "e",
                        table("employees"),
                        eq(project(var("e"), "dept"), project(var("d"), "name")),
                        singleton(record(vec![
                            ("name", project(var("e"), "name")),
                            (
                                "tasks",
                                for_where(
                                    "t",
                                    table("tasks"),
                                    eq(project(var("t"), "employee"), project(var("e"), "name")),
                                    singleton(project(var("t"), "task")),
                                ),
                            ),
                        ])),
                    ),
                ),
            ])),
        )
    }

    fn assert_all_paths_agree(q: &Term) {
        let schema = schema();
        let db = db();
        let reference = nrc::eval(q, &db).unwrap();

        // In-memory shredded semantics, all three indexing schemes (through
        // the session API's shredded-memory backend).
        for scheme in IndexScheme::ALL {
            let session = Shredder::builder()
                .database(db.clone())
                .backend(Box::new(ShreddedMemoryBackend))
                .index_scheme(scheme)
                .build()
                .unwrap();
            let v = session.run(q).unwrap();
            assert!(
                v.multiset_eq(&reference),
                "in-memory shredding with {} indexes disagrees:\n  expected {}\n  got {}",
                scheme,
                reference,
                v
            );
        }

        // SQL path.
        let engine = engine_from_database(&db).unwrap();
        let compiled = compile(q, &schema).unwrap();
        assert_eq!(
            compiled.query_count(),
            compiled.result_type.nesting_degree()
        );
        let via_sql = execute(&compiled, &engine).unwrap();
        assert!(
            via_sql.multiset_eq(&reference),
            "SQL path disagrees:\n  expected {}\n  got {}",
            reference,
            via_sql
        );

        // SQL-as-text path (printer/parser round trip).
        let via_text = execute_via_sql_text(&compiled, &engine).unwrap();
        assert!(via_text.multiset_eq(&reference));
    }

    #[test]
    fn flat_query_round_trips() {
        let q = for_where(
            "e",
            table("employees"),
            gt(project(var("e"), "salary"), int(10000)),
            singleton(record(vec![("name", project(var("e"), "name"))])),
        );
        assert_all_paths_agree(&q);
    }

    #[test]
    fn two_level_nested_query_round_trips() {
        let q = for_in(
            "d",
            table("departments"),
            singleton(record(vec![
                ("dept", project(var("d"), "name")),
                (
                    "emps",
                    for_where(
                        "e",
                        table("employees"),
                        eq(project(var("e"), "dept"), project(var("d"), "name")),
                        singleton(project(var("e"), "name")),
                    ),
                ),
            ])),
        );
        assert_all_paths_agree(&q);
    }

    #[test]
    fn three_level_nested_query_round_trips() {
        assert_all_paths_agree(&department_employee_tasks());
    }

    #[test]
    fn query_with_union_of_nested_sources_round_trips() {
        // The outliers-and-clients shape of the running example Q, reduced to
        // the employees table only.
        let q = for_in(
            "d",
            table("departments"),
            singleton(record(vec![
                ("department", project(var("d"), "name")),
                (
                    "people",
                    union(
                        for_where(
                            "e",
                            table("employees"),
                            and(
                                eq(project(var("e"), "dept"), project(var("d"), "name")),
                                or(
                                    lt(project(var("e"), "salary"), int(1000)),
                                    gt(project(var("e"), "salary"), int(1000000)),
                                ),
                            ),
                            singleton(record(vec![
                                ("name", project(var("e"), "name")),
                                (
                                    "tasks",
                                    for_where(
                                        "t",
                                        table("tasks"),
                                        eq(
                                            project(var("t"), "employee"),
                                            project(var("e"), "name"),
                                        ),
                                        singleton(project(var("t"), "task")),
                                    ),
                                ),
                            ])),
                        ),
                        for_where(
                            "e",
                            table("employees"),
                            eq(project(var("e"), "dept"), project(var("d"), "name")),
                            singleton(record(vec![
                                ("name", project(var("e"), "name")),
                                ("tasks", singleton(string("buy"))),
                            ])),
                        ),
                    ),
                ),
            ])),
        );
        assert_all_paths_agree(&q);
    }

    #[test]
    fn emptiness_test_query_round_trips() {
        // Departments where every employee can do the "abstract" task.
        let q = for_where(
            "d",
            table("departments"),
            is_empty(for_where(
                "e",
                table("employees"),
                and(
                    eq(project(var("e"), "dept"), project(var("d"), "name")),
                    is_empty(for_where(
                        "t",
                        table("tasks"),
                        and(
                            eq(project(var("t"), "employee"), project(var("e"), "name")),
                            eq(project(var("t"), "task"), string("abstract")),
                        ),
                        singleton(var("t")),
                    )),
                ),
                singleton(var("e")),
            )),
            singleton(record(vec![("dept", project(var("d"), "name"))])),
        );
        assert_all_paths_agree(&q);
    }

    #[test]
    fn empty_result_bags_are_preserved() {
        // The Quality department has no employees; its inner bag must be empty
        // rather than missing.
        let q = for_in(
            "d",
            table("departments"),
            singleton(record(vec![
                ("dept", project(var("d"), "name")),
                (
                    "emps",
                    for_where(
                        "e",
                        table("employees"),
                        eq(project(var("e"), "dept"), project(var("d"), "name")),
                        singleton(project(var("e"), "name")),
                    ),
                ),
            ])),
        );
        let db = db();
        let engine = engine_from_database(&db).unwrap();
        let compiled = compile(&q, &schema()).unwrap();
        let v = execute(&compiled, &engine).unwrap();
        let quality = v
            .as_bag()
            .unwrap()
            .iter()
            .find(|r| r.field("dept") == Some(&Value::string("Quality")))
            .expect("Quality department present");
        assert_eq!(quality.field("emps"), Some(&Value::Bag(vec![])));
    }

    #[test]
    fn multiplicities_are_preserved_by_the_whole_pipeline() {
        // A union that produces duplicate people; bag semantics must keep both
        // copies (this is where Van den Bussche's simulation goes wrong).
        let q = for_in(
            "d",
            table("departments"),
            singleton(record(vec![
                ("dept", project(var("d"), "name")),
                (
                    "people",
                    union(
                        for_where(
                            "e",
                            table("employees"),
                            eq(project(var("e"), "dept"), project(var("d"), "name")),
                            singleton(project(var("e"), "name")),
                        ),
                        for_where(
                            "e",
                            table("employees"),
                            eq(project(var("e"), "dept"), project(var("d"), "name")),
                            singleton(project(var("e"), "name")),
                        ),
                    ),
                ),
            ])),
        );
        assert_all_paths_agree(&q);
    }

    #[test]
    fn compiled_query_exposes_sql_texts() {
        let compiled = compile(&department_employee_tasks(), &schema()).unwrap();
        let texts = compiled.sql_texts();
        assert_eq!(texts.len(), 3);
        assert!(texts[1].contains("WITH"));
        assert!(texts[2].contains("ROW_NUMBER"));
    }

    #[test]
    fn storage_round_trip_preserves_row_counts() {
        let db = db();
        let storage = storage_from_database(&db).unwrap();
        assert_eq!(storage.table("employees").unwrap().len(), 7);
        assert_eq!(storage.table("tasks").unwrap().len(), 14);
        assert_eq!(storage.total_rows(), db.total_rows());
    }
}
