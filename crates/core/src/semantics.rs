//! The semantics of shredded queries (Figure 5) and the indexing schemes of
//! Section 6: canonical, natural and flat indexes.
//!
//! This module is the *in-memory reference* implementation of shredded query
//! evaluation: it runs shredded queries directly over an [`nrc::Database`]
//! without going through SQL. The SQL path (let-insertion → SQL → engine)
//! must agree with it, and both must agree with the nested semantics after
//! stitching (Theorem 4); the test suites check those agreements.

use crate::error::ShredError;
use crate::nf::{Comprehension, NfBase, NfTerm, NormQuery, StaticIndex, TOP};
use crate::shred::{CompLevel, Package, ShBase, ShredComp, ShredInner, ShreddedQuery};
use nrc::env::Env;
use nrc::eval::apply_prim;
use nrc::schema::Database;
use nrc::term::Constant;
use nrc::value::Value;
use std::collections::HashMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Index values and schemes
// ---------------------------------------------------------------------------

/// Which indexing scheme to use when materialising indexes (Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexScheme {
    /// Canonical indexes `a ⋅ ι`: the static tag plus the full dynamic path of
    /// positions. Not directly representable in SQL without padding.
    Canonical,
    /// Flat indexes `⟨a, i⟩`: the dynamic path is replaced by its ordinal in
    /// the enumeration of all dynamic indexes for tag `a` (Section 6.2). This
    /// is what `ROW_NUMBER` implements on the SQL side.
    Flat,
    /// Natural indexes `⟨a, keys⟩`: the keys of all generator rows in scope
    /// (Section 6.1). Requires every table to declare a key.
    Natural,
}

impl IndexScheme {
    /// Every indexing scheme, for exhaustive comparisons and tests.
    pub const ALL: [IndexScheme; 3] = [
        IndexScheme::Canonical,
        IndexScheme::Flat,
        IndexScheme::Natural,
    ];
}

impl fmt::Display for IndexScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexScheme::Canonical => write!(f, "canonical"),
            IndexScheme::Flat => write!(f, "flat"),
            IndexScheme::Natural => write!(f, "natural"),
        }
    }
}

/// A concrete index value, under one of the three schemes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IndexValue {
    Canonical {
        tag: StaticIndex,
        path: Vec<usize>,
    },
    Flat {
        tag: StaticIndex,
        ordinal: i64,
    },
    Natural {
        tag: StaticIndex,
        keys: Vec<Constant>,
    },
}

impl IndexValue {
    /// The static component of the index.
    pub fn tag(&self) -> StaticIndex {
        match self {
            IndexValue::Canonical { tag, .. }
            | IndexValue::Flat { tag, .. }
            | IndexValue::Natural { tag, .. } => *tag,
        }
    }

    /// The top-level index ⊤⋅1 under the given scheme, used to start
    /// stitching.
    pub fn top(scheme: IndexScheme) -> IndexValue {
        match scheme {
            IndexScheme::Canonical => IndexValue::Canonical {
                tag: TOP,
                path: vec![1],
            },
            IndexScheme::Flat => IndexValue::Flat {
                tag: TOP,
                ordinal: 1,
            },
            IndexScheme::Natural => IndexValue::Natural {
                tag: TOP,
                keys: Vec::new(),
            },
        }
    }
}

impl fmt::Display for IndexValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexValue::Canonical { tag, path } => {
                write!(f, "{}·", tag)?;
                for (i, p) in path.iter().enumerate() {
                    if i > 0 {
                        write!(f, ".")?;
                    }
                    write!(f, "{}", p)?;
                }
                Ok(())
            }
            IndexValue::Flat { tag, ordinal } => write!(f, "⟨{}, {}⟩", tag, ordinal),
            IndexValue::Natural { tag, keys } => {
                write!(f, "⟨{}", tag)?;
                for k in keys {
                    write!(f, ", {}", k)?;
                }
                write!(f, "⟩")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Index tables: I⟦L⟧ and I♮⟦L⟧
// ---------------------------------------------------------------------------

/// One canonical index occurrence together with its natural-key counterpart.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexOccurrence {
    pub tag: StaticIndex,
    pub path: Vec<usize>,
    pub natural_keys: Vec<Constant>,
}

/// Precomputed index assignments for a query and database: the list `I⟦L⟧` of
/// canonical indexes (with natural keys alongside), the flat ordinal of each
/// canonical index and its natural key tuple.
#[derive(Debug, Clone, Default)]
pub struct IndexTables {
    pub occurrences: Vec<IndexOccurrence>,
    flat: HashMap<(StaticIndex, Vec<usize>), i64>,
    natural: HashMap<(StaticIndex, Vec<usize>), Vec<Constant>>,
    natural_available: bool,
}

impl IndexTables {
    /// Compute the index tables for an annotated normalised query over a
    /// database (the functions `I⟦−⟧` and `I♮⟦−⟧` of the paper).
    pub fn compute(query: &NormQuery, db: &Database) -> Result<IndexTables, ShredError> {
        let mut builder = IndexWalk {
            db,
            occurrences: Vec::new(),
            natural_available: true,
        };
        builder.walk_query(query, &Env::empty(), &[1], &[])?;
        let mut tables = IndexTables {
            occurrences: builder.occurrences,
            flat: HashMap::new(),
            natural: HashMap::new(),
            natural_available: builder.natural_available,
        };
        let mut per_tag_counter: HashMap<StaticIndex, i64> = HashMap::new();
        for occ in &tables.occurrences {
            let counter = per_tag_counter.entry(occ.tag).or_insert(0);
            *counter += 1;
            tables.flat.insert((occ.tag, occ.path.clone()), *counter);
            tables
                .natural
                .insert((occ.tag, occ.path.clone()), occ.natural_keys.clone());
        }
        Ok(tables)
    }

    /// The concrete index of a canonical index under a scheme.
    pub fn concrete(
        &self,
        scheme: IndexScheme,
        tag: StaticIndex,
        path: &[usize],
    ) -> Result<IndexValue, ShredError> {
        if tag == TOP {
            return Ok(IndexValue::top(scheme));
        }
        match scheme {
            IndexScheme::Canonical => Ok(IndexValue::Canonical {
                tag,
                path: path.to_vec(),
            }),
            IndexScheme::Flat => {
                let ordinal = self
                    .flat
                    .get(&(tag, path.to_vec()))
                    .copied()
                    .ok_or_else(|| {
                        ShredError::InvalidIndexing(format!(
                            "canonical index {}·{:?} was not enumerated",
                            tag, path
                        ))
                    })?;
                Ok(IndexValue::Flat { tag, ordinal })
            }
            IndexScheme::Natural => {
                if !self.natural_available {
                    return Err(ShredError::MissingKey(
                        "a table referenced by the query has no declared key".to_string(),
                    ));
                }
                let keys = self
                    .natural
                    .get(&(tag, path.to_vec()))
                    .cloned()
                    .ok_or_else(|| {
                        ShredError::InvalidIndexing(format!(
                            "canonical index {}·{:?} was not enumerated",
                            tag, path
                        ))
                    })?;
                Ok(IndexValue::Natural { tag, keys })
            }
        }
    }

    /// Is the scheme valid for this query (Section 6): injective on the
    /// canonical indexes that were enumerated?
    pub fn is_valid(&self, scheme: IndexScheme) -> bool {
        let mut seen = std::collections::HashSet::new();
        for occ in &self.occurrences {
            let concrete = match self.concrete(scheme, occ.tag, &occ.path) {
                Ok(c) => c,
                Err(_) => return false,
            };
            if !seen.insert(concrete) {
                return false;
            }
        }
        true
    }
}

struct IndexWalk<'a> {
    db: &'a Database,
    occurrences: Vec<IndexOccurrence>,
    natural_available: bool,
}

impl<'a> IndexWalk<'a> {
    fn walk_query(
        &mut self,
        query: &NormQuery,
        env: &Env,
        iota: &[usize],
        keys: &[Constant],
    ) -> Result<(), ShredError> {
        for branch in &query.branches {
            self.walk_comprehension(branch, env, iota, keys)?;
        }
        Ok(())
    }

    fn walk_comprehension(
        &mut self,
        comp: &Comprehension,
        env: &Env,
        iota: &[usize],
        keys: &[Constant],
    ) -> Result<(), ShredError> {
        let combos = satisfying_bindings(&comp.generators, &comp.condition, env, self.db)?;
        for (j, rows) in combos.iter().enumerate() {
            let mut inner_env = env.clone();
            let mut inner_keys = keys.to_vec();
            for (gen, row) in comp.generators.iter().zip(rows.iter()) {
                inner_env.push(&gen.var, row.clone());
                match row_key(self.db, &gen.table, row)? {
                    Some(mut ks) => inner_keys.append(&mut ks),
                    None => self.natural_available = false,
                }
            }
            let mut path = iota.to_vec();
            path.push(j + 1);
            self.occurrences.push(IndexOccurrence {
                tag: comp.tag,
                path: path.clone(),
                natural_keys: inner_keys.clone(),
            });
            self.walk_term(&comp.body, &inner_env, &path, &inner_keys)?;
        }
        Ok(())
    }

    fn walk_term(
        &mut self,
        term: &NfTerm,
        env: &Env,
        iota: &[usize],
        keys: &[Constant],
    ) -> Result<(), ShredError> {
        match term {
            NfTerm::Base(_) => Ok(()),
            NfTerm::Record(fields) => {
                for (_, t) in fields {
                    self.walk_term(t, env, iota, keys)?;
                }
                Ok(())
            }
            NfTerm::Query(q) => self.walk_query(q, env, iota, keys),
        }
    }
}

/// The key column values of a row, if the table declares a key.
fn row_key(db: &Database, table: &str, row: &Value) -> Result<Option<Vec<Constant>>, ShredError> {
    let schema = db
        .schema
        .table(table)
        .ok_or_else(|| ShredError::Internal(format!("unknown table {} during indexing", table)))?;
    if !schema.has_key() {
        return Ok(None);
    }
    let mut keys = Vec::with_capacity(schema.key.len());
    for column in &schema.key {
        let v = row
            .field(column)
            .ok_or_else(|| ShredError::Internal(format!("row missing key column {}", column)))?;
        keys.push(value_to_constant(v)?);
    }
    Ok(Some(keys))
}

fn value_to_constant(v: &Value) -> Result<Constant, ShredError> {
    match v {
        Value::Int(i) => Ok(Constant::Int(*i)),
        Value::Bool(b) => Ok(Constant::Bool(*b)),
        Value::String(s) => Ok(Constant::String(s.to_string())),
        Value::Unit => Ok(Constant::Unit),
        other => Err(ShredError::Internal(format!(
            "non-base value {} used as an index key",
            other
        ))),
    }
}

/// Enumerate the bindings of a comprehension level: every combination of rows
/// from the generators' tables (in canonical table order, outer generator
/// slowest) for which the condition holds.
fn satisfying_bindings(
    generators: &[crate::nf::Generator],
    condition: &NfBase,
    env: &Env,
    db: &Database,
) -> Result<Vec<Vec<Value>>, ShredError> {
    let tables: Vec<Vec<Value>> = generators
        .iter()
        .map(|g| {
            db.table_rows(&g.table).map_err(|_| {
                ShredError::Internal(format!("unknown table {} during evaluation", g.table))
            })
        })
        .collect::<Result<_, _>>()?;
    let mut out = Vec::new();
    let mut current: Vec<Value> = Vec::with_capacity(generators.len());
    enumerate(&tables, 0, &mut current, &mut |rows| {
        let mut env2 = env.clone();
        for (gen, row) in generators.iter().zip(rows.iter()) {
            env2.push(&gen.var, row.clone());
        }
        let keep = eval_nf_base(condition, &env2, db)?
            .as_bool()
            .ok_or_else(|| {
                ShredError::Internal("where clause did not evaluate to a boolean".to_string())
            })?;
        if keep {
            out.push(rows.to_vec());
        }
        Ok(())
    })?;
    Ok(out)
}

fn enumerate(
    tables: &[Vec<Value>],
    depth: usize,
    current: &mut Vec<Value>,
    visit: &mut impl FnMut(&[Value]) -> Result<(), ShredError>,
) -> Result<(), ShredError> {
    if depth == tables.len() {
        return visit(current);
    }
    for row in &tables[depth] {
        current.push(row.clone());
        enumerate(tables, depth + 1, current, visit)?;
        current.pop();
    }
    Ok(())
}

/// Evaluate a normal-form base expression under an environment.
pub fn eval_nf_base(base: &NfBase, env: &Env, db: &Database) -> Result<Value, ShredError> {
    match base {
        NfBase::Proj { var, field } => {
            let v = env
                .lookup(var)
                .ok_or_else(|| ShredError::Internal(format!("unbound variable {}", var)))?;
            v.field(field)
                .cloned()
                .ok_or_else(|| ShredError::Internal(format!("no field {} in {}", field, v)))
        }
        NfBase::Const(c) => Ok(Value::from_constant(c)),
        // The in-memory evaluators bind parameters by substitution before
        // evaluation; reaching one here means no binding was supplied.
        NfBase::Param(name, ty) => Err(ShredError::MissingParam {
            name: name.clone(),
            expected: *ty,
        }),
        NfBase::Prim(op, args) => {
            let vals = args
                .iter()
                .map(|a| eval_nf_base(a, env, db))
                .collect::<Result<Vec<_>, _>>()?;
            apply_prim(*op, &vals).map_err(ShredError::Eval)
        }
        NfBase::IsEmpty(q) => {
            let empty = norm_query_is_empty(q, env, db)?;
            Ok(Value::Bool(empty))
        }
    }
}

/// Is a normalised query empty under the given environment? (Used for `empty`
/// tests in conditions, where only emptiness matters.)
fn norm_query_is_empty(query: &NormQuery, env: &Env, db: &Database) -> Result<bool, ShredError> {
    for branch in &query.branches {
        if !satisfying_bindings(&branch.generators, &branch.condition, env, db)?.is_empty() {
            return Ok(false);
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Shredded values and shredded query evaluation
// ---------------------------------------------------------------------------

/// A flat value produced by a shredded query: a base value, a flat record, or
/// an index standing for a nested bag.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatValue {
    Base(Value),
    Record(Vec<(String, FlatValue)>),
    Index(IndexValue),
}

impl FlatValue {
    /// Project a field of a record flat value.
    pub fn field(&self, label: &str) -> Option<&FlatValue> {
        match self {
            FlatValue::Record(fields) => fields.iter().find(|(l, _)| l == label).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl fmt::Display for FlatValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatValue::Base(v) => write!(f, "{}", v),
            FlatValue::Record(fields) => {
                write!(f, "<")?;
                for (i, (l, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} = {}", l, v)?;
                }
                write!(f, ">")
            }
            FlatValue::Index(i) => write!(f, "{}", i),
        }
    }
}

/// The result of one shredded query: a list of ⟨outer index, flat value⟩
/// pairs.
pub type ShredResult = Vec<(IndexValue, FlatValue)>;

/// Evaluate a shredded query over a database (Figure 5), materialising
/// indexes with the given scheme.
pub fn eval_shredded(
    query: &ShreddedQuery,
    db: &Database,
    scheme: IndexScheme,
    tables: &IndexTables,
) -> Result<ShredResult, ShredError> {
    eval_shredded_in(query, db, scheme, tables, &Env::empty())
}

fn eval_shredded_in(
    query: &ShreddedQuery,
    db: &Database,
    scheme: IndexScheme,
    tables: &IndexTables,
    env: &Env,
) -> Result<ShredResult, ShredError> {
    let mut out = Vec::new();
    for branch in &query.branches {
        eval_levels(branch, 0, env, &mut vec![1], db, scheme, tables, &mut out)?;
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn eval_levels(
    comp: &ShredComp,
    depth: usize,
    env: &Env,
    iota: &mut Vec<usize>,
    db: &Database,
    scheme: IndexScheme,
    tables: &IndexTables,
    out: &mut ShredResult,
) -> Result<(), ShredError> {
    if depth == comp.levels.len() {
        // returnᵇ ⟨a⋅out, N⟩
        let outer_path = &iota[..iota.len() - 1];
        let outer = tables.concrete(scheme, comp.outer_tag, outer_path)?;
        let inner = eval_inner(&comp.inner, comp.tag, iota, env, db, scheme, tables)?;
        out.push((outer, inner));
        return Ok(());
    }
    let level: &CompLevel = &comp.levels[depth];
    let combos = satisfying_sh_bindings(level, env, db, scheme, tables)?;
    for (j, rows) in combos.iter().enumerate() {
        let mut env2 = env.clone();
        for (gen, row) in level.generators.iter().zip(rows.iter()) {
            env2.push(&gen.var, row.clone());
        }
        iota.push(j + 1);
        eval_levels(comp, depth + 1, &env2, iota, db, scheme, tables, out)?;
        iota.pop();
    }
    Ok(())
}

fn satisfying_sh_bindings(
    level: &CompLevel,
    env: &Env,
    db: &Database,
    scheme: IndexScheme,
    tables: &IndexTables,
) -> Result<Vec<Vec<Value>>, ShredError> {
    let table_rows: Vec<Vec<Value>> = level
        .generators
        .iter()
        .map(|g| {
            db.table_rows(&g.table).map_err(|_| {
                ShredError::Internal(format!("unknown table {} during evaluation", g.table))
            })
        })
        .collect::<Result<_, _>>()?;
    let mut out = Vec::new();
    let mut current: Vec<Value> = Vec::with_capacity(level.generators.len());
    enumerate(&table_rows, 0, &mut current, &mut |rows| {
        let mut env2 = env.clone();
        for (gen, row) in level.generators.iter().zip(rows.iter()) {
            env2.push(&gen.var, row.clone());
        }
        let keep = eval_sh_base(&level.condition, &env2, db, scheme, tables)?
            .as_bool()
            .ok_or_else(|| {
                ShredError::Internal("where clause did not evaluate to a boolean".to_string())
            })?;
        if keep {
            out.push(rows.to_vec());
        }
        Ok(())
    })?;
    Ok(out)
}

#[allow(clippy::only_used_in_recursion)]
fn eval_inner(
    inner: &ShredInner,
    tag: StaticIndex,
    iota: &[usize],
    env: &Env,
    db: &Database,
    scheme: IndexScheme,
    tables: &IndexTables,
) -> Result<FlatValue, ShredError> {
    match inner {
        ShredInner::Base(b) => Ok(FlatValue::Base(eval_sh_base(b, env, db, scheme, tables)?)),
        ShredInner::Record(fields) => Ok(FlatValue::Record(
            fields
                .iter()
                .map(|(l, v)| {
                    Ok((
                        l.clone(),
                        eval_inner(v, tag, iota, env, db, scheme, tables)?,
                    ))
                })
                .collect::<Result<_, ShredError>>()?,
        )),
        ShredInner::InnerIndex(inner_tag) => {
            Ok(FlatValue::Index(tables.concrete(scheme, *inner_tag, iota)?))
        }
    }
}

#[allow(clippy::only_used_in_recursion)]
fn eval_sh_base(
    base: &ShBase,
    env: &Env,
    db: &Database,
    scheme: IndexScheme,
    tables: &IndexTables,
) -> Result<Value, ShredError> {
    match base {
        ShBase::Proj { var, field } => {
            let v = env
                .lookup(var)
                .ok_or_else(|| ShredError::Internal(format!("unbound variable {}", var)))?;
            v.field(field)
                .cloned()
                .ok_or_else(|| ShredError::Internal(format!("no field {} in {}", field, v)))
        }
        ShBase::Const(c) => Ok(Value::from_constant(c)),
        ShBase::Param(name, ty) => Err(ShredError::MissingParam {
            name: name.clone(),
            expected: *ty,
        }),
        ShBase::Prim(op, args) => {
            let vals = args
                .iter()
                .map(|a| eval_sh_base(a, env, db, scheme, tables))
                .collect::<Result<Vec<_>, _>>()?;
            apply_prim(*op, &vals).map_err(ShredError::Eval)
        }
        ShBase::IsEmpty(q) => {
            // Only emptiness matters; indexes inside the subquery are unused.
            let rows = eval_shredded_in(q, db, IndexScheme::Canonical, tables, env)?;
            Ok(Value::Bool(rows.is_empty()))
        }
    }
}

/// Evaluate every query in a shredded package (`H⟦L⟧` in the paper).
pub fn eval_shredded_package(
    package: &Package<ShreddedQuery>,
    db: &Database,
    scheme: IndexScheme,
    tables: &IndexTables,
) -> Result<Package<ShredResult>, ShredError> {
    package.try_map(&mut |q| eval_shredded(q, db, scheme, tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalise::normalise;
    use crate::shred::shred_query_package;
    use nrc::builder::*;
    use nrc::schema::{Schema, TableSchema};
    use nrc::types::BaseType;

    fn schema() -> Schema {
        Schema::new()
            .with_table(
                TableSchema::new(
                    "departments",
                    vec![("id", BaseType::Int), ("name", BaseType::String)],
                )
                .with_key(vec!["id"]),
            )
            .with_table(
                TableSchema::new(
                    "employees",
                    vec![
                        ("id", BaseType::Int),
                        ("dept", BaseType::String),
                        ("name", BaseType::String),
                        ("salary", BaseType::Int),
                    ],
                )
                .with_key(vec!["id"]),
            )
    }

    fn db() -> Database {
        let mut db = Database::new(schema());
        for (id, name) in [(1, "Product"), (2, "Sales")] {
            db.insert_row(
                "departments",
                vec![("id", Value::Int(id)), ("name", Value::string(name))],
            )
            .unwrap();
        }
        for (id, dept, name, salary) in [
            (1, "Product", "Alex", 20000),
            (2, "Product", "Bert", 900),
            (3, "Sales", "Erik", 2000000),
        ] {
            db.insert_row(
                "employees",
                vec![
                    ("id", Value::Int(id)),
                    ("dept", Value::string(dept)),
                    ("name", Value::string(name)),
                    ("salary", Value::Int(salary)),
                ],
            )
            .unwrap();
        }
        db
    }

    fn nested_query() -> nrc::Term {
        // for (d ← departments) return ⟨dept = d.name,
        //   emps = for (e ← employees) where (e.dept = d.name) return e.name⟩
        for_in(
            "d",
            table("departments"),
            singleton(record(vec![
                ("dept", project(var("d"), "name")),
                (
                    "emps",
                    for_where(
                        "e",
                        table("employees"),
                        eq(project(var("e"), "dept"), project(var("d"), "name")),
                        singleton(project(var("e"), "name")),
                    ),
                ),
            ])),
        )
    }

    #[test]
    fn index_tables_enumerate_all_occurrences() {
        let schema = schema();
        let db = db();
        let q = normalise(&nested_query(), &schema).unwrap();
        let tables = IndexTables::compute(&q, &db).unwrap();
        // 2 departments at the outer tag + 3 matching employees at the inner
        // tag = 5 occurrences.
        assert_eq!(tables.occurrences.len(), 5);
        assert!(tables.is_valid(IndexScheme::Canonical));
        assert!(tables.is_valid(IndexScheme::Flat));
        assert!(tables.is_valid(IndexScheme::Natural));
    }

    #[test]
    fn flat_ordinals_are_dense_per_tag() {
        let schema = schema();
        let db = db();
        let q = normalise(&nested_query(), &schema).unwrap();
        let tables = IndexTables::compute(&q, &db).unwrap();
        let mut per_tag: HashMap<StaticIndex, Vec<i64>> = HashMap::new();
        for occ in &tables.occurrences {
            let v = tables
                .concrete(IndexScheme::Flat, occ.tag, &occ.path)
                .unwrap();
            if let IndexValue::Flat { ordinal, .. } = v {
                per_tag.entry(occ.tag).or_default().push(ordinal);
            }
        }
        for ordinals in per_tag.values() {
            let mut sorted = ordinals.clone();
            sorted.sort();
            assert_eq!(sorted, (1..=ordinals.len() as i64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shredded_evaluation_produces_linked_results() {
        let schema = schema();
        let db = db();
        let ty = nrc::typecheck(&nested_query(), &schema).unwrap();
        let q = normalise(&nested_query(), &schema).unwrap();
        let tables = IndexTables::compute(&q, &db).unwrap();
        let pkg = shred_query_package(&q, &ty).unwrap();
        let results = eval_shredded_package(&pkg, &db, IndexScheme::Flat, &tables).unwrap();
        let annots = results.annotations();
        assert_eq!(annots.len(), 2);
        let outer = annots[0];
        let inner = annots[1];
        assert_eq!(outer.len(), 2); // one row per department
        assert_eq!(inner.len(), 3); // one row per matching employee
                                    // Every inner index referenced by the outer query appears as an outer
                                    // index of some inner row.
        for (_, fv) in outer {
            let idx = fv.field("emps").expect("emps field");
            if let FlatValue::Index(i) = idx {
                assert!(inner.iter().any(|(outer_idx, _)| outer_idx == i));
            } else {
                panic!("emps should be an index, got {:?}", idx);
            }
        }
    }

    #[test]
    fn natural_indexes_use_key_columns() {
        let schema = schema();
        let db = db();
        let q = normalise(&nested_query(), &schema).unwrap();
        let tables = IndexTables::compute(&q, &db).unwrap();
        let occ = tables
            .occurrences
            .iter()
            .find(|o| o.path.len() == 3)
            .expect("an inner occurrence");
        let v = tables
            .concrete(IndexScheme::Natural, occ.tag, &occ.path)
            .unwrap();
        match v {
            IndexValue::Natural { keys, .. } => assert_eq!(keys.len(), 2), // department id + employee id
            other => panic!("expected natural index, got {:?}", other),
        }
    }

    #[test]
    fn top_index_is_fixed_per_scheme() {
        assert_eq!(
            IndexValue::top(IndexScheme::Flat),
            IndexValue::Flat {
                tag: TOP,
                ordinal: 1
            }
        );
        assert_eq!(
            IndexValue::top(IndexScheme::Canonical),
            IndexValue::Canonical {
                tag: TOP,
                path: vec![1]
            }
        );
    }
}
