//! The `Shredder` session API: the front door of the crate.
//!
//! A [`Shredder`] is a configured query session. It owns the schema, the
//! (optional) database, a lazily built SQL engine, a pluggable execution
//! backend ([`SqlBackend`]) and an LRU plan cache keyed on normalised terms.
//! The session lifecycle mirrors the staged planner lifecycles of production
//! query engines:
//!
//! ```text
//! Shredder::builder() … .build()      configure: schema, data, backend, indexes
//!   │
//!   ├─ prepare(term)  ──▶ PreparedQuery   auto-param → normalise → (cache?) → plan
//!   │       │                              │
//!   │       ├─ explain()                   per-stage SQL, layouts, indexes
//!   │       └─ params()                    declared bind variables (name : type)
//!   │
//!   ├─ execute(&prepared)            ──▶ Value   execution with default bindings
//!   ├─ execute_bound(&prepared, &p)  ──▶ Value   execution with explicit bindings
//!   ├─ run(term)            = prepare + execute
//!   ├─ oracle(term)         = the nested reference semantics N⟦−⟧ (ground truth)
//!   └─ oracle_bound(term,p) = N⟦−⟧ under a parameter binding environment
//! ```
//!
//! Queries may declare typed **parameters** (bind variables) — explicitly
//! with [`nrc::builder::param`], or implicitly via the session's
//! auto-parameterization, which lifts integer and string literals out of
//! ad-hoc terms so queries differing only in such constants share one
//! cached plan. The plan cache is keyed on the *param-shape* normal form;
//! re-executing a prepared shape with fresh bindings performs zero parsing,
//! shredding, SQL generation or physical planning.
//!
//! Two backends ship with this crate: [`SqlEngineBackend`] (shred to SQL,
//! execute on the in-memory `sqlengine`, stitch — the paper's Figure 1(c))
//! and [`ShreddedMemoryBackend`] (the shredded semantics of Figure 5 under a
//! chosen [`IndexScheme`], no SQL involved). [`NestedOracleBackend`] runs the
//! nested reference semantics directly and is the correctness oracle the
//! other backends are validated against. The `baselines` crate implements the
//! paper's comparison systems (loop-lifting, Links' default flat evaluation,
//! Van den Bussche's simulation) as further backends.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

use crate::delta::{LiveView, StorageDelta, Subscription, WriteBatch};
use crate::error::ShredError;
use crate::flatten::{value_to_sql, ResultLayout};
use crate::nf::NormQuery;
use crate::normalise::normalise_with_type_obs;
use crate::pipeline::{self, CompiledQuery};
use crate::semantics::{eval_shredded_package, IndexScheme, IndexTables};
use crate::shred::{package_by, shred_query, shred_type, Package, ShreddedQuery};
use crate::stitch::stitch_rows;
use crate::verify;
use analysis::{lint, Diagnostics};
use nrc::schema::{Database, Schema};
use nrc::term::{Constant, Term};
use nrc::types::{BaseType, Type};
use nrc::value::Value;
use obs::{
    MetricsRegistry, MetricsSnapshot, ObsSink, QueryObs, QueryProfile, RingSink, Span, Stage,
};
use sqlengine::Engine;

/// Default number of plans the session keeps cached.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

// ---------------------------------------------------------------------------
// Parameters and bindings
// ---------------------------------------------------------------------------

/// One declared parameter of a prepared query: its name and base type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    /// The parameter's name (without the `?` / `:` sigil).
    pub name: String,
    /// The parameter's declared base type.
    pub ty: BaseType,
}

impl fmt::Display for ParamSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{} : {}", self.name, self.ty)
    }
}

/// A set of named parameter bindings, built fluently and passed to
/// [`Shredder::execute_bound`]:
///
/// ```
/// use shredding::session::Params;
/// use nrc::value::Value;
/// let params = Params::new()
///     .bind("dpt", "Sales")
///     .bind("cutoff", 1000i64);
/// assert_eq!(params.get("cutoff"), Some(&Value::Int(1000)));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    values: Vec<(String, Value)>,
}

impl Params {
    /// An empty binding set.
    pub fn new() -> Params {
        Params::default()
    }

    /// Bind `name` to a value, replacing any earlier binding of the same
    /// name. Accepts anything convertible into a [`Value`] (`i64`, `bool`,
    /// `&str`, `String`, or a `Value` itself).
    pub fn bind(mut self, name: &str, value: impl Into<Value>) -> Params {
        self.set(name, value);
        self
    }

    /// Non-consuming version of [`bind`](Params::bind).
    pub fn set(&mut self, name: &str, value: impl Into<Value>) {
        let value = value.into();
        match self.values.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.values.push((name.to_string(), value)),
        }
    }

    /// The bound value of a name, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Iterate over the bindings in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.values.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Is the binding set empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Fully resolved parameter values handed to a backend's `execute`: one
/// type-checked value per declared parameter of the plan. Produced by the
/// session from the prepared query's defaults overlaid with the caller's
/// [`Params`]; backends never see missing or mistyped bindings.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    values: Vec<(String, Value)>,
}

impl Bindings {
    /// No bindings (for parameter-free plans).
    pub fn none() -> Bindings {
        Bindings::default()
    }

    /// The bound value of a name, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Are there no bindings?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.values.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// The bindings as engine-level SQL parameter values (for backends that
    /// ship plans with `:name` slots to the vectorized executor).
    pub fn to_sql_params(&self) -> Result<sqlengine::ParamValues, ShredError> {
        let mut out = sqlengine::ParamValues::new();
        for (name, value) in &self.values {
            out.insert(name.clone(), value_to_sql(value)?);
        }
        Ok(out)
    }

    /// The bindings as constants (for backends that substitute parameters
    /// into terms or normal forms before evaluating).
    pub fn to_constants(&self) -> HashMap<String, Constant> {
        self.values
            .iter()
            .filter_map(|(n, v)| v.as_constant().map(|c| (n.clone(), c)))
            .collect()
    }

    /// The bindings as a λNRC evaluation parameter environment.
    pub fn to_value_map(&self) -> nrc::ParamBindings {
        self.values
            .iter()
            .map(|(n, v)| (n.clone(), v.clone()))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The backend trait
// ---------------------------------------------------------------------------

/// Everything a backend may consult while planning a query. The session
/// normalises the term once (also deriving the plan-cache key from the
/// normal form) and hands both the source term and the normal form over.
pub struct PlanRequest<'a> {
    /// The original λNRC term (after auto-parameterization, when enabled).
    pub term: &'a Term,
    /// Its normal form (Theorem 1: semantically equivalent to `term`).
    pub normalised: &'a NormQuery,
    /// The query's result type (always a bag type).
    pub result_type: &'a Type,
    /// The flat source schema Σ.
    pub schema: &'a Schema,
    /// The declared parameters of the normal form, deduplicated and
    /// conflict-checked.
    pub params: &'a [ParamSpec],
    /// Default bindings extracted by auto-parameterization (the literals
    /// that were lifted out of the term); empty when the caller wrote
    /// explicit parameters or auto-parameterization is off.
    pub defaults: &'a Params,
    /// The session's per-call span collector, when stage tracing is active.
    /// SQL-compiling backends record `Shred`/`Sqlgen`/`Plan` spans into it
    /// (e.g. via [`pipeline::compile_normalised_obs`]); backends that ignore
    /// it simply produce plans without compile-phase spans.
    pub obs: Option<&'a QueryObs>,
    /// Whether plan-producing backends should run the logical optimizer
    /// over their compiled plans (see [`ShredderBuilder::optimize`]).
    /// Backends without an optimizer ignore it.
    pub optimize: bool,
}

/// Execution-time context handed to a backend: the session's database, index
/// scheme and lazily built SQL engine.
pub struct ExecContext<'a> {
    db: Option<&'a Database>,
    scheme: IndexScheme,
    engine: &'a OnceLock<Arc<Engine>>,
    engine_init: &'a Mutex<()>,
    obs: Option<&'a QueryObs>,
    exec_opts: sqlengine::ExecOptions,
}

impl<'a> ExecContext<'a> {
    /// The session's execution options: worker count and morsel size for
    /// the morsel-parallel executor ([`ShredderBuilder::workers`],
    /// [`ShredderBuilder::morsel_rows`]). Backends that execute physical
    /// plans pass these through to the engine's `_opts` entry points;
    /// `workers == 1` is the sequential executor.
    pub fn exec_opts(&self) -> sqlengine::ExecOptions {
        self.exec_opts
    }

    /// The session's per-call span collector, when stage tracing is active
    /// for this execute call. Backends record `Execute`/`Decode`/`Stitch`
    /// spans into it (conveniently via [`obs::time_maybe`]); when it also
    /// requests operator profiling, SQL backends run the instrumented
    /// executor and push per-plan-node actuals.
    pub fn obs(&self) -> Option<&'a QueryObs> {
        self.obs
    }
    /// The session's database, or a configuration error if the session was
    /// built from a schema alone.
    pub fn db(&self) -> Result<&'a Database, ShredError> {
        self.db.ok_or_else(|| {
            ShredError::Config(
                "this session has no database; attach one with ShredderBuilder::database".into(),
            )
        })
    }

    /// The session's indexing scheme.
    pub fn scheme(&self) -> IndexScheme {
        self.scheme
    }

    /// The session's SQL engine, loading the database into engine storage on
    /// first use. Thread-safe: the one-time load is serialised by an init
    /// mutex (double-checked against the `OnceLock`), so a cold concurrent
    /// first execution loads the database exactly once; a failed load
    /// releases the lock and lets the next caller retry. Every later call
    /// returns the cached engine without locking.
    pub fn engine(&self) -> Result<&'a Engine, ShredError> {
        if let Some(engine) = self.engine.get() {
            return Ok(engine);
        }
        let _guard = self
            .engine_init
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if self.engine.get().is_none() {
            let built = Arc::new(pipeline::engine_from_database(self.db()?)?);
            let _ = self.engine.set(built);
        }
        Ok(self
            .engine
            .get()
            .expect("engine cell just populated")
            .as_ref())
    }
}

/// A pluggable execution strategy: how a normalised λNRC query is planned
/// and evaluated. Implementations ship with this crate ([`SqlEngineBackend`],
/// [`ShreddedMemoryBackend`], [`NestedOracleBackend`]) and with the
/// `baselines` crate (loop-lifting, Links' default flat evaluation, Van den
/// Bussche's simulation).
///
/// Backends are `Send + Sync`: one backend instance is shared by every clone
/// of the session, and `prepare`/`execute` may be called from any number of
/// threads at once. Backends therefore keep no per-call mutable state — all
/// of the provided implementations are stateless unit structs — and their
/// plan payloads must be `Send + Sync` too (enforced by
/// [`BackendPlan::new`]).
pub trait SqlBackend: fmt::Debug + Send + Sync {
    /// A short stable name, shown by `explain()` and used to guard against
    /// executing a plan on the wrong session.
    fn name(&self) -> &'static str;

    /// Translate a normalised query into a backend plan. Called once per
    /// distinct param-shape normal form when the plan cache is enabled —
    /// queries differing only in bound constants share one plan.
    fn prepare(&self, req: &PlanRequest<'_>) -> Result<BackendPlan, ShredError>;

    /// Evaluate a plan produced by `prepare` against the session's data,
    /// with a fully resolved value for every parameter the plan declares.
    /// `bindings` is empty for parameter-free plans.
    fn execute(
        &self,
        plan: &BackendPlan,
        cx: &ExecContext<'_>,
        bindings: &Bindings,
    ) -> Result<Value, ShredError>;
}

/// One per-stage entry of a plan's `explain()` output: the path of the bag
/// constructor it evaluates, the SQL text (for SQL-producing backends), the
/// physical plan the engine will run and the flat column layout used to
/// decode its rows.
#[derive(Debug, Clone)]
pub struct StageExplain {
    /// The path of the result type's bag constructor this stage computes.
    pub path: String,
    /// The SQL text shipped to the engine, if the backend compiles to SQL.
    pub sql: Option<String>,
    /// The rendered physical plan (scans, join strategy and build sides,
    /// filters, row-numbering), for backends that pre-plan execution.
    pub physical: Option<String>,
    /// The flat columns of the stage's result (indexes first, then data).
    pub columns: Vec<String>,
    /// What the logical optimizer did to this stage's plan, one line per
    /// rewrite (constant folding, `EXISTS` decorrelation, predicate
    /// pushdown, build-side re-choice, cross-stage CSE). Empty when the
    /// backend does not optimize or nothing fired.
    pub rewrites: Vec<String>,
}

/// A backend-specific plan: human-readable per-stage information plus an
/// opaque payload the backend downcasts at execution time.
///
/// Plans are immutable after `prepare` and shared by `Arc` — between the
/// plan cache, every [`PreparedQuery`] handle and every thread executing
/// one — so the payload must be `Send + Sync`.
pub struct BackendPlan {
    /// Per-stage explain entries, outermost bag constructor first.
    pub stages: Vec<StageExplain>,
    payload: Arc<dyn Any + Send + Sync>,
}

impl BackendPlan {
    /// Wrap a backend-specific payload together with its explain stages.
    pub fn new<T: Any + Send + Sync>(stages: Vec<StageExplain>, payload: T) -> BackendPlan {
        BackendPlan {
            stages,
            payload: Arc::new(payload),
        }
    }

    /// Recover the typed payload stored by `prepare`.
    pub fn downcast<T: 'static>(&self) -> Result<&T, ShredError> {
        self.payload
            .downcast_ref::<T>()
            .ok_or_else(|| ShredError::Internal("backend plan payload has the wrong type".into()))
    }
}

impl fmt::Debug for BackendPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackendPlan")
            .field("stages", &self.stages)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Prepared queries and explain output
// ---------------------------------------------------------------------------

/// A query prepared by a [`Shredder`] session: the backend plan plus enough
/// metadata to explain and to re-execute it without recompiling.
///
/// A prepared query may declare **parameters** (bind variables), either
/// written explicitly with `nrc::builder::param` or lifted out of literal
/// constants by the session's auto-parameterization. Re-executing the same
/// prepared shape with different bindings does zero parsing, shredding, SQL
/// generation or physical planning:
///
/// ```
/// use nrc::builder::*;
/// use shredding::session::{Params, Shredder};
/// # use nrc::schema::{Database, Schema, TableSchema};
/// # use nrc::types::BaseType;
/// # use nrc::value::Value;
/// # let schema = Schema::new().with_table(
/// #     TableSchema::new("items", vec![("id", BaseType::Int)]).with_key(vec!["id"]));
/// # let mut db = Database::new(schema);
/// # db.insert_row("items", vec![("id", Value::Int(1))]).unwrap();
/// # db.insert_row("items", vec![("id", Value::Int(2))]).unwrap();
/// let session = Shredder::builder().database(db).build().unwrap();
/// let query = for_where(
///     "x",
///     table("items"),
///     eq(project(var("x"), "id"), int_param("wanted")),
///     singleton(project(var("x"), "id")),
/// );
/// let prepared = session.prepare(&query).unwrap();
/// assert_eq!(prepared.params().len(), 1);
/// let one = session
///     .execute_bound(&prepared, &Params::new().bind("wanted", 1i64))
///     .unwrap();
/// let two = session
///     .execute_bound(&prepared, &Params::new().bind("wanted", 2i64))
///     .unwrap();
/// assert_eq!(one, Value::bag(vec![Value::Int(1)]));
/// assert_eq!(two, Value::bag(vec![Value::Int(2)]));
/// ```
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    backend: &'static str,
    scheme: IndexScheme,
    schema: Arc<Schema>,
    normalised: Arc<NormQuery>,
    result_type: Arc<Type>,
    plan: Arc<BackendPlan>,
    params: Arc<Vec<ParamSpec>>,
    defaults: Arc<Params>,
    diagnostics: Arc<Diagnostics>,
    from_cache: bool,
    /// Spans recorded while preparing this handle (typecheck/normalise and,
    /// on cache misses, shred/sqlgen/plan/verify).
    prepare_spans: Arc<Vec<Span>>,
    /// Per-stage, per-node actuals of the most recent *profiled* execution
    /// of this handle, shared across clones (plans are immutable, so the
    /// actuals ride in a side slot rather than on the plan itself).
    last_exec: Arc<Mutex<Option<Vec<Vec<sqlengine::OpActuals>>>>>,
    /// Plan-cache counters captured when this handle was prepared.
    cache_stats: CacheStats,
    /// Engine plan-compilation counter captured when this handle was
    /// prepared (0 until the engine is first loaded).
    plans_built: u64,
}

impl PreparedQuery {
    /// The parameters this query declares, in first-occurrence order. Every
    /// parameter without a default (i.e. every explicitly written one) must
    /// be bound via [`Shredder::execute_bound`].
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// The default bindings extracted by auto-parameterization (empty for
    /// explicitly parameterized queries).
    pub fn default_bindings(&self) -> &Params {
        &self.defaults
    }

    /// Per-stage explain output: backend, index scheme, static indexes of the
    /// normal form and one entry per flat query.
    pub fn explain(&self) -> Explain {
        Explain {
            backend: self.backend,
            scheme: self.scheme,
            cached: self.from_cache,
            result_type: self.result_type.to_string(),
            static_indexes: self.normalised.tags().iter().map(|t| t.as_int()).collect(),
            stages: self.plan.stages.clone(),
            diagnostics: self.diagnostics.iter().map(|d| d.to_string()).collect(),
            cache: self.cache_stats,
            plans_built: self.plans_built,
        }
    }

    /// Render every stage's physical plan tree annotated with the **actuals**
    /// of the most recent profiled execution of this handle: per plan node,
    /// the number of executions (`batches` — correlated subplans run once per
    /// outer row), rows fed in by its children, rows produced and inclusive
    /// wall time. The shape mirrors Postgres' `EXPLAIN ANALYZE`.
    ///
    /// Requires the sqlengine backend and at least one profiled execution —
    /// enable profiling session-wide with [`ShredderBuilder::profile`]`(true)`
    /// or per call with [`Shredder::execute_profiled`].
    ///
    /// ```
    /// use nrc::builder::*;
    /// use shredding::session::Shredder;
    /// # use nrc::schema::{Database, Schema, TableSchema};
    /// # use nrc::types::BaseType;
    /// # use nrc::value::Value;
    /// # let schema = Schema::new().with_table(
    /// #     TableSchema::new("items", vec![("id", BaseType::Int)]).with_key(vec!["id"]));
    /// # let mut db = Database::new(schema);
    /// # db.insert_row("items", vec![("id", Value::Int(1))]).unwrap();
    /// # db.insert_row("items", vec![("id", Value::Int(2))]).unwrap();
    /// let session = Shredder::builder().database(db).profile(true).build().unwrap();
    /// let query = for_in("x", table("items"), singleton(project(var("x"), "id")));
    /// let prepared = session.prepare(&query).unwrap();
    /// session.execute(&prepared).unwrap();
    /// let analyzed = prepared.explain_analyze().unwrap();
    /// assert!(analyzed.contains("rows_out=2"));   // both items reached the root
    /// ```
    pub fn explain_analyze(&self) -> Result<String, ShredError> {
        use fmt::Write as _;
        let compiled: &CompiledQuery = self.plan.downcast().map_err(|_| {
            ShredError::Config(
                "explain_analyze() requires a plan prepared by the sqlengine backend".into(),
            )
        })?;
        let guard = self
            .last_exec
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let Some(actuals) = guard.as_ref() else {
            return Err(ShredError::Config(
                "no profiled execution recorded for this prepared query; enable profiling \
                 with ShredderBuilder::profile(true) or Shredder::execute_profiled(.., true)"
                    .into(),
            ));
        };
        let mut out = String::new();
        for (i, stage) in compiled.stages.annotations().into_iter().enumerate() {
            let _ = writeln!(out, "stage {} at path {}:", i + 1, stage.path);
            let empty: &[sqlengine::OpActuals] = &[];
            let rendered = stage
                .plan
                .render_analyzed(actuals.get(i).map(Vec::as_slice).unwrap_or(empty));
            for line in rendered.lines() {
                let _ = writeln!(out, "  > {}", line);
            }
        }
        Ok(out)
    }

    /// The static diagnostics computed at prepare time: the λNRC lint pass
    /// over the source term plus the cross-stage package and physical-plan
    /// verification (see the `analysis` crate for the code registry).
    ///
    /// When the session verifies (debug builds by default, or
    /// [`ShredderBuilder::verify`]`(true)`), error-severity diagnostics have
    /// already failed `prepare`, so this list holds warnings at most;
    /// with verification off it may also hold the errors that would have
    /// been fatal.
    ///
    /// ```
    /// use nrc::builder::*;
    /// use shredding::session::Shredder;
    /// # use nrc::schema::{Database, Schema, TableSchema};
    /// # use nrc::types::BaseType;
    /// # let schema = Schema::new().with_table(
    /// #     TableSchema::new("items", vec![("id", BaseType::Int)]).with_key(vec!["id"]));
    /// let session = Shredder::builder().schema(schema).build().unwrap();
    ///
    /// // A clean query prepares with no findings.
    /// let clean = for_in("x", table("items"), singleton(project(var("x"), "id")));
    /// assert!(session.prepare(&clean).unwrap().check().is_empty());
    ///
    /// // A dead generator (`y` never used) is reported as a warning,
    /// // carrying its registry code.
    /// let dead = for_in("x", table("items"),
    ///     for_in("y", table("items"), singleton(project(var("x"), "id"))));
    /// let diagnostics = session.prepare(&dead).unwrap();
    /// assert!(diagnostics.check().has_code(analysis::codes::DEAD_GENERATOR));
    /// assert_eq!(diagnostics.check().error_count(), 0);
    /// ```
    pub fn check(&self) -> &Diagnostics {
        &self.diagnostics
    }

    /// The name of the backend that prepared this query.
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// The SQL text of every stage, outermost first (empty for backends that
    /// do not compile to SQL).
    pub fn sql_texts(&self) -> Vec<String> {
        self.plan
            .stages
            .iter()
            .filter_map(|s| s.sql.clone())
            .collect()
    }

    /// Number of flat stages the plan evaluates (the nesting degree, for
    /// shredding backends).
    pub fn query_count(&self) -> usize {
        self.plan.stages.len()
    }

    /// The query's result type.
    pub fn result_type(&self) -> &Type {
        self.result_type.as_ref()
    }

    /// The normal form the plan was derived from.
    pub fn normalised(&self) -> &NormQuery {
        &self.normalised
    }

    /// Whether this handle was served from the session's plan cache (the
    /// backend's `prepare` was skipped).
    pub fn from_cache(&self) -> bool {
        self.from_cache
    }
}

/// The rendered plan of a [`PreparedQuery`]; display it with `{}`.
#[derive(Debug, Clone)]
pub struct Explain {
    /// Backend that produced the plan.
    pub backend: &'static str,
    /// The session's indexing scheme.
    pub scheme: IndexScheme,
    /// Whether the plan came from the session's plan cache.
    pub cached: bool,
    /// The query's result type.
    pub result_type: String,
    /// The static indexes assigned to the normal form's comprehensions.
    pub static_indexes: Vec<i64>,
    /// One entry per flat stage, outermost first.
    pub stages: Vec<StageExplain>,
    /// Rendered prepare-time diagnostics (see [`PreparedQuery::check`]).
    pub diagnostics: Vec<String>,
    /// Plan-cache counters at the time this handle was prepared.
    pub cache: CacheStats,
    /// Physical plans the engine had compiled when this handle was prepared
    /// (0 until the engine is first loaded).
    pub plans_built: u64,
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan (backend={}, scheme={}, cached={})",
            self.backend, self.scheme, self.cached
        )?;
        writeln!(f, "result type: {}", self.result_type)?;
        writeln!(f, "static indexes: {:?}", self.static_indexes)?;
        writeln!(
            f,
            "cache: hits={} misses={} evictions={} entries={}",
            self.cache.hits, self.cache.misses, self.cache.evictions, self.cache.entries
        )?;
        writeln!(f, "engine plans built: {}", self.plans_built)?;
        for (i, stage) in self.stages.iter().enumerate() {
            writeln!(f, "stage {} at path {}:", i + 1, stage.path)?;
            if !stage.columns.is_empty() {
                writeln!(f, "  columns: {}", stage.columns.join(", "))?;
            }
            if let Some(sql) = &stage.sql {
                for line in sql.lines() {
                    writeln!(f, "  | {}", line)?;
                }
            }
            if let Some(physical) = &stage.physical {
                writeln!(f, "  physical plan:")?;
                for line in physical.lines() {
                    writeln!(f, "  > {}", line)?;
                }
            }
            if !stage.rewrites.is_empty() {
                writeln!(f, "  rewrites:")?;
                for rewrite in &stage.rewrites {
                    writeln!(f, "  * {}", rewrite)?;
                }
            }
        }
        if !self.diagnostics.is_empty() {
            writeln!(f, "diagnostics:")?;
            for d in &self.diagnostics {
                writeln!(f, "  ! {}", d)?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The plan cache
// ---------------------------------------------------------------------------

/// Counters describing the plan cache's behaviour so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Prepares answered from the cache (the backend's `prepare` was skipped).
    pub hits: u64,
    /// Prepares that had to invoke the backend.
    pub misses: u64,
    /// Plans evicted to stay within capacity.
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: usize,
}

#[derive(Debug)]
struct CacheEntry {
    normalised: Arc<NormQuery>,
    result_type: Arc<Type>,
    plan: Arc<BackendPlan>,
    last_used: u64,
}

/// The LRU map itself: the only part of the cache that needs a lock.
#[derive(Debug, Default)]
struct CacheMap {
    tick: u64,
    entries: HashMap<String, CacheEntry>,
}

/// A least-recently-used plan cache keyed on the query's normal form,
/// shared by every clone of a session.
///
/// Locking strategy: the entry map (and its LRU ticks) sits behind one
/// [`Mutex`]; the hit/miss/eviction counters are atomics updated outside any
/// contention-sensitive path. The critical section is a hash lookup plus
/// three `Arc` clones — the cached plans themselves are immutable and shared,
/// so the expensive parts (backend `prepare`, plan execution) happen entirely
/// outside the lock.
#[derive(Debug)]
struct PlanCache {
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    map: Mutex<CacheMap>,
}

impl PlanCache {
    fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            map: Mutex::new(CacheMap::default()),
        }
    }

    fn lock_map(&self) -> std::sync::MutexGuard<'_, CacheMap> {
        // A panic while holding the lock can only happen on allocation
        // failure; the map is structurally intact either way, so poisoning
        // is safe to shrug off rather than propagate to every caller.
        self.map
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lookup(&self, key: &str) -> Option<(Arc<NormQuery>, Arc<Type>, Arc<BackendPlan>)> {
        let mut map = self.lock_map();
        map.tick += 1;
        let tick = map.tick;
        match map.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let found = (
                    entry.normalised.clone(),
                    entry.result_type.clone(),
                    entry.plan.clone(),
                );
                drop(map);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(found)
            }
            None => {
                drop(map);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(
        &self,
        key: String,
        normalised: Arc<NormQuery>,
        result_type: Arc<Type>,
        plan: Arc<BackendPlan>,
    ) {
        let mut evicted = 0u64;
        {
            let mut map = self.lock_map();
            map.tick += 1;
            let tick = map.tick;
            if map.entries.len() >= self.capacity && !map.entries.contains_key(&key) {
                if let Some(oldest) = map
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                {
                    map.entries.remove(&oldest);
                    evicted = 1;
                }
            }
            map.entries.insert(
                key,
                CacheEntry {
                    normalised,
                    result_type,
                    plan,
                    last_used: tick,
                },
            );
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    fn clear(&self) {
        self.lock_map().entries.clear();
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.lock_map().entries.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Configures and validates a [`Shredder`] session.
pub struct ShredderBuilder {
    schema: Option<Schema>,
    database: Option<Database>,
    engine: Option<Arc<Engine>>,
    scheme: IndexScheme,
    backend: Option<Box<dyn SqlBackend>>,
    cache_capacity: Option<usize>,
    cache_disabled: bool,
    auto_param: bool,
    verify: Option<bool>,
    profile: bool,
    metrics: Option<Arc<MetricsRegistry>>,
    obs_sink: Option<Arc<dyn ObsSink>>,
    workers: Option<usize>,
    morsel_rows: Option<usize>,
    min_parallel_rows: Option<usize>,
    optimize: Option<bool>,
}

impl fmt::Debug for ShredderBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShredderBuilder")
            .field("scheme", &self.scheme)
            .field("backend", &self.backend)
            .field("cache_capacity", &self.cache_capacity)
            .field("cache_disabled", &self.cache_disabled)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl Default for ShredderBuilder {
    fn default() -> ShredderBuilder {
        ShredderBuilder {
            schema: None,
            database: None,
            engine: None,
            scheme: IndexScheme::Flat,
            backend: None,
            cache_capacity: None,
            cache_disabled: false,
            auto_param: true,
            verify: None,
            profile: false,
            metrics: None,
            obs_sink: None,
            workers: None,
            morsel_rows: None,
            min_parallel_rows: None,
            optimize: None,
        }
    }
}

impl ShredderBuilder {
    /// The flat source schema Σ. Optional when a database is attached (its
    /// schema is used); if both are given they must agree.
    pub fn schema(mut self, schema: Schema) -> Self {
        self.schema = Some(schema);
        self
    }

    /// Attach the database the session queries. Enables execution; sessions
    /// built from a schema alone can still `prepare` and `explain`.
    pub fn database(mut self, db: Database) -> Self {
        self.database = Some(db);
        self
    }

    /// Use a pre-loaded SQL engine instead of loading the database into
    /// engine storage on first execution. Accepts an `Arc<Engine>` (e.g.
    /// from [`Shredder::shared_engine`]) so several sessions over the same
    /// data can share one loaded engine without copying its storage — across
    /// threads, if desired.
    pub fn engine(mut self, engine: impl Into<Arc<Engine>>) -> Self {
        self.engine = Some(engine.into());
        self
    }

    /// The indexing scheme (Section 6) used by index-aware backends. Defaults
    /// to [`IndexScheme::Flat`], the scheme SQL generation implements.
    pub fn index_scheme(mut self, scheme: IndexScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// The execution backend. Defaults to [`SqlEngineBackend`].
    pub fn backend(mut self, backend: Box<dyn SqlBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Capacity of the LRU plan cache (must be non-zero; use
    /// [`without_plan_cache`](Self::without_plan_cache) to disable caching).
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Disable the plan cache: every `prepare` invokes the backend.
    pub fn without_plan_cache(mut self) -> Self {
        self.cache_disabled = true;
        self
    }

    /// Enable or disable auto-parameterization (on by default): `prepare`
    /// and `run` lift integer and string literals out of ad-hoc terms into
    /// typed parameters with default bindings, so queries differing only in
    /// such constants share one cached plan. Boolean and unit constants stay
    /// inline because normalisation uses them to prune conditionals.
    pub fn auto_parameterize(mut self, enabled: bool) -> Self {
        self.auto_param = enabled;
        self
    }

    /// Enable or disable the prepare-time static verifier. When enabled, an
    /// error-severity diagnostic (see [`PreparedQuery::check`] and the
    /// `analysis` crate's code registry) fails `prepare` with
    /// [`ShredError::Verification`] instead of surfacing later as a wrong
    /// answer or an execution panic. Defaults to **on in debug builds, off
    /// in release builds**; warnings are collected either way.
    pub fn verify(mut self, enabled: bool) -> Self {
        self.verify = Some(enabled);
        self
    }

    /// Enable or disable per-operator execution profiling for every execute
    /// call of this session (off by default; override per call with
    /// [`Shredder::execute_profiled`]). When on, SQL plans run through the
    /// instrumented executor, each plan node accumulates batches/rows/time,
    /// and [`PreparedQuery::explain_analyze`] renders the actuals. Stage
    /// tracing (per-phase spans) is always on regardless of this flag.
    pub fn profile(mut self, enabled: bool) -> Self {
        self.profile = enabled;
        self
    }

    /// Worker threads for executing one query: morsels (bounded columnar
    /// row ranges) of each operator's input fan out across this many
    /// threads, and a multi-stage shredded package additionally runs its
    /// independent stages concurrently on the same budget. Defaults to
    /// [`std::thread::available_parallelism`]. `workers(1)` is the
    /// sequential executor — the degenerate case the interpreter oracle
    /// and the live-view delta path are differentially tested against.
    /// Values are clamped to at least 1.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Upper bound on rows per morsel for the parallel executor (default
    /// [`sqlengine::DEFAULT_MORSEL_ROWS`]). Answers are identical at every
    /// morsel size; this only trades scheduling overhead against load
    /// balance and per-operator working-set size. Clamped to at least 1.
    pub fn morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = Some(rows.max(1));
        self
    }

    /// Estimated-row threshold below which a stage's plan runs on the
    /// sequential executor even when `workers > 1` (default
    /// [`sqlengine::DEFAULT_MIN_PARALLEL_ROWS`]): small pipelines lose more
    /// to thread hand-off than they gain from fan-out. `0` disables the
    /// gate. Answers are identical either way by the parallel executor's
    /// determinism guarantee.
    pub fn min_parallel_rows(mut self, rows: usize) -> Self {
        self.min_parallel_rows = Some(rows);
        self
    }

    /// Enable or disable the logical optimizer (on by default): constant
    /// folding, EXISTS decorrelation into hash semi/anti joins, predicate
    /// pushdown, package-level common-subplan sharing and estimate-driven
    /// build sides. Optimized and unoptimized plans compute identical
    /// results; disabling is for differential testing and benchmarking.
    pub fn optimize(mut self, enabled: bool) -> Self {
        self.optimize = Some(enabled);
        self
    }

    /// Use an existing metrics registry instead of a fresh one, so several
    /// sessions (e.g. over different databases) aggregate into one set of
    /// counters and histograms.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Deliver finished per-query profiles to a custom [`ObsSink`] instead
    /// of the session's in-memory ring buffer. With a custom sink installed,
    /// [`Shredder::recent_profiles`] returns nothing — the sink owns the
    /// profiles.
    pub fn obs_sink(mut self, sink: Arc<dyn ObsSink>) -> Self {
        self.obs_sink = Some(sink);
        self
    }

    /// Validate the configuration and build the session.
    pub fn build(self) -> Result<Shredder, ShredError> {
        let schema = match (self.schema, &self.database) {
            (Some(schema), Some(db)) => {
                if schema != db.schema {
                    return Err(ShredError::Config(
                        "the schema passed to ShredderBuilder::schema differs from the \
                         attached database's schema"
                            .into(),
                    ));
                }
                schema
            }
            (Some(schema), None) => schema,
            (None, Some(db)) => db.schema.clone(),
            (None, None) => {
                return Err(ShredError::Config(
                    "a session needs a schema or a database; call ShredderBuilder::schema \
                     or ShredderBuilder::database"
                        .into(),
                ));
            }
        };
        if self.cache_disabled && self.cache_capacity.is_some() {
            return Err(ShredError::Config(
                "plan_cache_capacity and without_plan_cache are mutually exclusive".into(),
            ));
        }
        let cache = if self.cache_disabled {
            None
        } else {
            let capacity = self.cache_capacity.unwrap_or(DEFAULT_PLAN_CACHE_CAPACITY);
            if capacity == 0 {
                return Err(ShredError::Config(
                    "plan_cache_capacity must be non-zero; use without_plan_cache() to \
                     disable caching"
                        .into(),
                ));
            }
            Some(PlanCache::new(capacity))
        };
        let engine = OnceLock::new();
        if let Some(e) = self.engine {
            let _ = engine.set(e);
        }
        let ring = Arc::new(RingSink::default());
        let sink: Arc<dyn ObsSink> = match self.obs_sink {
            Some(custom) => custom,
            None => ring.clone(),
        };
        Ok(Shredder {
            core: Arc::new(ShredderCore {
                schema: Arc::new(schema),
                db: self.database,
                engine,
                engine_init: Mutex::new(()),
                scheme: self.scheme,
                backend: self.backend.unwrap_or_else(|| Box::new(SqlEngineBackend)),
                cache,
                auto_param: self.auto_param,
                verify: self.verify.unwrap_or(cfg!(debug_assertions)),
                profile: self.profile,
                metrics: self.metrics.unwrap_or_default(),
                ring,
                sink,
                write_lock: Mutex::new(()),
                subs: Mutex::new(Vec::new()),
                exec_opts: sqlengine::ExecOptions {
                    workers: self.workers.unwrap_or_else(|| {
                        std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(1)
                    }),
                    morsel_rows: self.morsel_rows.unwrap_or(sqlengine::DEFAULT_MORSEL_ROWS),
                    min_parallel_rows: self
                        .min_parallel_rows
                        .unwrap_or(sqlengine::DEFAULT_MIN_PARALLEL_ROWS),
                },
                optimize: self.optimize.unwrap_or(true),
            }),
        })
    }
}

// ---------------------------------------------------------------------------
// The session
// ---------------------------------------------------------------------------

/// A configured query-shredding session. See the [module docs](self) for the
/// lifecycle and an overview of the available backends.
///
/// ```
/// use nrc::builder::*;
/// use shredding::session::Shredder;
/// # use nrc::schema::{Database, Schema, TableSchema};
/// # use nrc::types::BaseType;
/// # use nrc::value::Value;
/// # let schema = Schema::new().with_table(
/// #     TableSchema::new("items", vec![("id", BaseType::Int)]).with_key(vec!["id"]));
/// # let mut db = Database::new(schema);
/// # db.insert_row("items", vec![("id", Value::Int(1))]).unwrap();
/// let session = Shredder::builder().database(db).build().unwrap();
/// let query = for_in("x", table("items"), singleton(project(var("x"), "id")));
/// let prepared = session.prepare(&query).unwrap();
/// let value = session.execute(&prepared).unwrap();
/// assert_eq!(value, Value::bag(vec![Value::Int(1)]));
/// ```
///
/// # Concurrency
///
/// A `Shredder` is `Send + Sync` **and cheaply clonable**: the session state
/// (schema, database, engine, backend, plan cache) lives behind one `Arc`,
/// so `clone()` is a reference-count bump and every clone shares the same
/// plan cache and the same lazily loaded engine. To serve a parametric
/// workload from N worker threads, prepare once and hand each thread a
/// clone:
///
/// ```
/// use nrc::builder::*;
/// use shredding::session::{Params, Shredder};
/// # use nrc::schema::{Database, Schema, TableSchema};
/// # use nrc::types::BaseType;
/// # use nrc::value::Value;
/// # let schema = Schema::new().with_table(
/// #     TableSchema::new("items", vec![("id", BaseType::Int)]).with_key(vec!["id"]));
/// # let mut db = Database::new(schema);
/// # for id in 1..=4 { db.insert_row("items", vec![("id", Value::Int(id))]).unwrap(); }
/// let session = Shredder::builder().database(db).build().unwrap();
/// let query = for_where(
///     "x",
///     table("items"),
///     eq(project(var("x"), "id"), int_param("wanted")),
///     singleton(project(var("x"), "id")),
/// );
/// let prepared = session.prepare(&query).unwrap();
/// let handles: Vec<_> = (1..=4i64)
///     .map(|wanted| {
///         let session = session.clone();   // shares cache + engine
///         let prepared = prepared.clone(); // plans are immutable + shared
///         std::thread::spawn(move || {
///             session
///                 .execute_bound(&prepared, &Params::new().bind("wanted", wanted))
///                 .unwrap()
///         })
///     })
///     .collect();
/// for (i, h) in handles.into_iter().enumerate() {
///     assert_eq!(h.join().unwrap(), Value::bag(vec![Value::Int(i as i64 + 1)]));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Shredder {
    core: Arc<ShredderCore>,
}

/// The shared state behind every clone of a [`Shredder`].
#[derive(Debug)]
struct ShredderCore {
    schema: Arc<Schema>,
    db: Option<Database>,
    engine: OnceLock<Arc<Engine>>,
    /// Serialises the one-time database → engine load (see
    /// [`ExecContext::engine`]); never held while executing.
    engine_init: Mutex<()>,
    scheme: IndexScheme,
    backend: Box<dyn SqlBackend>,
    cache: Option<PlanCache>,
    auto_param: bool,
    /// Fail `prepare` on error-severity diagnostics (see
    /// [`ShredderBuilder::verify`]).
    verify: bool,
    /// Session default for per-operator profiling (see
    /// [`ShredderBuilder::profile`]).
    profile: bool,
    /// Counters and latency histograms, shared by every clone — and, when
    /// the builder was given an external registry, across sessions.
    metrics: Arc<MetricsRegistry>,
    /// The built-in ring buffer behind [`Shredder::recent_profiles`].
    ring: Arc<RingSink>,
    /// Where finished profiles go: `ring` unless the builder installed a
    /// custom sink.
    sink: Arc<dyn ObsSink>,
    /// Serialises committed write batches (and live-view seeding) so every
    /// subscription observes the same totally ordered sequence of deltas.
    write_lock: Mutex<()>,
    /// The session's live subscriptions. Weak: dropping every clone of a
    /// [`Subscription`] unsubscribes it; dead entries are pruned on the next
    /// committed batch.
    subs: Mutex<Vec<Weak<LiveView>>>,
    /// Worker count and morsel size for the morsel-parallel executor (see
    /// [`ShredderBuilder::workers`]). Live-view maintenance ignores these:
    /// the delta path is row-at-a-time by design.
    exec_opts: sqlengine::ExecOptions,
    /// Run the logical optimizer over compiled stage plans (see
    /// [`ShredderBuilder::optimize`]).
    optimize: bool,
}

impl Shredder {
    /// Start configuring a session.
    pub fn builder() -> ShredderBuilder {
        ShredderBuilder::default()
    }

    /// A session over a database with the default configuration (sqlengine
    /// backend, flat indexes, default plan cache).
    pub fn over(db: Database) -> Result<Shredder, ShredError> {
        Shredder::builder().database(db).build()
    }

    /// The session's schema.
    pub fn schema(&self) -> &Schema {
        &self.core.schema
    }

    /// The session's database, if one is attached.
    pub fn database(&self) -> Option<&Database> {
        self.core.db.as_ref()
    }

    /// The session's indexing scheme.
    pub fn index_scheme(&self) -> IndexScheme {
        self.core.scheme
    }

    /// The name of the session's backend.
    pub fn backend_name(&self) -> &'static str {
        self.core.backend.name()
    }

    /// The session's SQL engine, loading the database into engine storage on
    /// first use.
    pub fn engine(&self) -> Result<&Engine, ShredError> {
        self.exec_context().engine()
    }

    /// A shareable handle to the session's engine, for building further
    /// sessions over the same loaded storage without copying it (pass it to
    /// [`ShredderBuilder::engine`]).
    pub fn shared_engine(&self) -> Result<Arc<Engine>, ShredError> {
        self.exec_context().engine()?;
        Ok(self
            .core
            .engine
            .get()
            .expect("engine cell just populated")
            .clone())
    }

    /// Normalise and plan a query, consulting the plan cache. A second
    /// `prepare` of a query with the same *param-shape* normal form returns
    /// the cached plan without invoking the backend
    /// (`PreparedQuery::from_cache` reports which). With
    /// auto-parameterization on (the default), integer and string literals
    /// are lifted into parameters first, so two ad-hoc queries differing
    /// only in such constants share one plan.
    pub fn prepare(&self, term: &Term) -> Result<PreparedQuery, ShredError> {
        let (term, defaults) = self.parameterize(term);
        self.prepare_inner(&term, defaults, true)
    }

    /// Normalise and plan a query without touching the plan cache. Use this
    /// when measuring compilation itself (the benchmark harness does).
    pub fn prepare_uncached(&self, term: &Term) -> Result<PreparedQuery, ShredError> {
        let (term, defaults) = self.parameterize(term);
        self.prepare_inner(&term, defaults, false)
    }

    fn parameterize(&self, term: &Term) -> (Term, Params) {
        if self.core.auto_param {
            auto_parameterize(term)
        } else {
            (term.clone(), Params::new())
        }
    }

    fn prepare_inner(
        &self,
        term: &Term,
        defaults: Params,
        use_cache: bool,
    ) -> Result<PreparedQuery, ShredError> {
        let obs = QueryObs::new(false);
        let mut prepared = self.prepare_stages(term, defaults, use_cache, &obs)?;
        let (spans, _) = obs.take();
        for span in &spans {
            self.core
                .metrics
                .record(span.stage.metric_name(), span.nanos);
        }
        self.core.metrics.counter("queries.prepared").inc();
        prepared.prepare_spans = Arc::new(spans);
        prepared.cache_stats = self.cache_stats();
        prepared.plans_built = self.core.engine.get().map(|e| e.plans_built()).unwrap_or(0);
        Ok(prepared)
    }

    fn prepare_stages(
        &self,
        term: &Term,
        defaults: Params,
        use_cache: bool,
        obs: &QueryObs,
    ) -> Result<PreparedQuery, ShredError> {
        let (normalised, result_type) =
            normalise_with_type_obs(term, &self.core.schema, Some(obs))?;
        let params = param_specs(term)?;
        let cache = if use_cache {
            self.core.cache.as_ref()
        } else {
            None
        };
        let Some(cache) = cache else {
            return self.plan(term, normalised, result_type, params, defaults, obs);
        };
        let key = plan_key(&normalised);
        if let Some((normalised, result_type, plan)) = cache.lookup(&key) {
            let prepared = PreparedQuery {
                backend: self.core.backend.name(),
                scheme: self.core.scheme,
                schema: self.core.schema.clone(),
                normalised,
                result_type,
                plan,
                params: Arc::new(params),
                defaults: Arc::new(defaults),
                diagnostics: Arc::new(Diagnostics::new()),
                from_cache: true,
                prepare_spans: Arc::new(Vec::new()),
                last_exec: Arc::new(Mutex::new(None)),
                cache_stats: CacheStats::default(),
                plans_built: 0,
            };
            return self.verified(term, prepared, obs);
        }
        let prepared = self.plan(term, normalised, result_type, params, defaults, obs)?;
        cache.insert(
            key,
            prepared.normalised.clone(),
            prepared.result_type.clone(),
            prepared.plan.clone(),
        );
        Ok(prepared)
    }

    fn plan(
        &self,
        term: &Term,
        normalised: NormQuery,
        result_type: Type,
        params: Vec<ParamSpec>,
        defaults: Params,
        obs: &QueryObs,
    ) -> Result<PreparedQuery, ShredError> {
        let req = PlanRequest {
            term,
            normalised: &normalised,
            result_type: &result_type,
            schema: &self.core.schema,
            params: &params,
            defaults: &defaults,
            obs: Some(obs),
            optimize: self.core.optimize,
        };
        let plan = self.core.backend.prepare(&req)?;
        let prepared = PreparedQuery {
            backend: self.core.backend.name(),
            scheme: self.core.scheme,
            schema: self.core.schema.clone(),
            normalised: Arc::new(normalised),
            result_type: Arc::new(result_type),
            plan: Arc::new(plan),
            params: Arc::new(params),
            defaults: Arc::new(defaults),
            diagnostics: Arc::new(Diagnostics::new()),
            from_cache: false,
            prepare_spans: Arc::new(Vec::new()),
            last_exec: Arc::new(Mutex::new(None)),
            cache_stats: CacheStats::default(),
            plans_built: 0,
        };
        self.verified(term, prepared, obs)
    }

    /// Run the static verifier over a freshly built (or cache-served)
    /// prepared query: the λNRC lint pass on the source term, then the
    /// payload-specific structural checks — the full cross-stage
    /// [`verify::check_compiled`] pass for SQL-pipeline plans, the index
    /// tree check for shredded-memory plans, term lint only for opaque
    /// payloads (oracle, baselines). With verification enabled
    /// (see [`ShredderBuilder::verify`]) an error-severity finding fails
    /// the prepare; diagnostics are attached to the handle either way.
    fn verified(
        &self,
        term: &Term,
        mut prepared: PreparedQuery,
        obs: &QueryObs,
    ) -> Result<PreparedQuery, ShredError> {
        let names: Vec<String> = prepared.params.iter().map(|p| p.name.clone()).collect();
        let mut diagnostics = Diagnostics::new();
        let verify_timer = Instant::now();
        diagnostics.extend(lint::lint_term(term, &names));
        if let Ok(compiled) = prepared.plan.downcast::<CompiledQuery>() {
            let catalog = pipeline::table_defs_of_schema(&self.core.schema);
            diagnostics.extend(verify::check_compiled(compiled, &catalog, &names));
        } else if let Ok(shredded) = prepared.plan.downcast::<ShreddedMemoryPlan>() {
            diagnostics.extend(verify::check_package(&shredded.package));
        }
        obs.record(
            Stage::Verify,
            verify_timer.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
        if self.core.verify {
            if let Some(first) = diagnostics.first_error() {
                return Err(ShredError::Verification {
                    code: first.code,
                    message: first.to_string(),
                });
            }
        }
        prepared.diagnostics = Arc::new(diagnostics);
        Ok(prepared)
    }

    /// Execute a prepared query on this session's data, using the prepared
    /// query's default bindings for every parameter (equivalent to
    /// `execute_bound` with no explicit bindings).
    pub fn execute(&self, prepared: &PreparedQuery) -> Result<Value, ShredError> {
        self.execute_bound(prepared, &Params::new())
    }

    /// Execute a prepared query with explicit parameter bindings. Explicit
    /// bindings override the prepared query's defaults; every declared
    /// parameter must end up bound. This is the hot path for parametric
    /// workloads: the plan is immutable, so re-executing with different
    /// bindings does zero parsing, shredding, SQL generation or physical
    /// planning.
    pub fn execute_bound(
        &self,
        prepared: &PreparedQuery,
        params: &Params,
    ) -> Result<Value, ShredError> {
        self.execute_observed(prepared, params, self.core.profile)
    }

    /// [`execute_bound`](Self::execute_bound) with an explicit per-call
    /// override of the session's profiled mode: `profile = true` runs the
    /// plan through the instrumented executor (recording per-operator
    /// actuals for [`PreparedQuery::explain_analyze`]) even on a session
    /// built without [`ShredderBuilder::profile`], and `false` opts a single
    /// call out on a profiling session.
    pub fn execute_profiled(
        &self,
        prepared: &PreparedQuery,
        params: &Params,
        profile: bool,
    ) -> Result<Value, ShredError> {
        self.execute_observed(prepared, params, profile)
    }

    /// Reject a prepared query that belongs to a different backend, indexing
    /// scheme or schema than this session's.
    fn guard_prepared(&self, prepared: &PreparedQuery) -> Result<(), ShredError> {
        if prepared.backend != self.core.backend.name() {
            return Err(ShredError::Config(format!(
                "prepared query belongs to the {} backend but this session uses {}",
                prepared.backend,
                self.core.backend.name()
            )));
        }
        if prepared.scheme != self.core.scheme {
            return Err(ShredError::Config(format!(
                "prepared query was planned under {} indexes but this session uses {}",
                prepared.scheme, self.core.scheme
            )));
        }
        if !Arc::ptr_eq(&prepared.schema, &self.core.schema)
            && *prepared.schema != *self.core.schema
        {
            return Err(ShredError::Config(
                "prepared query was planned against a different schema".into(),
            ));
        }
        Ok(())
    }

    fn execute_observed(
        &self,
        prepared: &PreparedQuery,
        params: &Params,
        profile: bool,
    ) -> Result<Value, ShredError> {
        self.guard_prepared(prepared)?;
        let bindings = resolve_bindings(&prepared.params, &prepared.defaults, params)?;
        let obs = QueryObs::new(profile);
        let start = Instant::now();
        let result = self.core.backend.execute(
            &prepared.plan,
            &self.exec_context_obs(Some(&obs)),
            &bindings,
        );
        let total_nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        match &result {
            Ok(_) => self.record_execution(prepared, &obs, profile, total_nanos),
            Err(_) => self.core.metrics.counter("queries.failed").inc(),
        }
        result
    }

    /// Fold a successful execution's spans and operator actuals into the
    /// registry, stash the actuals on the prepared handle and hand the
    /// finished profile to the sink.
    fn record_execution(
        &self,
        prepared: &PreparedQuery,
        obs: &QueryObs,
        profile: bool,
        total_nanos: u64,
    ) {
        let (spans, operators) = obs.take();
        let metrics = &self.core.metrics;
        metrics.counter("queries.executed").inc();
        metrics.record("query.total", total_nanos);
        for span in &spans {
            metrics.record(span.stage.metric_name(), span.nanos);
        }
        let morsels = obs.take_morsels();
        if !morsels.is_empty() {
            metrics
                .counter("morsels.dispatched")
                .add(morsels.dispatched);
            // Peak simultaneously busy workers of the most parallel
            // execution seen so far (gauges are monotonic-max here: a
            // sequential query leaves the high-water mark alone).
            let gauge = metrics.gauge("workers.active");
            if (morsels.peak_workers as i64) > gauge.get() {
                gauge.set(morsels.peak_workers as i64);
            }
            for nanos in &morsels.morsel_nanos {
                metrics.record("morsel", *nanos);
            }
        }
        if profile {
            let mut per_stage: Vec<Vec<sqlengine::OpActuals>> =
                vec![Vec::new(); prepared.plan.stages.len().max(1)];
            for op in &operators {
                metrics.record(&format!("operator.{}", op.op), op.nanos);
                if op.stage >= per_stage.len() {
                    per_stage.resize_with(op.stage + 1, Vec::new);
                }
                let stage = &mut per_stage[op.stage];
                if stage.len() <= op.node {
                    stage.resize_with(op.node + 1, Default::default);
                }
                stage[op.node] = sqlengine::OpActuals {
                    batches: op.batches,
                    rows_in: op.rows_in,
                    rows_out: op.rows_out,
                    nanos: op.nanos,
                };
            }
            if !operators.is_empty() {
                *prepared
                    .last_exec
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(per_stage);
            }
        }
        let mut all_spans = prepared.prepare_spans.as_ref().clone();
        all_spans.extend(spans);
        self.core.sink.record(QueryProfile {
            query: {
                let mut label = prepared.result_type.to_string();
                if label.len() > 120 {
                    let mut end = 117;
                    while !label.is_char_boundary(end) {
                        end -= 1;
                    }
                    label.truncate(end);
                    label.push_str("...");
                }
                label
            },
            backend: prepared.backend.to_string(),
            cached: prepared.from_cache,
            profiled: profile,
            spans: all_spans,
            operators,
            total_nanos,
        });
    }

    /// Prepare (or fetch from the cache) and execute in one call.
    pub fn run(&self, term: &Term) -> Result<Value, ShredError> {
        let prepared = self.prepare(term)?;
        self.execute(&prepared)
    }

    /// Prepare (or fetch from the cache) and execute with bindings in one
    /// call.
    pub fn run_bound(&self, term: &Term, params: &Params) -> Result<Value, ShredError> {
        let prepared = self.prepare(term)?;
        self.execute_bound(&prepared, params)
    }

    /// Subscribe to a prepared query's result: returns a live
    /// [`Subscription`] whose [`value`](Subscription::value) is kept up to
    /// date across every write batch committed through
    /// [`apply_batch`](Self::apply_batch) — incrementally, without
    /// re-running the query from scratch. Each shredded stage keeps a delta
    /// executor over its physical plan; a committed write flows through the
    /// operators as a signed row delta and the stitcher re-materialises only
    /// the nested subtrees whose `(oidx_tag, oidx_ord)` groups changed.
    /// Writes outside the incremental fragment transparently fall back to
    /// recompute-from-scratch ([`Subscription::reseeds`] counts those).
    ///
    /// Subscriptions require the default [`SqlEngineBackend`]: they maintain
    /// the compiled SQL pipeline itself. Every declared parameter must be
    /// covered by the prepared query's defaults; use
    /// [`subscribe_bound`](Self::subscribe_bound) to bind explicitly.
    /// Dropping every clone of the handle unsubscribes it.
    ///
    /// ```
    /// use nrc::builder::*;
    /// use shredding::delta::WriteBatch;
    /// use shredding::session::Shredder;
    /// use sqlengine::SqlValue;
    /// # use nrc::schema::{Database, Schema, TableSchema};
    /// # use nrc::types::BaseType;
    /// # use nrc::value::Value;
    /// # let schema = Schema::new().with_table(
    /// #     TableSchema::new("items", vec![("id", BaseType::Int)]).with_key(vec!["id"]));
    /// # let mut db = Database::new(schema);
    /// # db.insert_row("items", vec![("id", Value::Int(1))]).unwrap();
    /// let session = Shredder::over(db).unwrap();
    /// let query = for_in("x", table("items"), singleton(project(var("x"), "id")));
    /// let prepared = session.prepare(&query).unwrap();
    /// let live = session.subscribe(&prepared).unwrap();
    /// assert_eq!(live.value().unwrap(), Value::bag(vec![Value::Int(1)]));
    ///
    /// session
    ///     .apply_batch(&WriteBatch::new().insert("items", vec![SqlValue::Int(2)]))
    ///     .unwrap();
    /// assert_eq!(
    ///     live.value().unwrap(),
    ///     Value::bag(vec![Value::Int(1), Value::Int(2)])
    /// );
    /// ```
    pub fn subscribe(&self, prepared: &PreparedQuery) -> Result<Subscription, ShredError> {
        self.subscribe_bound(prepared, &Params::new())
    }

    /// [`subscribe`](Self::subscribe) with explicit parameter bindings,
    /// fixed for the lifetime of the subscription (mirroring
    /// [`execute_bound`](Self::execute_bound)).
    pub fn subscribe_bound(
        &self,
        prepared: &PreparedQuery,
        params: &Params,
    ) -> Result<Subscription, ShredError> {
        self.guard_prepared(prepared)?;
        let compiled = prepared
            .plan
            .downcast::<CompiledQuery>()
            .map_err(|_| {
                ShredError::Config(
                    "subscriptions require the sqlengine backend: only compiled SQL \
                     pipelines can be maintained incrementally"
                        .into(),
                )
            })?
            .clone();
        let bindings = resolve_bindings(&prepared.params, &prepared.defaults, params)?;
        let sql_params = bindings.to_sql_params()?;
        let engine = self.engine()?;
        // Hold the commit lock while seeding and registering, so no write
        // batch can slip between the snapshot the view is seeded from and
        // the first delta it observes.
        let _commit = self
            .core
            .write_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let view = {
            let storage = engine.storage();
            Arc::new(LiveView::new(Arc::new(compiled), sql_params, &storage)?)
        };
        self.core
            .subs
            .lock()
            .expect("subscriptions lock")
            .push(Arc::downgrade(&view));
        Ok(Subscription { inner: view })
    }

    /// Atomically commit a write batch to the session's engine storage and
    /// maintain every live subscription with the emitted delta. Returns the
    /// typed per-table delta (insertion/retraction multisets). On a
    /// validation error nothing is applied.
    ///
    /// Observability: bumps the `writes.applied` counter, adds the delta's
    /// signed row count to `delta.rows`, and records one `stage.maintain`
    /// histogram sample per maintained subscription.
    ///
    /// Note that writes go to the *engine storage*, which was loaded from
    /// the session's [`Database`] on first use: [`Shredder::database`] (and
    /// therefore [`oracle`](Self::oracle)) keeps reflecting the load-time
    /// snapshot, while executions and subscriptions see the mutated state.
    pub fn apply_batch(&self, batch: &WriteBatch) -> Result<StorageDelta, ShredError> {
        let engine = self.engine()?;
        let _commit = self
            .core
            .write_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let delta = engine.apply_batch(batch)?;
        let metrics = &self.core.metrics;
        metrics.counter("writes.applied").inc();
        metrics.counter("delta.rows").add(delta.row_count() as u64);
        let live: Vec<Arc<LiveView>> = {
            let mut subs = self.core.subs.lock().expect("subscriptions lock");
            subs.retain(|w| w.strong_count() > 0);
            subs.iter().filter_map(Weak::upgrade).collect()
        };
        if !live.is_empty() {
            let storage = engine.storage();
            for view in live {
                let start = Instant::now();
                view.maintain(&storage, &delta)?;
                metrics.record(
                    Stage::Maintain.metric_name(),
                    start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                );
            }
        }
        Ok(delta)
    }

    /// Evaluate a query directly with the nested reference semantics N⟦−⟧
    /// (no shredding, no SQL). The ground truth every backend is validated
    /// against (Theorem 4).
    pub fn oracle(&self, term: &Term) -> Result<Value, ShredError> {
        let cx = self.exec_context();
        nrc::eval(term, cx.db()?).map_err(ShredError::Eval)
    }

    /// The reference semantics with explicit parameter bindings — the ground
    /// truth for bound execution (used by the differential test suites).
    pub fn oracle_bound(&self, term: &Term, params: &Params) -> Result<Value, ShredError> {
        let cx = self.exec_context();
        let bindings: nrc::ParamBindings = params
            .iter()
            .map(|(n, v)| (n.to_string(), v.clone()))
            .collect();
        nrc::eval_with_params(term, cx.db()?, &bindings).map_err(ShredError::Eval)
    }

    /// Counters describing the plan cache (all zero when caching is
    /// disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.core
            .cache
            .as_ref()
            .map(PlanCache::stats)
            .unwrap_or_default()
    }

    /// Drop every cached plan, keeping the hit/miss counters.
    pub fn clear_plan_cache(&self) {
        if let Some(cache) = &self.core.cache {
            cache.clear();
        }
    }

    /// The session's metrics registry: counters (`queries.prepared`,
    /// `queries.executed`, `queries.failed`), per-stage latency histograms
    /// (`stage.execute`, `stage.stitch`, …), per-operator-kind histograms
    /// from profiled runs (`operator.HashJoin`, …) and the end-to-end
    /// `query.total` histogram. Shared by every clone of the session.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.core.metrics
    }

    /// A point-in-time, JSON-serialisable view of the registry, with the
    /// plan-cache counters and the engine's plan-compilation counter folded
    /// in as gauges (`cache.hits`, `cache.misses`, `cache.evictions`,
    /// `cache.entries`, `engine.plans_built`).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let metrics = &self.core.metrics;
        let stats = self.cache_stats();
        let clamp = |v: u64| v.min(i64::MAX as u64) as i64;
        metrics.gauge("cache.hits").set(clamp(stats.hits));
        metrics.gauge("cache.misses").set(clamp(stats.misses));
        metrics.gauge("cache.evictions").set(clamp(stats.evictions));
        metrics
            .gauge("cache.entries")
            .set(clamp(stats.entries as u64));
        let plans = self.core.engine.get().map(|e| e.plans_built()).unwrap_or(0);
        metrics.gauge("engine.plans_built").set(clamp(plans));
        metrics.snapshot()
    }

    /// The most recent query profiles (oldest first) from the session's
    /// in-memory ring buffer — one [`QueryProfile`] per completed execute
    /// call, holding the per-stage spans (and per-operator actuals when the
    /// call was profiled). Empty when the builder installed a custom
    /// [`ObsSink`]: the sink owns the profiles then.
    pub fn recent_profiles(&self) -> Vec<QueryProfile> {
        self.core.ring.recent()
    }

    fn exec_context(&self) -> ExecContext<'_> {
        self.exec_context_obs(None)
    }

    fn exec_context_obs<'a>(&'a self, obs: Option<&'a QueryObs>) -> ExecContext<'a> {
        ExecContext {
            db: self.core.db.as_ref(),
            scheme: self.core.scheme,
            engine: &self.core.engine,
            engine_init: &self.core.engine_init,
            obs,
            exec_opts: self.core.exec_opts,
        }
    }
}

/// The plan-cache key of a normal form. Normal forms are small, so their
/// canonical debug rendering doubles as a cheap structural key. Parameters
/// appear by name, never by value, so the key identifies a *param shape*:
/// all bindings of one prepared shape share a single cache entry.
fn plan_key(normalised: &NormQuery) -> String {
    format!("{:?}", normalised)
}

/// Collect and validate the declared parameters of a term: a name declared
/// at two different base types is a conflict. Collection happens on the
/// source term (not the normal form) so that a parameter normalisation
/// eliminates — e.g. one bound inside a beta-reduced dead branch — is still
/// declared and bindable; backends simply ignore bindings their plan never
/// references.
fn param_specs(term: &Term) -> Result<Vec<ParamSpec>, ShredError> {
    let raw = term.params();
    let mut specs: Vec<ParamSpec> = Vec::with_capacity(raw.len());
    for (name, ty) in raw {
        if let Some(existing) = specs.iter().find(|s| s.name == name) {
            if existing.ty != ty {
                return Err(ShredError::ParamTypeMismatch {
                    name,
                    expected: existing.ty.to_string(),
                    found: format!("a second declaration at type {}", ty),
                });
            }
            continue;
        }
        specs.push(ParamSpec { name, ty });
    }
    Ok(specs)
}

/// Overlay explicit bindings on the prepared query's defaults and validate
/// the result against the declared parameters: unknown names and type
/// mismatches are rejected, and every declared parameter must be bound.
fn resolve_bindings(
    specs: &[ParamSpec],
    defaults: &Params,
    explicit: &Params,
) -> Result<Bindings, ShredError> {
    for (name, value) in explicit.iter() {
        let spec =
            specs
                .iter()
                .find(|s| s.name == name)
                .ok_or_else(|| ShredError::UnknownParam {
                    name: name.to_string(),
                    declared: specs.iter().map(|s| s.name.clone()).collect(),
                })?;
        match value.base_type() {
            Some(ty) if ty == spec.ty => {}
            Some(ty) => {
                return Err(ShredError::ParamTypeMismatch {
                    name: name.to_string(),
                    expected: spec.ty.to_string(),
                    found: ty.to_string(),
                })
            }
            None => {
                return Err(ShredError::ParamTypeMismatch {
                    name: name.to_string(),
                    expected: spec.ty.to_string(),
                    found: "a non-base value (parameters are base-typed)".to_string(),
                })
            }
        }
    }
    let mut values = Vec::with_capacity(specs.len());
    for spec in specs {
        let value = explicit
            .get(&spec.name)
            .or_else(|| defaults.get(&spec.name))
            .ok_or_else(|| ShredError::MissingParam {
                name: spec.name.clone(),
                expected: spec.ty,
            })?;
        values.push((spec.name.clone(), value.clone()));
    }
    Ok(Bindings { values })
}

/// Lift integer and string literals out of a term, replacing each with a
/// fresh typed parameter and recording the literal as that parameter's
/// default binding. Two ad-hoc terms differing only in such constants
/// therefore normalise to the same param-shape normal form and share one
/// cached plan. Boolean and unit constants stay inline: normalisation uses
/// boolean constants to prune conditionals, so lifting them would change
/// plan shapes (and `true`/`false` carry no cardinality anyway).
pub fn auto_parameterize(term: &Term) -> (Term, Params) {
    let existing: Vec<String> = term.params().into_iter().map(|(n, _)| n).collect();
    let mut next = 0usize;
    let mut defaults = Params::new();
    let lifted = lift_literals(term, &existing, &mut next, &mut defaults);
    (lifted, defaults)
}

fn lift_literals(
    term: &Term,
    existing: &[String],
    next: &mut usize,
    defaults: &mut Params,
) -> Term {
    use nrc::term::Constant as C;
    match term {
        Term::Const(c @ (C::Int(_) | C::String(_))) => {
            let name = loop {
                *next += 1;
                let candidate = format!("__p{}", next);
                if !existing.contains(&candidate) {
                    break candidate;
                }
            };
            defaults.set(&name, Value::from_constant(c));
            Term::Param(name, c.type_of())
        }
        Term::Var(_) | Term::Const(_) | Term::Param(_, _) | Term::Table(_) | Term::EmptyBag(_) => {
            term.clone()
        }
        Term::PrimApp(op, args) => Term::PrimApp(
            *op,
            args.iter()
                .map(|a| lift_literals(a, existing, next, defaults))
                .collect(),
        ),
        Term::If(c, t, e) => Term::If(
            Box::new(lift_literals(c, existing, next, defaults)),
            Box::new(lift_literals(t, existing, next, defaults)),
            Box::new(lift_literals(e, existing, next, defaults)),
        ),
        Term::Lam(x, b) => Term::Lam(
            x.clone(),
            Box::new(lift_literals(b, existing, next, defaults)),
        ),
        Term::App(f, a) => Term::App(
            Box::new(lift_literals(f, existing, next, defaults)),
            Box::new(lift_literals(a, existing, next, defaults)),
        ),
        Term::Record(fields) => Term::Record(
            fields
                .iter()
                .map(|(l, t)| (l.clone(), lift_literals(t, existing, next, defaults)))
                .collect(),
        ),
        Term::Project(t, l) => Term::Project(
            Box::new(lift_literals(t, existing, next, defaults)),
            l.clone(),
        ),
        Term::Empty(t) => Term::Empty(Box::new(lift_literals(t, existing, next, defaults))),
        Term::Singleton(t) => Term::Singleton(Box::new(lift_literals(t, existing, next, defaults))),
        Term::Union(l, r) => Term::Union(
            Box::new(lift_literals(l, existing, next, defaults)),
            Box::new(lift_literals(r, existing, next, defaults)),
        ),
        Term::For(x, s, b) => Term::For(
            x.clone(),
            Box::new(lift_literals(s, existing, next, defaults)),
            Box::new(lift_literals(b, existing, next, defaults)),
        ),
    }
}

// ---------------------------------------------------------------------------
// The built-in backends
// ---------------------------------------------------------------------------

/// The default backend: shred the query into nesting-degree-many flat SQL
/// queries, execute them on the in-memory [`sqlengine`], and stitch the flat
/// results back into a nested value (Figure 1(c) of the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct SqlEngineBackend;

impl SqlBackend for SqlEngineBackend {
    fn name(&self) -> &'static str {
        "sqlengine"
    }

    fn prepare(&self, req: &PlanRequest<'_>) -> Result<BackendPlan, ShredError> {
        let compiled = pipeline::compile_normalised_opts(
            req.normalised.clone(),
            req.result_type.clone(),
            req.schema,
            req.obs,
            req.optimize,
        )?;
        let stages = compiled
            .stages
            .annotations()
            .into_iter()
            .map(|s| StageExplain {
                path: s.path.to_string(),
                sql: Some(sqlengine::print_query(&s.sql)),
                physical: Some(s.plan.to_string()),
                columns: s.layout.columns().to_vec(),
                rewrites: s.opt.rewrites.clone(),
            })
            .collect();
        Ok(BackendPlan::new(stages, compiled))
    }

    fn execute(
        &self,
        plan: &BackendPlan,
        cx: &ExecContext<'_>,
        bindings: &Bindings,
    ) -> Result<Value, ShredError> {
        let compiled: &CompiledQuery = plan.downcast()?;
        let params = bindings.to_sql_params()?;
        pipeline::execute_bound_obs_opts(compiled, cx.engine()?, &params, cx.obs(), cx.exec_opts())
    }
}

/// Payload of [`ShreddedMemoryBackend`] plans.
#[derive(Debug, Clone)]
struct ShreddedMemoryPlan {
    normalised: NormQuery,
    package: Package<ShreddedQuery>,
}

/// The in-memory shredded semantics of Figure 5 under the session's
/// [`IndexScheme`] — the reference implementation of shredding itself, used
/// to validate the SQL path and to compare indexing schemes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShreddedMemoryBackend;

impl SqlBackend for ShreddedMemoryBackend {
    fn name(&self) -> &'static str {
        "shredded-memory"
    }

    fn prepare(&self, req: &PlanRequest<'_>) -> Result<BackendPlan, ShredError> {
        if !matches!(req.result_type, Type::Bag(_)) {
            return Err(ShredError::NotAQuery(req.result_type.to_string()));
        }
        let mut stages = Vec::new();
        let package = package_by(req.result_type, &mut |path| {
            let shredded = shred_query(req.normalised, path)?;
            let shredded_type = shred_type(req.result_type, path)?;
            stages.push(StageExplain {
                path: path.to_string(),
                sql: None,
                physical: None,
                columns: ResultLayout::new(&shredded_type.inner).columns().to_vec(),
                rewrites: Vec::new(),
            });
            Ok::<ShreddedQuery, ShredError>(shredded)
        })?;
        Ok(BackendPlan::new(
            stages,
            ShreddedMemoryPlan {
                normalised: req.normalised.clone(),
                package,
            },
        ))
    }

    fn execute(
        &self,
        plan: &BackendPlan,
        cx: &ExecContext<'_>,
        bindings: &Bindings,
    ) -> Result<Value, ShredError> {
        let payload: &ShreddedMemoryPlan = plan.downcast()?;
        let db = cx.db()?;
        let scheme = cx.scheme();
        // The in-memory evaluators take values by substitution: bind the
        // parameters into the (cheap, already-shredded) structures. No
        // normalisation or shredding is redone.
        let (normalised, package);
        let (normalised_ref, package_ref) = if bindings.is_empty() {
            (&payload.normalised, &payload.package)
        } else {
            let consts = bindings.to_constants();
            normalised = payload.normalised.bind_params(&consts);
            package = payload.package.map(&mut |q| q.bind_params(&consts));
            (&normalised, &package)
        };
        let results = obs::time_maybe(cx.obs(), Stage::Execute, || {
            let tables = IndexTables::compute(normalised_ref, db)?;
            if !tables.is_valid(scheme) {
                return Err(ShredError::InvalidIndexing(format!(
                    "the {} indexing scheme is not valid for this query and database",
                    scheme
                )));
            }
            eval_shredded_package(package_ref, db, scheme, &tables)
        })?;
        obs::time_maybe(cx.obs(), Stage::Stitch, || stitch_rows(results, scheme))
    }
}

/// The correctness oracle: evaluate the query directly with the nested
/// reference semantics N⟦−⟧ of Figure 2. No shredding, no SQL — every other
/// backend must agree with this one (Theorem 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct NestedOracleBackend;

impl SqlBackend for NestedOracleBackend {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn prepare(&self, req: &PlanRequest<'_>) -> Result<BackendPlan, ShredError> {
        Ok(BackendPlan::new(Vec::new(), req.term.clone()))
    }

    fn execute(
        &self,
        plan: &BackendPlan,
        cx: &ExecContext<'_>,
        bindings: &Bindings,
    ) -> Result<Value, ShredError> {
        let term: &Term = plan.downcast()?;
        obs::time_maybe(cx.obs(), Stage::Execute, || {
            nrc::eval_with_params(term, cx.db()?, &bindings.to_value_map())
                .map_err(ShredError::Eval)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrc::builder::*;
    use nrc::schema::TableSchema;
    use nrc::types::BaseType;

    fn schema() -> Schema {
        Schema::new()
            .with_table(
                TableSchema::new(
                    "departments",
                    vec![("id", BaseType::Int), ("name", BaseType::String)],
                )
                .with_key(vec!["id"]),
            )
            .with_table(
                TableSchema::new(
                    "employees",
                    vec![
                        ("id", BaseType::Int),
                        ("dept", BaseType::String),
                        ("name", BaseType::String),
                        ("salary", BaseType::Int),
                    ],
                )
                .with_key(vec!["id"]),
            )
    }

    fn db() -> Database {
        let mut db = Database::new(schema());
        for (id, name) in [(1, "Product"), (2, "Research")] {
            db.insert_row(
                "departments",
                vec![("id", Value::Int(id)), ("name", Value::string(name))],
            )
            .unwrap();
        }
        for (id, dept, name, salary) in [
            (1, "Product", "Alex", 20000),
            (2, "Product", "Bert", 900),
            (3, "Research", "Cora", 50000),
        ] {
            db.insert_row(
                "employees",
                vec![
                    ("id", Value::Int(id)),
                    ("dept", Value::string(dept)),
                    ("name", Value::string(name)),
                    ("salary", Value::Int(salary)),
                ],
            )
            .unwrap();
        }
        db
    }

    fn nested_query() -> Term {
        for_in(
            "d",
            table("departments"),
            singleton(record(vec![
                ("dept", project(var("d"), "name")),
                (
                    "emps",
                    for_where(
                        "e",
                        table("employees"),
                        eq(project(var("e"), "dept"), project(var("d"), "name")),
                        singleton(project(var("e"), "name")),
                    ),
                ),
            ])),
        )
    }

    #[test]
    fn the_default_session_runs_nested_queries() {
        let session = Shredder::over(db()).unwrap();
        let q = nested_query();
        let result = session.run(&q).unwrap();
        let reference = session.oracle(&q).unwrap();
        assert!(result.multiset_eq(&reference));
    }

    #[test]
    fn prepare_hits_the_plan_cache_on_the_second_call() {
        let session = Shredder::over(db()).unwrap();
        let q = nested_query();
        let first = session.prepare(&q).unwrap();
        assert!(!first.from_cache());
        let second = session.prepare(&q).unwrap();
        assert!(second.from_cache());
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // The cached plan still executes correctly.
        let a = session.execute(&first).unwrap();
        let b = session.execute(&second).unwrap();
        assert!(a.multiset_eq(&b));
    }

    #[test]
    fn lru_eviction_keeps_the_cache_within_capacity() {
        let session = Shredder::builder()
            .database(db())
            .plan_cache_capacity(1)
            .build()
            .unwrap();
        let q1 = nested_query();
        let q2 = for_in(
            "d",
            table("departments"),
            singleton(project(var("d"), "name")),
        );
        session.prepare(&q1).unwrap();
        session.prepare(&q2).unwrap(); // evicts q1
        assert!(!session.prepare(&q1).unwrap().from_cache());
        let stats = session.cache_stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn explain_shows_sql_and_layout() {
        let session = Shredder::over(db()).unwrap();
        let prepared = session.prepare(&nested_query()).unwrap();
        assert_eq!(prepared.query_count(), 2);
        let explain = prepared.explain().to_string();
        assert!(explain.contains("backend=sqlengine"));
        assert!(explain.contains("SELECT"), "explain output:\n{}", explain);
        assert!(explain.contains("stage 2"));
    }

    #[test]
    fn builder_rejects_an_empty_configuration() {
        assert!(matches!(
            Shredder::builder().build(),
            Err(ShredError::Config(_))
        ));
    }

    #[test]
    fn builder_rejects_a_mismatched_schema() {
        let other = Schema::new().with_table(TableSchema::new("t", vec![("x", BaseType::Int)]));
        assert!(matches!(
            Shredder::builder().schema(other).database(db()).build(),
            Err(ShredError::Config(_))
        ));
    }

    #[test]
    fn builder_rejects_a_zero_capacity_cache() {
        assert!(matches!(
            Shredder::builder()
                .database(db())
                .plan_cache_capacity(0)
                .build(),
            Err(ShredError::Config(_))
        ));
    }

    #[test]
    fn schema_only_sessions_prepare_but_do_not_execute() {
        let session = Shredder::builder().schema(schema()).build().unwrap();
        let prepared = session.prepare(&nested_query()).unwrap();
        assert_eq!(prepared.query_count(), 2);
        assert!(matches!(
            session.execute(&prepared),
            Err(ShredError::Config(_))
        ));
    }

    #[test]
    fn foreign_prepared_queries_are_rejected() {
        let sql = Shredder::over(db()).unwrap();
        let oracle = Shredder::builder()
            .database(db())
            .backend(Box::new(NestedOracleBackend))
            .build()
            .unwrap();
        let prepared = sql.prepare(&nested_query()).unwrap();
        assert!(matches!(
            oracle.execute(&prepared),
            Err(ShredError::Config(_))
        ));
    }

    #[test]
    fn all_builtin_backends_agree() {
        let q = nested_query();
        let reference = Shredder::over(db()).unwrap().oracle(&q).unwrap();
        for backend in [
            Box::new(SqlEngineBackend) as Box<dyn SqlBackend>,
            Box::new(ShreddedMemoryBackend),
            Box::new(NestedOracleBackend),
        ] {
            let session = Shredder::builder()
                .database(db())
                .backend(backend)
                .build()
                .unwrap();
            let v = session.run(&q).unwrap();
            assert!(
                v.multiset_eq(&reference),
                "backend {} disagrees",
                session.backend_name()
            );
        }
    }

    #[test]
    fn the_shredded_memory_backend_honours_the_index_scheme() {
        let q = nested_query();
        let reference = Shredder::over(db()).unwrap().oracle(&q).unwrap();
        for scheme in IndexScheme::ALL {
            let session = Shredder::builder()
                .database(db())
                .backend(Box::new(ShreddedMemoryBackend))
                .index_scheme(scheme)
                .build()
                .unwrap();
            let v = session.run(&q).unwrap();
            assert!(v.multiset_eq(&reference), "scheme {}", scheme);
        }
    }

    #[test]
    fn subscriptions_track_writes_and_match_recompute() {
        use sqlengine::SqlValue;
        let session = Shredder::over(db()).unwrap();
        let prepared = session.prepare(&nested_query()).unwrap();
        let live = session.subscribe(&prepared).unwrap();
        assert_eq!(live.generation(), 0);
        assert!(live
            .value()
            .unwrap()
            .multiset_eq(&session.execute(&prepared).unwrap()));

        let batch = WriteBatch::new()
            .insert(
                "employees",
                vec![
                    SqlValue::Int(4),
                    SqlValue::str("Research"),
                    SqlValue::str("Dana"),
                    SqlValue::Int(700),
                ],
            )
            .delete_by_key("employees", vec![SqlValue::Int(2)]);
        let delta = session.apply_batch(&batch).unwrap();
        assert_eq!(delta.row_count(), 2);

        let recomputed = session.execute(&prepared).unwrap();
        assert!(live.value().unwrap().multiset_eq(&recomputed));
        assert_eq!(live.generation(), 1);
        assert_eq!(live.reseeds(), 0);

        let snapshot = session.metrics_snapshot();
        assert_eq!(snapshot.counter("writes.applied"), Some(1));
        assert_eq!(snapshot.counter("delta.rows"), Some(2));
        assert!(snapshot.histogram("stage.maintain").is_some());
    }

    #[test]
    fn dropped_subscriptions_are_pruned_on_the_next_commit() {
        use sqlengine::SqlValue;
        let session = Shredder::over(db()).unwrap();
        let prepared = session.prepare(&nested_query()).unwrap();
        let live = session.subscribe(&prepared).unwrap();
        drop(live);
        // The dead subscription must not be maintained (or crash).
        session
            .apply_batch(&WriteBatch::new().insert(
                "departments",
                vec![SqlValue::Int(3), SqlValue::str("Design")],
            ))
            .unwrap();
        assert_eq!(
            session.core.subs.lock().unwrap().len(),
            0,
            "dead weak handles should be pruned"
        );
    }

    #[test]
    fn subscriptions_require_the_sqlengine_backend() {
        let session = Shredder::builder()
            .database(db())
            .backend(Box::new(ShreddedMemoryBackend))
            .build()
            .unwrap();
        let prepared = session.prepare(&nested_query()).unwrap();
        assert!(matches!(
            session.subscribe(&prepared),
            Err(ShredError::Config(_))
        ));
    }
}
