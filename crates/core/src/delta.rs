//! Live nested views: delta-driven incremental maintenance of shredded
//! results.
//!
//! A prepared shredded query is a package of flat SQL stages whose rows are
//! grouped by their `(oidx_tag, oidx_ord)` outer-index columns and stitched
//! back into one nested value. This module keeps that whole chain *live*
//! across storage writes:
//!
//! * each stage's physical plan gets a [`DeltaExec`] — the sqlengine
//!   incremental executor whose per-operator caches turn a committed
//!   [`StorageDelta`] into a signed delta of the stage's output rows;
//! * the stage's rows are held pre-grouped by outer index, and the output
//!   delta touches only the groups whose rows actually changed;
//! * a caching stitcher materialises the nested value from those groups,
//!   memoising one [`Value`] per `(stage, index)` group and recording the
//!   reverse dependency edge child group → parent group whenever a parent
//!   row reads a nested index. After a write, dirtiness starts at the
//!   changed groups and flows *up* those edges, so the stitcher
//!   re-materialises only the nested subtrees whose groups changed — every
//!   clean subtree is a cache hit.
//!
//! When a write falls outside the incremental fragment (the executor bails,
//! e.g. a correlated `EXISTS` over a mutated table), the stage is re-seeded
//! from scratch and all of its groups are marked dirty — recompute-from-
//! scratch is always the fallback, never an error.
//!
//! The public surface is [`Subscription`] (handed out by
//! `Shredder::subscribe`) plus re-exports of the sqlengine write-batch
//! types, so `shredding::delta::{WriteBatch, WriteOp, StorageDelta}` is the
//! one-stop path for mutating a session's storage and observing the
//! maintained results.

use crate::error::ShredError;
use crate::flatten::{sql_to_value, Leaf, LeafKind, ResultLayout};
use crate::nf::StaticIndex;
use crate::pipeline::CompiledQuery;
use crate::semantics::{IndexScheme, IndexValue};
use crate::shred::Package;
use analysis::codes;
use nrc::value::Value;
use sqlengine::{DeltaExec, DeltaRows, ParamValues, Row, SqlValue, Storage};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

pub use sqlengine::delta::{StorageDelta, TableDelta, WriteBatch, WriteOp};

// ---------------------------------------------------------------------------
// Maintained per-stage state
// ---------------------------------------------------------------------------

/// One shredded stage of a live view: the incremental executor that owns the
/// operator caches, the stage's column layout, and the stage's current rows
/// pre-grouped by their flat outer index.
struct LiveStage {
    exec: DeltaExec,
    layout: Arc<ResultLayout>,
    groups: HashMap<IndexValue, Vec<Row>>,
}

/// The mutable half of a live view, behind the subscription's mutex.
struct LiveState {
    /// Stages in package pre-order (the same order as
    /// [`Package::annotations`]).
    stages: Vec<LiveStage>,
    /// Memoised stitched values, one per `(stage, outer index)` group.
    cache: HashMap<(usize, IndexValue), Value>,
    /// Reverse dependency edges: child group → the parent groups whose rows
    /// referenced it. Recorded while stitching, consulted while dirtying.
    /// Edges are add-only; a stale edge can only over-invalidate, never
    /// under-invalidate.
    parents: HashMap<(usize, IndexValue), HashSet<(usize, IndexValue)>>,
    /// Bumped once per maintained write batch.
    generation: u64,
    /// How many stage re-seeds fell back to recompute-from-scratch.
    reseeds: u64,
    /// Cumulative wall time spent inside [`LiveView::maintain`].
    maintain_nanos: u64,
}

/// The shared core of a [`Subscription`]: the compiled query it watches, its
/// bound parameters, and the maintained state. `Shredder::apply_batch` holds
/// a `Weak` to each live view and maintains it after every committed write.
pub(crate) struct LiveView {
    compiled: Arc<CompiledQuery>,
    /// The package shape with each bag constructor annotated by its stage
    /// index (pre-order), so the stitcher can address `LiveState::stages`.
    shape: Package<usize>,
    params: ParamValues,
    state: Mutex<LiveState>,
}

impl LiveView {
    /// Seed a live view for `compiled` against the current storage: run
    /// every stage's delta executor in seed mode and group its rows by
    /// outer index. The value cache starts empty and fills on first read.
    pub(crate) fn new(
        compiled: Arc<CompiledQuery>,
        params: ParamValues,
        storage: &Storage,
    ) -> Result<LiveView, ShredError> {
        let mut next = 0usize;
        let shape = compiled.stages.map(&mut |_| {
            let i = next;
            next += 1;
            i
        });
        let plans = compiled.stages.annotations();
        let mut stages = Vec::with_capacity(plans.len());
        for qs in &plans {
            let mut exec = DeltaExec::new(&qs.plan);
            exec.seed(&qs.plan, storage, &params)?;
            let groups = group_rows(exec.rows())?;
            stages.push(LiveStage {
                exec,
                layout: Arc::clone(&qs.layout),
                groups,
            });
        }
        Ok(LiveView {
            compiled,
            shape,
            params,
            state: Mutex::new(LiveState {
                stages,
                cache: HashMap::new(),
                parents: HashMap::new(),
                generation: 0,
                reseeds: 0,
                maintain_nanos: 0,
            }),
        })
    }

    /// Fold a committed write into every stage and invalidate exactly the
    /// stitched subtrees it touched. `storage` must be the post-state (the
    /// delta already applied). A stage whose plan reads none of the written
    /// tables is skipped outright by its executor; a stage outside the
    /// incremental fragment is re-seeded and fully dirtied.
    pub(crate) fn maintain(
        &self,
        storage: &Storage,
        delta: &StorageDelta,
    ) -> Result<(), ShredError> {
        let tm = std::time::Instant::now();
        let plans = self.compiled.stages.annotations();
        let mut guard = self.state.lock().expect("live view lock");
        let st = &mut *guard;
        let n = st.stages.len();
        let mut dirty: Vec<HashSet<IndexValue>> = vec![HashSet::new(); n];
        for (i, qs) in plans.iter().enumerate() {
            let out = st.stages[i]
                .exec
                .apply(&qs.plan, storage, &self.params, delta)?;
            match out {
                Some(rows) => {
                    apply_group_delta(&mut st.stages[i].groups, &rows, &mut dirty[i])?;
                }
                None => {
                    st.reseeds += 1;
                    let stage = &mut st.stages[i];
                    stage.exec.seed(&qs.plan, storage, &self.params)?;
                    let mut keys: HashSet<IndexValue> = stage.groups.keys().cloned().collect();
                    stage.groups = group_rows(stage.exec.rows())?;
                    keys.extend(stage.groups.keys().cloned());
                    dirty[i] = keys;
                }
            }
        }
        // Dirtiness flows child → parent. Stages are numbered in pre-order,
        // so every parent has a smaller index than its descendants; walking
        // indices downwards processes each stage after everything that can
        // dirty it.
        for i in (0..n).rev() {
            let groups: Vec<IndexValue> = dirty[i].iter().cloned().collect();
            for g in groups {
                if let Some(ps) = st.parents.get(&(i, g)) {
                    for (pi, pg) in ps.clone() {
                        dirty[pi].insert(pg);
                    }
                }
            }
        }
        for (i, set) in dirty.iter().enumerate() {
            for g in set {
                st.cache.remove(&(i, g.clone()));
            }
        }
        st.generation += 1;
        st.maintain_nanos += tm.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        Ok(())
    }

    /// Materialise the view's current nested value, reusing every cached
    /// clean subtree and rebuilding (and re-memoising) only dirty groups.
    pub(crate) fn value(&self) -> Result<Value, ShredError> {
        let mut guard = self.state.lock().expect("live view lock");
        let LiveState {
            stages,
            cache,
            parents,
            ..
        } = &mut *guard;
        live_bag(
            &self.shape,
            &IndexValue::top(IndexScheme::Flat),
            stages,
            cache,
            parents,
        )
    }

    pub(crate) fn generation(&self) -> u64 {
        self.state.lock().expect("live view lock").generation
    }

    pub(crate) fn reseeds(&self) -> u64 {
        self.state.lock().expect("live view lock").reseeds
    }

    pub(crate) fn maintain_nanos(&self) -> u64 {
        self.state.lock().expect("live view lock").maintain_nanos
    }
}

// ---------------------------------------------------------------------------
// The subscription handle
// ---------------------------------------------------------------------------

/// A live handle to a prepared query's maintained result. Obtained from
/// `Shredder::subscribe`; after every write batch committed through
/// `Shredder::apply_batch`, the subscription's [`value`](Subscription::value)
/// reflects the post-write database without re-running the query from
/// scratch. Dropping every clone of the handle unsubscribes it.
#[derive(Clone)]
pub struct Subscription {
    pub(crate) inner: Arc<LiveView>,
}

impl Subscription {
    /// The view's current nested value. Cheap after a small write: only the
    /// nested subtrees whose `(oidx_tag, oidx_ord)` groups changed are
    /// re-stitched; everything else is returned from the value cache.
    pub fn value(&self) -> Result<Value, ShredError> {
        self.inner.value()
    }

    /// How many write batches this subscription has been maintained
    /// through (0 right after subscribing).
    pub fn generation(&self) -> u64 {
        self.inner.generation()
    }

    /// How many times maintenance fell back to re-seeding a stage from
    /// scratch because a write fell outside the incremental fragment.
    pub fn reseeds(&self) -> u64 {
        self.inner.reseeds()
    }

    /// Cumulative wall time, in nanoseconds, this subscription has spent
    /// being maintained: folding committed write deltas through the stage
    /// executors and invalidating stitched groups. The storage write itself
    /// and [`value`](Subscription::value) materialisation are excluded, so
    /// the difference of this counter across one write batch is exactly the
    /// cost a live view adds over not having one — the number the delta
    /// benchmark compares against a full recompute.
    pub fn maintain_nanos(&self) -> u64 {
        self.inner.maintain_nanos()
    }
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("stages", &self.inner.compiled.stages.nesting_degree())
            .field("generation", &self.inner.generation())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Group bookkeeping
// ---------------------------------------------------------------------------

/// Read a row's flat outer index from its first two columns.
fn group_key(row: &Row) -> Result<IndexValue, ShredError> {
    match (row.first(), row.get(1)) {
        (Some(tag), Some(ord)) => flat_index(tag, ord),
        _ => Err(decode_err(
            codes::DECODE_SHAPE_MISMATCH,
            "stage row is too narrow to hold its outer index pair".to_string(),
        )),
    }
}

/// Interpret a `(tag, ord)` cell pair as a flat index value.
fn flat_index(tag: &SqlValue, ord: &SqlValue) -> Result<IndexValue, ShredError> {
    let tag = tag.as_int().ok_or_else(|| {
        decode_err(
            codes::DECODE_TYPE_MISMATCH,
            "expected an integer index tag column".to_string(),
        )
    })?;
    let ordinal = ord.as_int().ok_or_else(|| {
        decode_err(
            codes::DECODE_TYPE_MISMATCH,
            "expected an integer index ordinal column".to_string(),
        )
    })?;
    Ok(IndexValue::Flat {
        tag: StaticIndex(u32::try_from(tag).map_err(|_| {
            decode_err(
                codes::DECODE_INDEX_RANGE,
                format!("static index column out of range: {}", tag),
            )
        })?),
        ordinal,
    })
}

fn decode_err(code: &'static str, message: String) -> ShredError {
    ShredError::Decode { code, message }
}

/// Group a seeded stage's full output by outer index.
fn group_rows(rows: &[Row]) -> Result<HashMap<IndexValue, Vec<Row>>, ShredError> {
    let mut out: HashMap<IndexValue, Vec<Row>> = HashMap::new();
    for row in rows {
        out.entry(group_key(row)?).or_default().push(row.clone());
    }
    Ok(out)
}

/// Fold a stage's signed output delta into its group map, recording every
/// touched group in `dirty`. Retractions remove the first matching row of
/// their group (the same first-occurrence discipline the executor's caches
/// and the storage layer use), insertions append; a group emptied by its
/// last retraction is dropped.
fn apply_group_delta(
    groups: &mut HashMap<IndexValue, Vec<Row>>,
    delta: &DeltaRows,
    dirty: &mut HashSet<IndexValue>,
) -> Result<(), ShredError> {
    for (row, sign) in delta {
        let key = group_key(row)?;
        dirty.insert(key.clone());
        if *sign > 0 {
            groups.entry(key).or_default().push(row.clone());
        } else {
            let bucket = groups.get_mut(&key).ok_or_else(|| {
                ShredError::Internal("maintenance retracted a row from an absent group".to_string())
            })?;
            let pos = bucket.iter().position(|r| r == row).ok_or_else(|| {
                ShredError::Internal(
                    "maintenance retracted a row absent from its group".to_string(),
                )
            })?;
            bucket.remove(pos);
            if bucket.is_empty() {
                groups.remove(&key);
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The caching stitcher
// ---------------------------------------------------------------------------

/// Stitch one bag group, consulting the value cache first. On a rebuild the
/// finished bag is memoised and, for every nested index the group's rows
/// read, a reverse edge child group → this group is recorded so later
/// writes deep in the tree know to invalidate it.
fn live_bag(
    shape: &Package<usize>,
    index: &IndexValue,
    stages: &[LiveStage],
    cache: &mut HashMap<(usize, IndexValue), Value>,
    parents: &mut HashMap<(usize, IndexValue), HashSet<(usize, IndexValue)>>,
) -> Result<Value, ShredError> {
    let Package::Bag(stage_idx, inner) = shape else {
        return Err(ShredError::Internal(
            "live stitching requires a bag-typed package node".to_string(),
        ));
    };
    let key = (*stage_idx, index.clone());
    if let Some(v) = cache.get(&key) {
        return Ok(v.clone());
    }
    let rows: &[Row] = stages[*stage_idx]
        .groups
        .get(index)
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    let mut items = Vec::with_capacity(rows.len());
    for row in rows {
        let mut leaf = 0usize;
        items.push(live_value(
            inner, *stage_idx, row, &mut leaf, stages, cache, parents,
        )?);
    }
    let v = Value::Bag(items);
    cache.insert(key, v.clone());
    Ok(v)
}

/// Materialise one row of a stage, walking the package shape in lockstep
/// with the layout's pre-resolved leaves — the live-view analogue of the
/// columnar stitcher's row walk, reading from maintained group rows instead
/// of decoded columns.
fn live_value(
    shape: &Package<usize>,
    stage_idx: usize,
    row: &Row,
    leaf: &mut usize,
    stages: &[LiveStage],
    cache: &mut HashMap<(usize, IndexValue), Value>,
    parents: &mut HashMap<(usize, IndexValue), HashSet<(usize, IndexValue)>>,
) -> Result<Value, ShredError> {
    match shape {
        Package::Record(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (label, field_shape) in fields {
                out.push((
                    label.clone(),
                    live_value(field_shape, stage_idx, row, leaf, stages, cache, parents)?,
                ));
            }
            Ok(Value::Record(out))
        }
        Package::Base(b) => {
            let l = next_leaf(&stages[stage_idx].layout, leaf)?;
            if !matches!(l.kind, LeafKind::Base(_)) {
                return Err(decode_err(
                    codes::DECODE_SHAPE_MISMATCH,
                    format!(
                        "layout leaf {} is an index but the package expects a base value",
                        l.name
                    ),
                ));
            }
            sql_to_value(cell(row, l.col)?, *b)
        }
        Package::Bag(child_idx, _) => {
            let l = next_leaf(&stages[stage_idx].layout, leaf)?;
            if l.kind != LeafKind::Index {
                return Err(decode_err(
                    codes::DECODE_SHAPE_MISMATCH,
                    format!(
                        "layout leaf {} is a base column but the package expects a nested bag",
                        l.name
                    ),
                ));
            }
            let child_index = flat_index(cell(row, l.col)?, cell(row, l.col + 1)?)?;
            let parent_index = group_key(row)?;
            parents
                .entry((*child_idx, child_index.clone()))
                .or_default()
                .insert((stage_idx, parent_index));
            live_bag(shape, &child_index, stages, cache, parents)
        }
    }
}

fn next_leaf<'a>(layout: &'a ResultLayout, leaf: &mut usize) -> Result<&'a Leaf, ShredError> {
    let l = layout.leaves.get(*leaf).ok_or_else(|| {
        decode_err(
            codes::DECODE_SHAPE_MISMATCH,
            "stage has fewer leaves than the package shape".to_string(),
        )
    })?;
    *leaf += 1;
    Ok(l)
}

fn cell(row: &Row, col: usize) -> Result<&SqlValue, ShredError> {
    row.get(col).ok_or_else(|| {
        decode_err(
            codes::DECODE_SHAPE_MISMATCH,
            format!("stage row is missing column {}", col),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, engine_from_database, execute_bound};
    use nrc::builder::*;
    use nrc::schema::{Database, Schema, TableSchema};
    use nrc::term::Term;
    use nrc::types::BaseType;

    fn schema() -> Schema {
        Schema::new()
            .with_table(
                TableSchema::new(
                    "departments",
                    vec![("id", BaseType::Int), ("name", BaseType::String)],
                )
                .with_key(vec!["id"]),
            )
            .with_table(
                TableSchema::new(
                    "employees",
                    vec![
                        ("id", BaseType::Int),
                        ("dept", BaseType::String),
                        ("name", BaseType::String),
                        ("salary", BaseType::Int),
                    ],
                )
                .with_key(vec!["id"]),
            )
    }

    fn db() -> Database {
        let mut db = Database::new(schema());
        for (id, name) in [(1, "Product"), (2, "Research")] {
            db.insert_row(
                "departments",
                vec![("id", Value::Int(id)), ("name", Value::string(name))],
            )
            .unwrap();
        }
        for (id, dept, name, salary) in [
            (1, "Product", "Alex", 20000),
            (2, "Product", "Bert", 900),
            (3, "Research", "Cora", 50000),
        ] {
            db.insert_row(
                "employees",
                vec![
                    ("id", Value::Int(id)),
                    ("dept", Value::string(dept)),
                    ("name", Value::string(name)),
                    ("salary", Value::Int(salary)),
                ],
            )
            .unwrap();
        }
        db
    }

    fn nested_query() -> Term {
        for_in(
            "d",
            table("departments"),
            singleton(record(vec![
                ("dept", project(var("d"), "name")),
                (
                    "emps",
                    for_where(
                        "e",
                        table("employees"),
                        eq(project(var("e"), "dept"), project(var("d"), "name")),
                        singleton(project(var("e"), "name")),
                    ),
                ),
            ])),
        )
    }

    fn employee(id: i64, dept: &str, name: &str, salary: i64) -> Row {
        vec![
            SqlValue::Int(id),
            SqlValue::str(dept),
            SqlValue::str(name),
            SqlValue::Int(salary),
        ]
    }

    #[test]
    fn a_leaf_insert_is_maintained_without_reseeding() {
        let database = db();
        let compiled = Arc::new(compile(&nested_query(), &schema()).unwrap());
        let engine = engine_from_database(&database).unwrap();
        let view =
            LiveView::new(Arc::clone(&compiled), ParamValues::new(), &engine.storage()).unwrap();
        assert!(view
            .value()
            .unwrap()
            .multiset_eq(&execute_bound(&compiled, &engine, &ParamValues::new()).unwrap()));

        let batch = WriteBatch::new().insert("employees", employee(4, "Research", "Dana", 700));
        let delta = engine.apply_batch(&batch).unwrap();
        view.maintain(&engine.storage(), &delta).unwrap();

        let expected = execute_bound(&compiled, &engine, &ParamValues::new()).unwrap();
        assert!(view.value().unwrap().multiset_eq(&expected));
        assert_eq!(view.generation(), 1);
        assert_eq!(view.reseeds(), 0);
    }

    #[test]
    fn deletes_and_updates_invalidate_only_the_touched_groups() {
        let database = db();
        let compiled = Arc::new(compile(&nested_query(), &schema()).unwrap());
        let engine = engine_from_database(&database).unwrap();
        let view =
            LiveView::new(Arc::clone(&compiled), ParamValues::new(), &engine.storage()).unwrap();
        view.value().unwrap(); // populate the cache and its dependency edges

        let batch = WriteBatch::new()
            .delete("employees", employee(2, "Product", "Bert", 900))
            .update(
                "employees",
                vec![SqlValue::Int(3)],
                employee(3, "Research", "Cora", 51000),
            );
        let delta = engine.apply_batch(&batch).unwrap();
        view.maintain(&engine.storage(), &delta).unwrap();

        let expected = execute_bound(&compiled, &engine, &ParamValues::new()).unwrap();
        assert!(view.value().unwrap().multiset_eq(&expected));
        assert_eq!(view.reseeds(), 0);
    }

    #[test]
    fn a_net_zero_batch_leaves_the_view_unchanged() {
        let database = db();
        let compiled = Arc::new(compile(&nested_query(), &schema()).unwrap());
        let engine = engine_from_database(&database).unwrap();
        let view =
            LiveView::new(Arc::clone(&compiled), ParamValues::new(), &engine.storage()).unwrap();
        let before = view.value().unwrap();

        let row = employee(9, "Product", "Zed", 1);
        let batch = WriteBatch::new()
            .insert("employees", row.clone())
            .delete("employees", row);
        let delta = engine.apply_batch(&batch).unwrap();
        view.maintain(&engine.storage(), &delta).unwrap();

        assert!(view.value().unwrap().multiset_eq(&before));
        assert_eq!(view.generation(), 1);
    }

    #[test]
    fn an_outer_table_write_reorders_every_group_consistently() {
        // Inserting a department shifts ROW_NUMBER ordinals in the shared
        // outer CTE of both stages; the maintained view must keep the
        // cross-stage index join consistent.
        let database = db();
        let compiled = Arc::new(compile(&nested_query(), &schema()).unwrap());
        let engine = engine_from_database(&database).unwrap();
        let view =
            LiveView::new(Arc::clone(&compiled), ParamValues::new(), &engine.storage()).unwrap();
        view.value().unwrap();

        let batch = WriteBatch::new()
            .insert(
                "departments",
                vec![SqlValue::Int(3), SqlValue::str("Design")],
            )
            .insert("employees", employee(5, "Design", "Eve", 1200));
        let delta = engine.apply_batch(&batch).unwrap();
        view.maintain(&engine.storage(), &delta).unwrap();

        let expected = execute_bound(&compiled, &engine, &ParamValues::new()).unwrap();
        assert!(view.value().unwrap().multiset_eq(&expected));
    }
}
