//! Cross-stage static verification of compiled shredded packages.
//!
//! The shredding translation is semantics-preserving *by construction*, but
//! the construction spans five IR hops; this module re-proves the invariants
//! each hop hands to the next, at prepare time:
//!
//! * **[`codes::MISSING_INDEX_COLUMNS`]** — every stage's column list leads
//!   with the `(oidx_tag, oidx_ord)` outer index pair;
//! * **[`codes::STAGE_COLUMN_MISMATCH`]** — the stage's physical plan
//!   produces exactly the columns its [`ResultLayout`] decodes;
//! * **[`codes::PACKAGE_SHAPE_MISMATCH`]** — the layout's `Index` leaves
//!   line up one-to-one (by record path) with the stage's immediate child
//!   bags, so every inner index written by a parent is read by a child;
//! * **[`codes::DUPLICATE_BRANCH_TAG`]** — static branch tags are unique
//!   within a stage (index keys stay unique per the `IndexScheme`);
//! * **[`codes::BROKEN_INDEX_TREE`]** — stage parent/child index references
//!   form a tree: top-level branches carry the ⊤ outer tag and every child
//!   branch's outer tag is one of its parent's branch tags;
//! * plus the full [`analysis::plan_check`] pass over every stage plan.
//!
//! [`check_compiled`] covers the SQL pipeline's [`CompiledQuery`];
//! [`check_package`] covers any bare `Package<ShreddedQuery>` (the
//! shredded-memory backend's payload).

use crate::flatten::{LeafKind, OUTER_ORD_COLUMN, OUTER_TAG_COLUMN};
use crate::nf::TOP;
use crate::pipeline::CompiledQuery;
use crate::shred::{Package, ShreddedQuery};
use analysis::{codes, plan_check, Diagnostic, Stage};
use sqlengine::storage::TableDef;

/// Verify a compiled SQL-pipeline query: per-stage layout/plan agreement,
/// the index tree across stages, and the physical-plan validator on every
/// stage plan. `declared_params` is the full set of parameter names the
/// query declares (user-written and auto-lifted).
pub fn check_compiled(
    compiled: &CompiledQuery,
    catalog: &[TableDef],
    declared_params: &[String],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    walk_stages(&compiled.stages, "package", &mut |stage, path| {
        let columns = stage.layout.columns();
        if columns.len() < 2 || columns[0] != OUTER_TAG_COLUMN || columns[1] != OUTER_ORD_COLUMN {
            out.push(Diagnostic::error(
                Stage::Package,
                codes::MISSING_INDEX_COLUMNS,
                path.to_string(),
                format!(
                    "stage columns [{}] do not lead with the ({}, {}) index pair",
                    columns.join(", "),
                    OUTER_TAG_COLUMN,
                    OUTER_ORD_COLUMN
                ),
            ));
        }
        let plan_columns = stage.plan.output_columns();
        if plan_columns != columns {
            out.push(Diagnostic::error(
                Stage::Package,
                codes::STAGE_COLUMN_MISMATCH,
                path.to_string(),
                format!(
                    "stage plan produces [{}] but the layout decodes [{}]",
                    plan_columns.join(", "),
                    columns.join(", ")
                ),
            ));
        }
        let mut plan_diags = plan_check::validate_plan(&stage.plan, catalog, declared_params);
        for d in &mut plan_diags {
            d.path = format!("{}/{}", path, d.path);
        }
        out.extend(plan_diags);
        // Correlated subqueries the logical optimizer had to leave in place:
        // these still execute (nested-loop, once per outer row), so they are
        // warnings, with the decorrelator's reason as the help text.
        for skip in &stage.opt.skipped {
            out.push(
                Diagnostic::warning(
                    Stage::Plan,
                    codes::RETAINED_CORRELATED_SUBQUERY,
                    path.to_string(),
                    format!(
                        "plan retains a correlated subquery ({}) the optimizer could not \
                         rewrite into a hash semi-join",
                        skip.node
                    ),
                )
                .with_help(skip.reason.clone()),
            );
        }
    });
    // The layout's Index leaves must line up with the stage's child bags.
    check_shapes(&compiled.stages, "package", &mut out);
    out.extend(check_index_tree(&compiled.stages, &mut |s| &s.shredded));
    out
}

/// Verify a bare shredded package (no SQL rendering): branch tags unique
/// per stage, parent/child outer tags forming a tree.
pub fn check_package(package: &Package<ShreddedQuery>) -> Vec<Diagnostic> {
    check_index_tree(package, &mut |s| s)
}

/// Check the per-stage tag invariants over any stage-annotated package:
/// `accessor` projects each annotation onto its shredded query.
pub fn check_index_tree<T>(
    package: &Package<T>,
    accessor: &mut impl FnMut(&T) -> &ShreddedQuery,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    fn go<T>(
        package: &Package<T>,
        parent: Option<&ShreddedQuery>,
        path: &str,
        accessor: &mut impl FnMut(&T) -> &ShreddedQuery,
        out: &mut Vec<Diagnostic>,
    ) {
        match package {
            Package::Base(_) => {}
            Package::Record(fields) => {
                for (label, field) in fields {
                    go(field, parent, &format!("{}.{}", path, label), accessor, out);
                }
            }
            Package::Bag(stage, inner) => {
                let query = accessor(stage);
                let mut seen = Vec::new();
                for branch in &query.branches {
                    if seen.contains(&branch.tag) {
                        out.push(Diagnostic::error(
                            Stage::Package,
                            codes::DUPLICATE_BRANCH_TAG,
                            path.to_string(),
                            format!(
                                "branch tag {} occurs more than once in this stage",
                                branch.tag
                            ),
                        ));
                    }
                    seen.push(branch.tag);
                    match parent {
                        None => {
                            if branch.outer_tag != TOP {
                                out.push(Diagnostic::error(
                                    Stage::Package,
                                    codes::BROKEN_INDEX_TREE,
                                    path.to_string(),
                                    format!(
                                        "top-level branch {} has outer tag {}, expected {}",
                                        branch.tag, branch.outer_tag, TOP
                                    ),
                                ));
                            }
                        }
                        Some(p) => {
                            if !p.branches.iter().any(|b| b.tag == branch.outer_tag) {
                                out.push(Diagnostic::error(
                                    Stage::Package,
                                    codes::BROKEN_INDEX_TREE,
                                    path.to_string(),
                                    format!(
                                        "branch {} references outer tag {} which no parent \
                                         branch produces",
                                        branch.tag, branch.outer_tag
                                    ),
                                ));
                            }
                        }
                    }
                }
                go(inner, Some(query), &format!("{}.bag", path), accessor, out);
            }
        }
    }
    go(package, None, "package", accessor, &mut out);
    out
}

/// Visit every bag annotation in the package with its breadcrumb path.
fn walk_stages<'a, T>(package: &'a Package<T>, path: &str, f: &mut impl FnMut(&'a T, &str)) {
    match package {
        Package::Base(_) => {}
        Package::Record(fields) => {
            for (label, field) in fields {
                walk_stages(field, &format!("{}.{}", path, label), f);
            }
        }
        Package::Bag(stage, inner) => {
            f(stage, path);
            walk_stages(inner, &format!("{}.bag", path), f);
        }
    }
}

/// Check every stage's layout `Index` leaves against the record paths of its
/// immediate child bags ([`codes::PACKAGE_SHAPE_MISMATCH`]).
fn check_shapes(
    package: &Package<crate::pipeline::QueryStage>,
    path: &str,
    out: &mut Vec<Diagnostic>,
) {
    match package {
        Package::Base(_) => {}
        Package::Record(fields) => {
            for (label, field) in fields {
                check_shapes(field, &format!("{}.{}", path, label), out);
            }
        }
        Package::Bag(stage, inner) => {
            let mut child_paths: Vec<Vec<String>> = Vec::new();
            collect_child_bag_paths(inner, &mut Vec::new(), &mut child_paths);
            let mut index_paths: Vec<Vec<String>> = stage
                .layout
                .leaves
                .iter()
                .filter(|l| l.kind == LeafKind::Index)
                .map(|l| l.path.clone())
                .collect();
            index_paths.sort();
            child_paths.sort();
            if index_paths != child_paths {
                out.push(Diagnostic::error(
                    Stage::Package,
                    codes::PACKAGE_SHAPE_MISMATCH,
                    path.to_string(),
                    format!(
                        "layout index leaves at [{}] but child bags at [{}]",
                        join_paths(&index_paths),
                        join_paths(&child_paths)
                    ),
                ));
            }
            check_shapes(inner, &format!("{}.bag", path), out);
        }
    }
}

/// Record paths of the bags directly inside a package node: descend through
/// records, stop at bags (deeper bags belong to those children).
fn collect_child_bag_paths<T>(
    package: &Package<T>,
    prefix: &mut Vec<String>,
    out: &mut Vec<Vec<String>>,
) {
    match package {
        Package::Base(_) => {}
        Package::Record(fields) => {
            for (label, field) in fields {
                prefix.push(label.clone());
                collect_child_bag_paths(field, prefix, out);
                prefix.pop();
            }
        }
        Package::Bag(_, _) => out.push(prefix.clone()),
    }
}

fn join_paths(paths: &[Vec<String>]) -> String {
    paths
        .iter()
        .map(|p| {
            if p.is_empty() {
                "ε".to_string()
            } else {
                p.join(".")
            }
        })
        .collect::<Vec<_>>()
        .join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, table_defs_of_schema};
    use nrc::builder::*;
    use nrc::schema::{Schema, TableSchema};
    use nrc::types::BaseType;

    fn schema() -> Schema {
        Schema::new()
            .with_table(
                TableSchema::new("departments", vec![("name", BaseType::String)])
                    .with_key(vec!["name"]),
            )
            .with_table(
                TableSchema::new(
                    "employees",
                    vec![
                        ("dept", BaseType::String),
                        ("name", BaseType::String),
                        ("salary", BaseType::Int),
                    ],
                )
                .with_key(vec!["name"]),
            )
    }

    fn nested_query() -> nrc::term::Term {
        for_in(
            "d",
            table("departments"),
            singleton(record(vec![
                ("dept", project(var("d"), "name")),
                (
                    "staff",
                    for_where(
                        "e",
                        table("employees"),
                        eq(project(var("e"), "dept"), project(var("d"), "name")),
                        singleton(project(var("e"), "name")),
                    ),
                ),
            ])),
        )
    }

    #[test]
    fn well_formed_compiled_queries_verify_clean() {
        let schema = schema();
        let compiled = compile(&nested_query(), &schema).unwrap();
        let catalog = table_defs_of_schema(&schema);
        let found = check_compiled(&compiled, &catalog, &[]);
        assert!(found.is_empty(), "{:?}", found);
    }

    #[test]
    fn corrupted_stage_plans_are_rejected() {
        let schema = schema();
        let mut compiled = compile(&nested_query(), &schema).unwrap();
        // Swap the top stage's plan for the child stage's: the column lists
        // cannot agree with the top layout any more.
        let plans: Vec<_> = compiled
            .stages
            .annotations()
            .iter()
            .map(|s| s.plan.clone())
            .collect();
        assert!(plans.len() >= 2);
        if let Package::Bag(stage, _) = &mut compiled.stages {
            stage.plan = plans[1].clone();
        }
        let catalog = table_defs_of_schema(&schema);
        let found = check_compiled(&compiled, &catalog, &[]);
        assert!(found.iter().any(|d| d.code == codes::STAGE_COLUMN_MISMATCH));
    }

    #[test]
    fn broken_outer_tags_are_rejected() {
        let schema = schema();
        let mut compiled = compile(&nested_query(), &schema).unwrap();
        // Point the child stage's outer tag at a tag no parent branch has.
        fn corrupt(p: &mut Package<crate::pipeline::QueryStage>, depth: usize) {
            match p {
                Package::Bag(stage, inner) => {
                    if depth == 1 {
                        for b in &mut stage.shredded.branches {
                            b.outer_tag = crate::nf::StaticIndex(999);
                        }
                    }
                    corrupt(inner, depth + 1);
                }
                Package::Record(fields) => {
                    for (_, f) in fields {
                        corrupt(f, depth);
                    }
                }
                Package::Base(_) => {}
            }
        }
        corrupt(&mut compiled.stages, 0);
        let found = check_index_tree(&compiled.stages, &mut |s| &s.shredded);
        assert!(found.iter().any(|d| d.code == codes::BROKEN_INDEX_TREE));
    }

    #[test]
    fn duplicate_branch_tags_are_rejected() {
        let schema = schema();
        let q = union(
            for_in(
                "x",
                table("departments"),
                singleton(project(var("x"), "name")),
            ),
            for_in(
                "y",
                table("departments"),
                singleton(project(var("y"), "name")),
            ),
        );
        let mut compiled = compile(&q, &schema).unwrap();
        if let Package::Bag(stage, _) = &mut compiled.stages {
            assert!(stage.shredded.branches.len() >= 2);
            stage.shredded.branches[1].tag = stage.shredded.branches[0].tag;
        }
        let found = check_package(&compiled.stages.map(&mut |s| s.shredded.clone()));
        assert!(found.iter().any(|d| d.code == codes::DUPLICATE_BRANCH_TAG));
    }
}
