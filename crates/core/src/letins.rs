//! Let-insertion (Section 6.2, Figures 6 and 7).
//!
//! Let-insertion rewrites each shredded comprehension into (at most) two
//! subqueries:
//!
//! ```text
//! let q = for (G⃗out where Xout) return ⟨Rout, index⟩ in
//! for (z ← q, G⃗in where Xin) return N
//! ```
//!
//! The let-bound subquery enumerates the *outer* generator levels and pairs
//! each combination with a flat surrogate (`index`); the body joins back to
//! it, so the abstract indexes `a⋅out` / `a⋅in` of shredding become concrete
//! pairs `⟨a, z.2⟩` / `⟨a, index⟩` of integers. This is the step that makes
//! shredded queries expressible in SQL, where `index` is implemented with
//! `ROW_NUMBER` (Section 7).

use crate::error::ShredError;
use crate::nf::{Generator, StaticIndex, TOP};
use crate::semantics::{FlatValue, IndexValue, ShredResult};
use crate::shred::{ShBase, ShredComp, ShredInner, ShreddedQuery};
use nrc::env::Env;
use nrc::eval::apply_prim;
use nrc::schema::{Database, Schema};
use nrc::term::{Constant, PrimOp};
use nrc::value::Value;
use std::fmt;

/// The distinguished variable bound to the let-bound subquery.
pub const OUTER_VAR: &str = "z";

/// A let-inserted query: a union of let-inserted comprehensions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LetQuery {
    pub branches: Vec<LetComp>,
}

/// One let-inserted comprehension.
#[derive(Debug, Clone, PartialEq)]
pub struct LetComp {
    /// The let-bound outer subquery, if the comprehension has more than one
    /// level. Its rows carry all columns of the outer generators plus a flat
    /// surrogate index.
    pub binding: Option<LetBinding>,
    /// The generators of the innermost level (drawn from tables). When
    /// `binding` is present the body additionally ranges over `z ← q`.
    pub generators: Vec<Generator>,
    /// The innermost level's condition, with outer-variable references
    /// rewritten to projections from `z`.
    pub condition: LetBase,
    /// The static tag of the outer index `⟨outer_tag, …⟩`.
    pub outer_tag: StaticIndex,
    /// The static tag of this comprehension's own rows (its `returnᵇ`).
    pub tag: StaticIndex,
    /// The inner term, with nested bags replaced by `⟨tag, index⟩` pairs.
    pub inner: LetInner,
}

impl LetComp {
    /// Does the outer index come from the let binding (`z.2`) rather than
    /// being the constant top-level surrogate `1`?
    pub fn outer_from_binding(&self) -> bool {
        self.binding.is_some()
    }
}

/// The let-bound outer subquery `for (G⃗out where Xout) return ⟨Rout, index⟩`.
#[derive(Debug, Clone, PartialEq)]
pub struct LetBinding {
    pub generators: Vec<Generator>,
    pub condition: LetBase,
}

/// Base terms of let-inserted queries: n-ary projections, constants,
/// primitive applications and emptiness tests.
#[derive(Debug, Clone, PartialEq)]
pub enum LetBase {
    /// `x.ℓ1.….ℓn` — a projection path. Paths of length one project table
    /// columns; longer paths project from the let-bound tuple `z`.
    Proj {
        var: String,
        path: Vec<String>,
    },
    Const(Constant),
    /// A typed bind variable `?name : O`; SQL generation renders it as the
    /// named placeholder `:name`.
    Param(String, nrc::BaseType),
    Prim(PrimOp, Vec<LetBase>),
    /// `empty L` over a (binding-free) let-inserted query.
    IsEmpty(Box<LetQuery>),
}

impl LetBase {
    /// The constant `true`.
    pub fn truth() -> LetBase {
        LetBase::Const(Constant::Bool(true))
    }

    /// Is this the constant `true`?
    pub fn is_truth(&self) -> bool {
        matches!(self, LetBase::Const(Constant::Bool(true)))
    }
}

/// Inner terms: base expressions, records, or the `index` primitive.
#[derive(Debug, Clone, PartialEq)]
pub enum LetInner {
    Base(LetBase),
    Record(Vec<(String, LetInner)>),
    /// An index pair `⟨tag, source⟩`.
    IndexPair {
        tag: StaticIndex,
        source: IndexSource,
    },
}

/// Where the dynamic component of an index pair comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexSource {
    /// `index`: the surrogate of the current (innermost) subquery.
    CurrentRow,
    /// `z.2`: the surrogate carried by the let-bound outer subquery.
    OuterBinding,
    /// The literal `1` (top-level outer index of a single-level block).
    One,
}

impl fmt::Display for LetQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.branches.iter().enumerate() {
            if i > 0 {
                write!(f, "\n⊎ ")?;
            }
            write!(f, "{}", c)?;
        }
        Ok(())
    }
}

impl fmt::Display for LetComp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(b) = &self.binding {
            write!(f, "let q = for (")?;
            for (i, g) in b.generators.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", g)?;
            }
            write!(f, " where …) return ⟨…, index⟩ in ")?;
        }
        write!(f, "for (")?;
        if self.binding.is_some() {
            write!(f, "{} ← q, ", OUTER_VAR)?;
        }
        for (i, g) in self.generators.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", g)?;
        }
        write!(f, " where …) return ⟨⟨{}, …⟩, …⟩", self.outer_tag)
    }
}

// ---------------------------------------------------------------------------
// The let-insertion translation (Figure 7)
// ---------------------------------------------------------------------------

/// Apply let-insertion to a shredded query.
pub fn let_insert(query: &ShreddedQuery) -> Result<LetQuery, ShredError> {
    let branches = query
        .branches
        .iter()
        .map(let_insert_comp)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(LetQuery { branches })
}

fn let_insert_comp(comp: &ShredComp) -> Result<LetComp, ShredError> {
    if comp.levels.is_empty() {
        return Err(ShredError::Internal(
            "shredded comprehension with no levels".to_string(),
        ));
    }
    let (outer_levels, inner_level) = comp.levels.split_at(comp.levels.len() - 1);
    let inner_level = &inner_level[0];

    // Outer variables: every generator of the outer levels, in order. These
    // become the components of the let-bound tuple Rout.
    let outer_gens: Vec<Generator> = outer_levels
        .iter()
        .flat_map(|l| l.generators.iter().cloned())
        .collect();
    let outer_vars: Vec<String> = outer_gens.iter().map(|g| g.var.clone()).collect();

    let binding = if outer_gens.is_empty() {
        None
    } else {
        let condition = outer_levels
            .iter()
            .map(|l| translate_base(&l.condition, &[]))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .fold(LetBase::truth(), and_let);
        Some(LetBinding {
            generators: outer_gens,
            condition,
        })
    };

    let condition = translate_base(&inner_level.condition, &outer_vars)?;
    let inner = translate_inner(&comp.inner, &outer_vars)?;

    Ok(LetComp {
        binding,
        generators: inner_level.generators.clone(),
        condition,
        outer_tag: comp.outer_tag,
        tag: comp.tag,
        inner,
    })
}

fn and_let(acc: LetBase, next: LetBase) -> LetBase {
    if acc.is_truth() {
        next
    } else if next.is_truth() {
        acc
    } else {
        LetBase::Prim(PrimOp::And, vec![acc, next])
    }
}

/// `L_y⃗(X)`: translate a base term, rewriting references to outer variables
/// `y_i` into projections `z.#1.#i.ℓ` from the let-bound tuple.
fn translate_base(base: &ShBase, outer_vars: &[String]) -> Result<LetBase, ShredError> {
    Ok(match base {
        ShBase::Proj { var, field } => match outer_vars.iter().position(|y| y == var) {
            Some(i) => LetBase::Proj {
                var: OUTER_VAR.to_string(),
                path: vec!["#1".to_string(), format!("#{}", i + 1), field.clone()],
            },
            None => LetBase::Proj {
                var: var.clone(),
                path: vec![field.clone()],
            },
        },
        ShBase::Const(c) => LetBase::Const(c.clone()),
        ShBase::Param(name, ty) => LetBase::Param(name.clone(), *ty),
        ShBase::Prim(op, args) => LetBase::Prim(
            *op,
            args.iter()
                .map(|a| translate_base(a, outer_vars))
                .collect::<Result<_, _>>()?,
        ),
        ShBase::IsEmpty(q) => {
            // Queries under `empty` were shredded at path ε, so every branch
            // has a single level and let-insertion introduces no binding; but
            // their conditions may reference the *enclosing* query's outer
            // variables, which must still be rewritten.
            let mut branches = Vec::with_capacity(q.branches.len());
            for b in &q.branches {
                let mut comp = let_insert_comp(b)?;
                comp.condition = rewrite_outer_refs(&comp.condition, outer_vars)?;
                branches.push(comp);
            }
            LetBase::IsEmpty(Box::new(LetQuery { branches }))
        }
    })
}

/// Rewrite direct projections `y.ℓ` on outer variables inside an
/// already-translated condition (used for the bodies of `empty` subqueries).
fn rewrite_outer_refs(base: &LetBase, outer_vars: &[String]) -> Result<LetBase, ShredError> {
    Ok(match base {
        LetBase::Proj { var, path } if path.len() == 1 => {
            match outer_vars.iter().position(|y| y == var) {
                Some(i) => LetBase::Proj {
                    var: OUTER_VAR.to_string(),
                    path: vec!["#1".to_string(), format!("#{}", i + 1), path[0].clone()],
                },
                None => base.clone(),
            }
        }
        LetBase::Proj { .. } | LetBase::Const(_) | LetBase::Param(_, _) => base.clone(),
        LetBase::Prim(op, args) => LetBase::Prim(
            *op,
            args.iter()
                .map(|a| rewrite_outer_refs(a, outer_vars))
                .collect::<Result<_, _>>()?,
        ),
        LetBase::IsEmpty(q) => {
            let mut branches = Vec::with_capacity(q.branches.len());
            for b in &q.branches {
                let mut comp = b.clone();
                comp.condition = rewrite_outer_refs(&comp.condition, outer_vars)?;
                branches.push(comp);
            }
            LetBase::IsEmpty(Box::new(LetQuery { branches }))
        }
    })
}

fn translate_inner(inner: &ShredInner, outer_vars: &[String]) -> Result<LetInner, ShredError> {
    Ok(match inner {
        ShredInner::Base(b) => LetInner::Base(translate_base(b, outer_vars)?),
        ShredInner::Record(fields) => LetInner::Record(
            fields
                .iter()
                .map(|(l, v)| Ok((l.clone(), translate_inner(v, outer_vars)?)))
                .collect::<Result<_, ShredError>>()?,
        ),
        ShredInner::InnerIndex(tag) => LetInner::IndexPair {
            tag: *tag,
            source: IndexSource::CurrentRow,
        },
    })
}

// ---------------------------------------------------------------------------
// Semantics of let-inserted queries (Figure 6)
// ---------------------------------------------------------------------------

/// Evaluate a let-inserted query over a database, producing indexed flat
/// results directly comparable with the flat-index shredded semantics
/// (Theorem 6). Indexes are materialised as [`IndexValue::Flat`].
pub fn eval_let(
    query: &LetQuery,
    schema: &Schema,
    db: &Database,
) -> Result<ShredResult, ShredError> {
    eval_let_in(query, schema, db, &Env::empty())
}

fn eval_let_in(
    query: &LetQuery,
    schema: &Schema,
    db: &Database,
    outer_env: &Env,
) -> Result<ShredResult, ShredError> {
    let mut out = Vec::new();
    for branch in &query.branches {
        eval_let_comp(branch, schema, db, outer_env, &mut out)?;
    }
    Ok(out)
}

/// The row produced by the let-bound subquery: the bound outer rows plus the
/// flat surrogate.
struct OuterRow {
    rows: Vec<Value>,
    surrogate: i64,
}

fn eval_let_comp(
    comp: &LetComp,
    schema: &Schema,
    db: &Database,
    outer_env: &Env,
    out: &mut ShredResult,
) -> Result<(), ShredError> {
    // Evaluate the let-bound subquery, if any.
    let outer_rows: Vec<OuterRow> = match &comp.binding {
        None => vec![OuterRow {
            rows: Vec::new(),
            surrogate: 1,
        }],
        Some(binding) => {
            let combos = satisfying_let_bindings(
                &binding.generators,
                &binding.condition,
                schema,
                db,
                outer_env,
            )?;
            combos
                .into_iter()
                .enumerate()
                .map(|(i, rows)| OuterRow {
                    rows,
                    surrogate: (i + 1) as i64,
                })
                .collect()
        }
    };

    // Evaluate the body: z ranges over the outer rows, then the inner
    // generators, with a single flat surrogate numbering the satisfying
    // combinations.
    let inner_tables: Vec<Vec<Value>> = comp
        .generators
        .iter()
        .map(|g| {
            db.table_rows(&g.table)
                .map_err(|_| ShredError::Internal(format!("unknown table {}", g.table)))
        })
        .collect::<Result<_, _>>()?;

    let mut surrogate = 0i64;
    for outer in &outer_rows {
        let mut current: Vec<Value> = Vec::with_capacity(comp.generators.len());
        enumerate_rows(&inner_tables, 0, &mut current, &mut |rows| {
            let env = LetEnv {
                binding: comp.binding.as_ref().map(|b| (b, outer)),
                generators: &comp.generators,
                rows,
                outer_env,
            };
            let keep = eval_let_base(&comp.condition, &env, schema, db)?
                .as_bool()
                .ok_or_else(|| {
                    ShredError::Internal("let-inserted condition is not boolean".to_string())
                })?;
            if !keep {
                return Ok(());
            }
            surrogate += 1;
            let outer_index = IndexValue::Flat {
                tag: comp.outer_tag,
                ordinal: if comp.outer_tag == TOP {
                    1
                } else {
                    outer.surrogate
                },
            };
            let inner = eval_let_inner(&comp.inner, &env, schema, db, comp.tag, surrogate, outer)?;
            out.push((outer_index, inner));
            Ok(())
        })?;
    }
    Ok(())
}

fn enumerate_rows(
    tables: &[Vec<Value>],
    depth: usize,
    current: &mut Vec<Value>,
    visit: &mut impl FnMut(&[Value]) -> Result<(), ShredError>,
) -> Result<(), ShredError> {
    if depth == tables.len() {
        return visit(current);
    }
    for row in &tables[depth] {
        current.push(row.clone());
        enumerate_rows(tables, depth + 1, current, visit)?;
        current.pop();
    }
    Ok(())
}

fn satisfying_let_bindings(
    generators: &[Generator],
    condition: &LetBase,
    schema: &Schema,
    db: &Database,
    outer_env: &Env,
) -> Result<Vec<Vec<Value>>, ShredError> {
    let tables: Vec<Vec<Value>> = generators
        .iter()
        .map(|g| {
            db.table_rows(&g.table)
                .map_err(|_| ShredError::Internal(format!("unknown table {}", g.table)))
        })
        .collect::<Result<_, _>>()?;
    let mut out = Vec::new();
    let mut current: Vec<Value> = Vec::with_capacity(generators.len());
    enumerate_rows(&tables, 0, &mut current, &mut |rows| {
        let env = LetEnv {
            binding: None,
            generators,
            rows,
            outer_env,
        };
        let keep = eval_let_base(condition, &env, schema, db)?
            .as_bool()
            .ok_or_else(|| ShredError::Internal("binding condition is not boolean".to_string()))?;
        if keep {
            out.push(rows.to_vec());
        }
        Ok(())
    })?;
    Ok(out)
}

/// The evaluation environment of a let-inserted subquery: the optional
/// let-bound row (`z`), the inner generators' current rows, and any enclosing
/// environment (for correlated `empty` subqueries).
struct LetEnv<'a> {
    binding: Option<(&'a LetBinding, &'a OuterRow)>,
    generators: &'a [Generator],
    rows: &'a [Value],
    outer_env: &'a Env,
}

impl LetEnv<'_> {
    fn lookup_var(&self, var: &str) -> Option<Value> {
        if let Some(i) = self.generators.iter().position(|g| g.var == var) {
            return self.rows.get(i).cloned();
        }
        self.outer_env.lookup(var).cloned()
    }
}

fn eval_let_base(
    base: &LetBase,
    env: &LetEnv<'_>,
    schema: &Schema,
    db: &Database,
) -> Result<Value, ShredError> {
    match base {
        LetBase::Proj { var, path } => {
            if var == OUTER_VAR && path.len() == 3 {
                // z.#1.#i.ℓ — a projection into the let-bound tuple.
                let (binding, outer) = env.binding.ok_or_else(|| {
                    ShredError::Internal("reference to z without a let binding".to_string())
                })?;
                let idx: usize = path[1]
                    .trim_start_matches('#')
                    .parse()
                    .map_err(|_| ShredError::Internal(format!("bad tuple label {}", path[1])))?;
                let row = outer.rows.get(idx - 1).ok_or_else(|| {
                    ShredError::Internal(format!(
                        "outer tuple has no component {} ({} generators)",
                        idx,
                        binding.generators.len()
                    ))
                })?;
                row.field(&path[2]).cloned().ok_or_else(|| {
                    ShredError::Internal(format!("no field {} in outer row", path[2]))
                })
            } else {
                let v = env
                    .lookup_var(var)
                    .ok_or_else(|| ShredError::Internal(format!("unbound variable {}", var)))?;
                let mut current = v;
                for field in path {
                    current = current
                        .field(field)
                        .cloned()
                        .ok_or_else(|| ShredError::Internal(format!("no field {}", field)))?;
                }
                Ok(current)
            }
        }
        LetBase::Const(c) => Ok(Value::from_constant(c)),
        LetBase::Param(name, ty) => Err(ShredError::MissingParam {
            name: name.clone(),
            expected: *ty,
        }),
        LetBase::Prim(op, args) => {
            let vals = args
                .iter()
                .map(|a| eval_let_base(a, env, schema, db))
                .collect::<Result<Vec<_>, _>>()?;
            apply_prim(*op, &vals).map_err(ShredError::Eval)
        }
        LetBase::IsEmpty(q) => {
            // Build an environment exposing the current generator rows to the
            // correlated subquery.
            let mut nested_env = env.outer_env.clone();
            for (gen, row) in env.generators.iter().zip(env.rows.iter()) {
                nested_env.push(&gen.var, row.clone());
            }
            let rows = eval_let_in(q, schema, db, &nested_env)?;
            Ok(Value::Bool(rows.is_empty()))
        }
    }
}

#[allow(clippy::only_used_in_recursion)]
fn eval_let_inner(
    inner: &LetInner,
    env: &LetEnv<'_>,
    schema: &Schema,
    db: &Database,
    tag: StaticIndex,
    surrogate: i64,
    outer: &OuterRow,
) -> Result<FlatValue, ShredError> {
    match inner {
        LetInner::Base(b) => Ok(FlatValue::Base(eval_let_base(b, env, schema, db)?)),
        LetInner::Record(fields) => Ok(FlatValue::Record(
            fields
                .iter()
                .map(|(l, v)| {
                    Ok((
                        l.clone(),
                        eval_let_inner(v, env, schema, db, tag, surrogate, outer)?,
                    ))
                })
                .collect::<Result<_, ShredError>>()?,
        )),
        LetInner::IndexPair { tag, source } => {
            let ordinal = match source {
                IndexSource::CurrentRow => surrogate,
                IndexSource::OuterBinding => outer.surrogate,
                IndexSource::One => 1,
            };
            Ok(FlatValue::Index(IndexValue::Flat { tag: *tag, ordinal }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalise::normalise_with_type;
    use crate::shred::shred_query;
    use nrc::builder::*;
    use nrc::schema::{Schema, TableSchema};
    use nrc::types::{BaseType, Path};

    fn schema() -> Schema {
        Schema::new()
            .with_table(
                TableSchema::new(
                    "departments",
                    vec![("id", BaseType::Int), ("name", BaseType::String)],
                )
                .with_key(vec!["id"]),
            )
            .with_table(
                TableSchema::new(
                    "employees",
                    vec![
                        ("id", BaseType::Int),
                        ("dept", BaseType::String),
                        ("name", BaseType::String),
                        ("salary", BaseType::Int),
                    ],
                )
                .with_key(vec!["id"]),
            )
    }

    fn nested_query() -> nrc::Term {
        for_in(
            "d",
            table("departments"),
            singleton(record(vec![
                ("dept", project(var("d"), "name")),
                (
                    "emps",
                    for_where(
                        "e",
                        table("employees"),
                        eq(project(var("e"), "dept"), project(var("d"), "name")),
                        singleton(project(var("e"), "name")),
                    ),
                ),
            ])),
        )
    }

    #[test]
    fn top_level_query_needs_no_binding() {
        let schema = schema();
        let (norm, _ty) = normalise_with_type(&nested_query(), &schema).unwrap();
        let shredded = shred_query(&norm, &Path::empty()).unwrap();
        let lq = let_insert(&shredded).unwrap();
        assert_eq!(lq.branches.len(), 1);
        assert!(lq.branches[0].binding.is_none());
        assert_eq!(lq.branches[0].generators.len(), 1);
    }

    #[test]
    fn inner_query_gets_a_binding_over_the_outer_generators() {
        let schema = schema();
        let (norm, ty) = normalise_with_type(&nested_query(), &schema).unwrap();
        let inner_path = ty.paths()[1].clone();
        let shredded = shred_query(&norm, &inner_path).unwrap();
        let lq = let_insert(&shredded).unwrap();
        assert_eq!(lq.branches.len(), 1);
        let comp = &lq.branches[0];
        let binding = comp.binding.as_ref().expect("binding expected");
        assert_eq!(binding.generators.len(), 1);
        assert_eq!(binding.generators[0].table, "departments");
        assert_eq!(comp.generators.len(), 1);
        assert_eq!(comp.generators[0].table, "employees");
        // The inner condition must reference z rather than the outer variable.
        fn mentions_z(b: &LetBase) -> bool {
            match b {
                LetBase::Proj { var, .. } => var == OUTER_VAR,
                LetBase::Const(_) | LetBase::Param(_, _) => false,
                LetBase::Prim(_, args) => args.iter().any(mentions_z),
                LetBase::IsEmpty(_) => false,
            }
        }
        assert!(mentions_z(&comp.condition));
    }

    #[test]
    fn translated_projection_paths_use_tuple_labels() {
        let b = translate_base(
            &ShBase::Proj {
                var: "d".to_string(),
                field: "name".to_string(),
            },
            &["d".to_string()],
        )
        .unwrap();
        assert_eq!(
            b,
            LetBase::Proj {
                var: OUTER_VAR.to_string(),
                path: vec!["#1".to_string(), "#1".to_string(), "name".to_string()],
            }
        );
    }
}
