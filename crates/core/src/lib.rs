//! # shredding — query shredding for nested multiset queries
//!
//! A reference implementation of *"Query shredding: efficient relational
//! evaluation of queries over nested multisets"* (Cheney, Lindley, Wadler,
//! SIGMOD 2014). The crate translates nested λNRC queries (from the [`nrc`]
//! crate) into a fixed number of flat SQL queries — one per bag constructor
//! of the result type — runs them on a relational engine (the [`sqlengine`]
//! crate, standing in for PostgreSQL) and stitches the flat results back into
//! the nested value the original query denotes.
//!
//! The pipeline stages mirror the paper:
//!
//! | Stage | Paper | Module |
//! |---|---|---|
//! | Normalisation | §2.2, App. C | [`normalise`] |
//! | Normal forms + static indexes | §2.2, §4 | [`nf`] |
//! | Shredding (types, terms, packages) | §4 | [`shred`] |
//! | Shredded semantics + indexing schemes | §5–6, Fig. 5 | [`semantics`] |
//! | Stitching | §5.2 | [`stitch`] |
//! | Let-insertion | §6.2, Fig. 6–7 | [`letins`] |
//! | Record flattening | App. E | [`flatten`] |
//! | SQL generation | §7 | [`sqlgen`] |
//! | End-to-end pipeline | Fig. 1(c) | [`pipeline`] |
//! | Session API, backends, plan cache | — | [`session`] |
//!
//! The documented entry point is the [`session::Shredder`] session: a
//! builder-configured handle owning the schema, the data, a pluggable
//! [`session::SqlBackend`] and an LRU plan cache. Sessions are
//! `Send + Sync` and cheaply clonable (`Arc`-backed): clone one into N
//! worker threads and they share a single plan cache and a single loaded
//! engine — see the "Concurrent sessions & the shared plan cache" section
//! of `DESIGN.md`. The free functions in [`pipeline`] remain available as
//! low-level building blocks.
//!
//! ## Quick start
//!
//! ```
//! use nrc::builder::*;
//! use nrc::schema::{Database, Schema, TableSchema};
//! use nrc::types::BaseType;
//! use nrc::value::Value;
//! use shredding::session::Shredder;
//!
//! // A flat schema with departments and employees.
//! let schema = Schema::new()
//!     .with_table(TableSchema::new("departments",
//!         vec![("id", BaseType::Int), ("name", BaseType::String)]).with_key(vec!["id"]))
//!     .with_table(TableSchema::new("employees",
//!         vec![("id", BaseType::Int), ("dept", BaseType::String),
//!              ("name", BaseType::String)]).with_key(vec!["id"]));
//! let mut db = Database::new(schema.clone());
//! db.insert_row("departments", vec![("id", Value::Int(1)), ("name", Value::string("Sales"))]).unwrap();
//! db.insert_row("employees", vec![("id", Value::Int(1)), ("dept", Value::string("Sales")),
//!                                  ("name", Value::string("Erik"))]).unwrap();
//!
//! // A query with a *nested* result: each department with its employees.
//! let query = for_in("d", table("departments"), singleton(record(vec![
//!     ("dept", project(var("d"), "name")),
//!     ("emps", for_where("e", table("employees"),
//!         eq(project(var("e"), "dept"), project(var("d"), "name")),
//!         singleton(project(var("e"), "name")))),
//! ])));
//!
//! // Open a session: shred to SQL, run on the in-memory engine, stitch.
//! let session = Shredder::builder().database(db).build().unwrap();
//! let prepared = session.prepare(&query).unwrap();
//! println!("{}", prepared.explain());            // per-stage SQL and layout
//! let result = session.execute(&prepared).unwrap();
//!
//! // The session's oracle is the nested reference semantics (Theorem 4).
//! let direct = session.oracle(&query).unwrap();
//! assert!(result.multiset_eq(&direct));
//!
//! // Preparing the same query again skips recompilation via the plan cache.
//! assert!(session.prepare(&query).unwrap().from_cache());
//! ```

#![forbid(unsafe_code)]

pub mod delta;
pub mod error;
pub mod flatten;
pub mod letins;
pub mod nf;
pub mod normalise;
pub mod pipeline;
pub mod semantics;
pub mod session;
pub mod shred;
pub mod sqlgen;
pub mod stitch;
pub mod verify;

/// The static-analysis layer (diagnostics model, λNRC lints, physical-plan
/// validator), re-exported so downstream users need only this crate.
pub use analysis;

/// The observability layer (metrics registry, stage spans, profile sinks),
/// re-exported so downstream users need only this crate.
pub use obs;

pub use analysis::{Diagnostic, Diagnostics, Severity};
pub use delta::{StorageDelta, Subscription, TableDelta, WriteBatch, WriteOp};
pub use error::ShredError;
pub use flatten::ResultLayout;
pub use nf::{NormQuery, StaticIndex};
pub use normalise::{normalise, normalise_with_type};
pub use obs::{
    MetricsRegistry, MetricsSnapshot, ObsSink, OperatorProfile, QueryProfile, RingSink, Span, Stage,
};
pub use pipeline::{compile, engine_from_database, execute, execute_bound, CompiledQuery};
pub use semantics::{IndexScheme, IndexTables, IndexValue};
pub use session::{
    auto_parameterize, BackendPlan, Bindings, CacheStats, ExecContext, Explain,
    NestedOracleBackend, ParamSpec, Params, PlanRequest, PreparedQuery, ShreddedMemoryBackend,
    Shredder, ShredderBuilder, SqlBackend, SqlEngineBackend, StageExplain,
};
pub use shred::{shred_query, shred_type, Package, ShreddedQuery, ShreddedType};
pub use stitch::stitch;
