//! Conversion of let-inserted queries to SQL (Section 7 of the paper).
//!
//! Each let-inserted comprehension becomes a `SELECT` block; its let-bound
//! subquery (if any) becomes a `WITH` clause; the `index` primitive becomes
//! `ROW_NUMBER() OVER (ORDER BY …)` where the ordering lists *all* columns of
//! all tables referenced from the current subquery, making the numbering
//! deterministic; `empty L` becomes `NOT EXISTS (…)`; and nested records are
//! flattened to columns using [`crate::flatten::ResultLayout`].

use crate::error::ShredError;
use crate::flatten::{value_to_sql, LeafKind, ResultLayout, OUTER_ORD_COLUMN, OUTER_TAG_COLUMN};
use crate::letins::{IndexSource, LetBase, LetBinding, LetComp, LetInner, LetQuery, OUTER_VAR};
use crate::nf::Generator;
use nrc::schema::Schema;
use nrc::term::{Constant, PrimOp};
use nrc::value::Value;
use sqlengine::ast::{BinOp, Expr, Query, Select};

/// The name used for every let-bound subquery (`WITH q AS …`). Each branch of
/// a union introduces its own scope, so the name can be reused.
pub const CTE_NAME: &str = "q";

/// Column name of the surrogate produced by a let-bound subquery.
pub const SURROGATE_COLUMN: &str = "rn";

/// Generate the SQL query for a let-inserted shredded query.
pub fn sql_of_let_query(
    query: &LetQuery,
    layout: &ResultLayout,
    schema: &Schema,
) -> Result<Query, ShredError> {
    if query.branches.is_empty() {
        // An empty union produces no rows; emit a select with an impossible
        // condition so that the column list still matches the layout.
        let mut select = Select::new();
        select = push_index_items(select, 0, Expr::lit(0i64), layout);
        let select = empty_branch_items(select, layout).filter(Expr::lit(false));
        return Ok(Query::select(select));
    }
    let branches = query
        .branches
        .iter()
        .map(|c| sql_of_comp(c, layout, schema))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Query::union_all(branches))
}

/// Emit NULL-typed placeholder items matching the layout (used only for the
/// degenerate empty union).
fn empty_branch_items(mut select: Select, layout: &ResultLayout) -> Select {
    for leaf in &layout.leaves {
        match leaf.kind {
            LeafKind::Base(_) => {
                select = select.item(Expr::Literal(sqlengine::SqlValue::Null), &leaf.name);
            }
            LeafKind::Index => {
                select = select.item(Expr::lit(0i64), &format!("{}_tag", leaf.name));
                select = select.item(Expr::lit(0i64), &format!("{}_ord", leaf.name));
            }
        }
    }
    select
}

fn push_index_items(select: Select, tag: i64, ordinal: Expr, _layout: &ResultLayout) -> Select {
    select
        .item(Expr::lit(tag), OUTER_TAG_COLUMN)
        .item(ordinal, OUTER_ORD_COLUMN)
}

/// The flattened column name of the `i`-th outer generator's column `col`
/// inside a let-bound subquery.
fn cte_column(i: usize, col: &str) -> String {
    format!("c{}_{}", i + 1, col)
}

fn table_columns(schema: &Schema, table: &str) -> Result<Vec<String>, ShredError> {
    Ok(schema
        .table(table)
        .ok_or_else(|| ShredError::Internal(format!("unknown table {}", table)))?
        .columns
        .iter()
        .map(|(c, _)| c.clone())
        .collect())
}

/// All columns of a list of generators, qualified by their variables.
fn generator_columns(schema: &Schema, gens: &[Generator]) -> Result<Vec<Expr>, ShredError> {
    let mut out = Vec::new();
    for g in gens {
        for col in table_columns(schema, &g.table)? {
            out.push(Expr::col(&g.var, &col));
        }
    }
    Ok(out)
}

fn sql_of_comp(
    comp: &LetComp,
    layout: &ResultLayout,
    schema: &Schema,
) -> Result<Query, ShredError> {
    // The ORDER BY keys for this block's ROW_NUMBER: all columns of the
    // let-bound subquery (if any) followed by all columns of the inner
    // generators' tables.
    let mut order_keys: Vec<Expr> = Vec::new();
    if let Some(binding) = &comp.binding {
        for (i, g) in binding.generators.iter().enumerate() {
            for col in table_columns(schema, &g.table)? {
                order_keys.push(Expr::col(OUTER_VAR, &cte_column(i, &col)));
            }
        }
        order_keys.push(Expr::col(OUTER_VAR, SURROGATE_COLUMN));
    }
    order_keys.extend(generator_columns(schema, &comp.generators)?);

    let row_number = if order_keys.is_empty() {
        Expr::lit(1i64)
    } else {
        Expr::row_number(order_keys)
    };

    // Body SELECT.
    let mut select = Select::new();
    let ordinal = if comp.binding.is_some() {
        Expr::col(OUTER_VAR, SURROGATE_COLUMN)
    } else {
        Expr::lit(1i64)
    };
    select = push_index_items(select, comp.outer_tag.as_int(), ordinal, layout);
    select = push_inner_items(select, &comp.inner, layout, &row_number, schema)?;

    if comp.binding.is_some() {
        select = select.from_named(CTE_NAME, OUTER_VAR);
    }
    for g in &comp.generators {
        select = select.from_named(&g.table, &g.var);
    }
    if !comp.condition.is_truth() {
        select = select.filter(sql_of_base(&comp.condition, comp.binding.as_ref(), schema)?);
    }

    // WITH clause.
    match &comp.binding {
        None => Ok(Query::select(select)),
        Some(binding) => {
            let cte = sql_of_binding(binding, schema)?;
            Ok(Query::with(CTE_NAME, cte, Query::select(select)))
        }
    }
}

/// The `WITH q AS (SELECT … ROW_NUMBER() …)` subquery of a comprehension.
fn sql_of_binding(binding: &LetBinding, schema: &Schema) -> Result<Select, ShredError> {
    let mut select = Select::new();
    let mut order_keys = Vec::new();
    for (i, g) in binding.generators.iter().enumerate() {
        for col in table_columns(schema, &g.table)? {
            select = select.item(Expr::col(&g.var, &col), &cte_column(i, &col));
            order_keys.push(Expr::col(&g.var, &col));
        }
    }
    select = select.item(Expr::row_number(order_keys), SURROGATE_COLUMN);
    for g in &binding.generators {
        select = select.from_named(&g.table, &g.var);
    }
    if !binding.condition.is_truth() {
        select = select.filter(sql_of_base(&binding.condition, None, schema)?);
    }
    Ok(select)
}

/// Emit the SELECT items for the inner term, following the layout's leaves in
/// order so that every union branch produces the same column list.
fn push_inner_items(
    mut select: Select,
    inner: &LetInner,
    layout: &ResultLayout,
    row_number: &Expr,
    schema: &Schema,
) -> Result<Select, ShredError> {
    for leaf in &layout.leaves {
        let value = navigate_inner(inner, &leaf.path)?;
        match (&leaf.kind, value) {
            (LeafKind::Base(_), LetInner::Base(b)) => {
                select = select.item(sql_of_base(b, None, schema)?, &leaf.name);
            }
            (LeafKind::Index, LetInner::IndexPair { tag, source }) => {
                let ordinal = match source {
                    IndexSource::CurrentRow => row_number.clone(),
                    IndexSource::OuterBinding => Expr::col(OUTER_VAR, SURROGATE_COLUMN),
                    IndexSource::One => Expr::lit(1i64),
                };
                select = select.item(Expr::lit(tag.as_int()), &format!("{}_tag", leaf.name));
                select = select.item(ordinal, &format!("{}_ord", leaf.name));
            }
            (kind, other) => {
                return Err(ShredError::Internal(format!(
                    "inner term {:?} does not match layout leaf {:?}",
                    other, kind
                )))
            }
        }
    }
    Ok(select)
}

fn navigate_inner<'a>(inner: &'a LetInner, path: &[String]) -> Result<&'a LetInner, ShredError> {
    let mut current = inner;
    for label in path {
        match current {
            LetInner::Record(fields) => {
                current = fields
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, v)| v)
                    .ok_or_else(|| {
                        ShredError::Internal(format!("inner term is missing field {}", label))
                    })?;
            }
            other => {
                return Err(ShredError::Internal(format!(
                    "cannot navigate field {} of non-record inner term {:?}",
                    label, other
                )))
            }
        }
    }
    Ok(current)
}

/// Translate a base term into a SQL expression. `binding` is needed to map
/// projections from the let-bound tuple `z.#1.#i.ℓ` onto the CTE's flattened
/// column names.
#[allow(clippy::only_used_in_recursion)]
fn sql_of_base(
    base: &LetBase,
    binding: Option<&LetBinding>,
    schema: &Schema,
) -> Result<Expr, ShredError> {
    match base {
        LetBase::Proj { var, path } => {
            if var == OUTER_VAR && path.len() == 3 {
                let i: usize = path[1]
                    .trim_start_matches('#')
                    .parse()
                    .map_err(|_| ShredError::Internal(format!("bad tuple label {}", path[1])))?;
                Ok(Expr::col(OUTER_VAR, &cte_column(i - 1, &path[2])))
            } else if path.len() == 1 {
                Ok(Expr::col(var, &path[0]))
            } else {
                Err(ShredError::Internal(format!(
                    "unexpected projection path {:?} in SQL generation",
                    path
                )))
            }
        }
        LetBase::Const(c) => Ok(Expr::Literal(match c {
            Constant::Int(i) => value_to_sql(&Value::Int(*i))?,
            Constant::Bool(b) => value_to_sql(&Value::Bool(*b))?,
            Constant::String(s) => value_to_sql(&Value::string(s.as_str()))?,
            Constant::Unit => value_to_sql(&Value::Unit)?,
        })),
        // Bind variables become named placeholders; the engine fills them in
        // at execution time, so one generated query serves every binding.
        LetBase::Param(name, _) => Ok(Expr::param(name)),
        LetBase::Prim(PrimOp::Not, args) => Ok(Expr::not(sql_of_base(&args[0], binding, schema)?)),
        LetBase::Prim(op, args) => {
            if args.len() != 2 {
                return Err(ShredError::Internal(format!(
                    "primitive {} with {} arguments in SQL generation",
                    op,
                    args.len()
                )));
            }
            let left = sql_of_base(&args[0], binding, schema)?;
            let right = sql_of_base(&args[1], binding, schema)?;
            Ok(Expr::binop(sql_binop(*op)?, left, right))
        }
        LetBase::IsEmpty(q) => {
            // empty L  ⇝  NOT EXISTS (SELECT 1 FROM … WHERE …), one branch per
            // comprehension of L (all binding-free).
            let mut subqueries = Vec::with_capacity(q.branches.len());
            for branch in &q.branches {
                if branch.binding.is_some() {
                    return Err(ShredError::Internal(
                        "emptiness subquery with a let binding".to_string(),
                    ));
                }
                let mut sub = Select::new().item(Expr::lit(1i64), "one");
                for g in &branch.generators {
                    sub = sub.from_named(&g.table, &g.var);
                }
                if !branch.condition.is_truth() {
                    sub = sub.filter(sql_of_base(&branch.condition, binding, schema)?);
                }
                subqueries.push(Query::select(sub));
            }
            if subqueries.is_empty() {
                // empty ∅ is always true.
                return Ok(Expr::lit(true));
            }
            Ok(Expr::not(Expr::Exists(Box::new(Query::union_all(
                subqueries,
            )))))
        }
    }
}

fn sql_binop(op: PrimOp) -> Result<BinOp, ShredError> {
    Ok(match op {
        PrimOp::Eq => BinOp::Eq,
        PrimOp::Neq => BinOp::Neq,
        PrimOp::Lt => BinOp::Lt,
        PrimOp::Gt => BinOp::Gt,
        PrimOp::Le => BinOp::Le,
        PrimOp::Ge => BinOp::Ge,
        PrimOp::And => BinOp::And,
        PrimOp::Or => BinOp::Or,
        PrimOp::Add => BinOp::Add,
        PrimOp::Sub => BinOp::Sub,
        PrimOp::Mul => BinOp::Mul,
        PrimOp::Div => BinOp::Div,
        PrimOp::Mod => BinOp::Mod,
        PrimOp::Concat => BinOp::Concat,
        PrimOp::Not => {
            return Err(ShredError::Internal(
                "negation is not a binary operator".to_string(),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::letins::let_insert;
    use crate::normalise::normalise_with_type;
    use crate::shred::{shred_query, shred_type};
    use nrc::builder::*;
    use nrc::schema::TableSchema;
    use nrc::types::{BaseType, Path};
    use sqlengine::print_query;

    fn schema() -> Schema {
        Schema::new()
            .with_table(
                TableSchema::new(
                    "departments",
                    vec![("id", BaseType::Int), ("name", BaseType::String)],
                )
                .with_key(vec!["id"]),
            )
            .with_table(
                TableSchema::new(
                    "employees",
                    vec![
                        ("id", BaseType::Int),
                        ("dept", BaseType::String),
                        ("name", BaseType::String),
                        ("salary", BaseType::Int),
                    ],
                )
                .with_key(vec!["id"]),
            )
    }

    fn nested_query() -> nrc::Term {
        for_in(
            "d",
            table("departments"),
            singleton(record(vec![
                ("dept", project(var("d"), "name")),
                (
                    "emps",
                    for_where(
                        "e",
                        table("employees"),
                        eq(project(var("e"), "dept"), project(var("d"), "name")),
                        singleton(project(var("e"), "name")),
                    ),
                ),
            ])),
        )
    }

    #[test]
    fn top_level_sql_has_row_number_and_no_with() {
        let schema = schema();
        let (norm, ty) = normalise_with_type(&nested_query(), &schema).unwrap();
        let shredded = shred_query(&norm, &Path::empty()).unwrap();
        let lq = let_insert(&shredded).unwrap();
        let layout = ResultLayout::new(&shred_type(&ty, &Path::empty()).unwrap().inner);
        let sql = sql_of_let_query(&lq, &layout, &schema).unwrap();
        let text = print_query(&sql);
        assert!(text.contains("ROW_NUMBER() OVER (ORDER BY"));
        assert!(!text.contains("WITH"));
        assert!(text.contains("FROM departments AS d"));
    }

    #[test]
    fn inner_sql_uses_a_with_clause_joining_back_to_the_outer_query() {
        let schema = schema();
        let (norm, ty) = normalise_with_type(&nested_query(), &schema).unwrap();
        let inner_path = ty.paths()[1].clone();
        let shredded = shred_query(&norm, &inner_path).unwrap();
        let lq = let_insert(&shredded).unwrap();
        let layout = ResultLayout::new(&shred_type(&ty, &inner_path).unwrap().inner);
        let sql = sql_of_let_query(&lq, &layout, &schema).unwrap();
        let text = print_query(&sql);
        assert!(text.contains("WITH q AS ("));
        assert!(text.contains("FROM q AS z, employees AS e"));
        assert!(text.contains("z.c1_name"));
        assert!(text.contains("ROW_NUMBER() OVER (ORDER BY"));
    }

    #[test]
    fn emptiness_tests_become_not_exists() {
        let schema = schema();
        // Departments with no employees.
        let q = for_where(
            "d",
            table("departments"),
            is_empty(for_where(
                "e",
                table("employees"),
                eq(project(var("e"), "dept"), project(var("d"), "name")),
                singleton(var("e")),
            )),
            singleton(project(var("d"), "name")),
        );
        let (norm, ty) = normalise_with_type(&q, &schema).unwrap();
        let shredded = shred_query(&norm, &Path::empty()).unwrap();
        let lq = let_insert(&shredded).unwrap();
        let layout = ResultLayout::new(&shred_type(&ty, &Path::empty()).unwrap().inner);
        let sql = sql_of_let_query(&lq, &layout, &schema).unwrap();
        let text = print_query(&sql);
        assert!(text.contains("NOT (EXISTS (SELECT 1 AS one"));
    }

    #[test]
    fn union_branches_share_the_same_column_list() {
        let schema = schema();
        let q = union(
            for_where(
                "e",
                table("employees"),
                lt(project(var("e"), "salary"), int(1000)),
                singleton(project(var("e"), "name")),
            ),
            for_where(
                "e",
                table("employees"),
                gt(project(var("e"), "salary"), int(100000)),
                singleton(project(var("e"), "name")),
            ),
        );
        let (norm, ty) = normalise_with_type(&q, &schema).unwrap();
        let shredded = shred_query(&norm, &Path::empty()).unwrap();
        let lq = let_insert(&shredded).unwrap();
        let layout = ResultLayout::new(&shred_type(&ty, &Path::empty()).unwrap().inner);
        let sql = sql_of_let_query(&lq, &layout, &schema).unwrap();
        match sql {
            Query::UnionAll(branches) => {
                assert_eq!(branches.len(), 2);
                assert_eq!(branches[0].output_columns(), branches[1].output_columns());
            }
            other => panic!("expected a union, got {:?}", other),
        }
    }
}
