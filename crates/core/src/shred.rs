//! The shredding translation (Section 4 of the paper).
//!
//! Shredding turns a single normalised nested query into one flat query per
//! bag constructor of its result type. The queries are linked by *indexes*:
//! each shredded comprehension returns a pair ⟨outer index, flat inner term⟩,
//! where the outer index says where the row should be spliced into the parent
//! and any `Index` fields of the inner term name the rows of child queries.

use crate::error::ShredError;
use crate::nf::{Comprehension, Generator, NfBase, NfTerm, NormQuery, StaticIndex, TOP};
use nrc::term::{Constant, PrimOp};
use nrc::types::{BaseType, Path, PathStep, Type};
use std::fmt;

// ---------------------------------------------------------------------------
// Shredded types
// ---------------------------------------------------------------------------

/// Flat shredded types `F ::= O | ⟨ℓ⃗ : F⃗⟩ | Index`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatType {
    Base(BaseType),
    Record(Vec<(String, FlatType)>),
    Index,
}

impl FlatType {
    /// Number of `Index` occurrences in the type.
    pub fn index_count(&self) -> usize {
        match self {
            FlatType::Base(_) => 0,
            FlatType::Index => 1,
            FlatType::Record(fields) => fields.iter().map(|(_, t)| t.index_count()).sum(),
        }
    }
}

impl fmt::Display for FlatType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatType::Base(b) => write!(f, "{}", b),
            FlatType::Index => write!(f, "Index"),
            FlatType::Record(fields) => {
                write!(f, "<")?;
                for (i, (l, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {}", l, t)?;
                }
                write!(f, ">")
            }
        }
    }
}

/// A shredded type `Bag ⟨Index, F⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShreddedType {
    pub inner: FlatType,
}

impl fmt::Display for ShreddedType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bag <Index, {}>", self.inner)
    }
}

/// The *inner shredding* `⟦A⟧` of a type: nested bags are replaced by `Index`.
pub fn inner_shred_type(ty: &Type) -> Result<FlatType, ShredError> {
    match ty {
        Type::Base(b) => Ok(FlatType::Base(*b)),
        Type::Record(fields) => Ok(FlatType::Record(
            fields
                .iter()
                .map(|(l, t)| Ok((l.clone(), inner_shred_type(t)?)))
                .collect::<Result<_, ShredError>>()?,
        )),
        Type::Bag(_) => Ok(FlatType::Index),
        Type::Fun(_, _) => Err(ShredError::NotFlatNested(ty.to_string())),
    }
}

/// The *outer shredding* `⟦A⟧_p` of a type at a path: the shredded type of the
/// bag located at `p` inside `A`.
pub fn shred_type(ty: &Type, path: &Path) -> Result<ShreddedType, ShredError> {
    match path.split_first() {
        None => match ty {
            Type::Bag(inner) => Ok(ShreddedType {
                inner: inner_shred_type(inner)?,
            }),
            other => Err(ShredError::BadPath(format!(
                "path ends at non-bag type {}",
                other
            ))),
        },
        Some((PathStep::Down, rest)) => match ty {
            Type::Bag(inner) => shred_type(inner, &rest),
            other => Err(ShredError::BadPath(format!(
                "↓ step at non-bag type {}",
                other
            ))),
        },
        Some((PathStep::Label(l), rest)) => match ty {
            Type::Record(fields) => {
                let field = fields
                    .iter()
                    .find(|(fl, _)| fl == l)
                    .map(|(_, t)| t)
                    .ok_or_else(|| ShredError::BadPath(format!("no field {} in {}", l, ty)))?;
                shred_type(field, &rest)
            }
            other => Err(ShredError::BadPath(format!(
                "label step {} at non-record type {}",
                l, other
            ))),
        },
    }
}

// ---------------------------------------------------------------------------
// Shredded packages
// ---------------------------------------------------------------------------

/// A shredded package: the result type with an annotation attached to every
/// bag constructor (Section 4.2).
#[derive(Debug, Clone, PartialEq)]
pub enum Package<T> {
    Base(BaseType),
    Record(Vec<(String, Package<T>)>),
    Bag(T, Box<Package<T>>),
}

impl<T> Package<T> {
    /// Erase the annotations, recovering the underlying type.
    pub fn erase(&self) -> Type {
        match self {
            Package::Base(b) => Type::Base(*b),
            Package::Record(fields) => {
                Type::Record(fields.iter().map(|(l, p)| (l.clone(), p.erase())).collect())
            }
            Package::Bag(_, inner) => Type::Bag(Box::new(inner.erase())),
        }
    }

    /// Map a function over the annotations (`pmap` in the paper).
    pub fn map<U>(&self, f: &mut impl FnMut(&T) -> U) -> Package<U> {
        match self {
            Package::Base(b) => Package::Base(*b),
            Package::Record(fields) => {
                Package::Record(fields.iter().map(|(l, p)| (l.clone(), p.map(f))).collect())
            }
            Package::Bag(t, inner) => Package::Bag(f(t), Box::new(inner.map(f))),
        }
    }

    /// Map a function over the annotations, consuming the package. Used
    /// where the annotations are bulky results that should move into their
    /// successor rather than be cloned (e.g. grouping decoded rows for
    /// stitching).
    pub fn into_map<U>(self, f: &mut impl FnMut(T) -> U) -> Package<U> {
        match self {
            Package::Base(b) => Package::Base(b),
            Package::Record(fields) => Package::Record(
                fields
                    .into_iter()
                    .map(|(l, p)| (l, p.into_map(f)))
                    .collect(),
            ),
            Package::Bag(t, inner) => Package::Bag(f(t), Box::new(inner.into_map(f))),
        }
    }

    /// Map a fallible function over the annotations.
    pub fn try_map<U, E>(&self, f: &mut impl FnMut(&T) -> Result<U, E>) -> Result<Package<U>, E> {
        Ok(match self {
            Package::Base(b) => Package::Base(*b),
            Package::Record(fields) => Package::Record(
                fields
                    .iter()
                    .map(|(l, p)| Ok((l.clone(), p.try_map(f)?)))
                    .collect::<Result<_, E>>()?,
            ),
            Package::Bag(t, inner) => Package::Bag(f(t)?, Box::new(inner.try_map(f)?)),
        })
    }

    /// All annotations in depth-first order (the same order as
    /// [`Type::paths`]).
    pub fn annotations(&self) -> Vec<&T> {
        fn go<'a, T>(p: &'a Package<T>, acc: &mut Vec<&'a T>) {
            match p {
                Package::Base(_) => {}
                Package::Record(fields) => fields.iter().for_each(|(_, p)| go(p, acc)),
                Package::Bag(t, inner) => {
                    acc.push(t);
                    go(inner, acc);
                }
            }
        }
        let mut acc = Vec::new();
        go(self, &mut acc);
        acc
    }

    /// Number of bag constructors (= nesting degree = number of annotations).
    pub fn nesting_degree(&self) -> usize {
        self.annotations().len()
    }
}

/// Build a package over a type by annotating each bag constructor with the
/// value of `f` at its path (the `package_f(A)` function of the paper).
pub fn package_by<T, E>(
    ty: &Type,
    f: &mut impl FnMut(&Path) -> Result<T, E>,
) -> Result<Package<T>, E> {
    fn go<T, E>(
        ty: &Type,
        path: &Path,
        f: &mut impl FnMut(&Path) -> Result<T, E>,
    ) -> Result<Package<T>, E> {
        match ty {
            Type::Base(b) => Ok(Package::Base(*b)),
            Type::Record(fields) => Ok(Package::Record(
                fields
                    .iter()
                    .map(|(l, t)| Ok((l.clone(), go(t, &path.extend_label(l), f)?)))
                    .collect::<Result<_, E>>()?,
            )),
            Type::Bag(inner) => {
                let annotation = f(path)?;
                Ok(Package::Bag(
                    annotation,
                    Box::new(go(inner, &path.extend_down(), f)?),
                ))
            }
            Type::Fun(_, _) => {
                // Flat–nested result types never contain functions; treat the
                // function type as opaque by reporting it as a base type would
                // be wrong, so panic via the error path of the caller.
                unreachable!("package_by called on a type containing functions")
            }
        }
    }
    go(ty, &Path::empty(), f)
}

/// The shredded-type package `shred_A(A)`.
pub fn shred_type_package(ty: &Type) -> Result<Package<ShreddedType>, ShredError> {
    if !ty.is_nested() {
        return Err(ShredError::NotFlatNested(ty.to_string()));
    }
    package_by(ty, &mut |p| shred_type(ty, p))
}

/// The shredded-query package `shred_L(A)`.
pub fn shred_query_package(
    query: &NormQuery,
    ty: &Type,
) -> Result<Package<ShreddedQuery>, ShredError> {
    if !ty.is_nested() {
        return Err(ShredError::NotFlatNested(ty.to_string()));
    }
    package_by(ty, &mut |p| shred_query(query, p))
}

// ---------------------------------------------------------------------------
// Shredded queries
// ---------------------------------------------------------------------------

/// A shredded query `⊎ C⃗`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShreddedQuery {
    pub branches: Vec<ShredComp>,
}

/// One shredded comprehension: a stack of `for (G⃗ where X)` clauses (one per
/// nesting level of the original query, outermost first), ending in
/// `returnᵇ ⟨a⋅out, N⟩`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShredComp {
    pub levels: Vec<CompLevel>,
    /// The static index `b` of the innermost `return`.
    pub tag: StaticIndex,
    /// The static index `a` of the outer index `a⋅out` this row is keyed by.
    pub outer_tag: StaticIndex,
    /// The flat inner term `N`.
    pub inner: ShredInner,
}

/// One `for (G⃗ where X)` clause of a shredded comprehension.
#[derive(Debug, Clone, PartialEq)]
pub struct CompLevel {
    pub generators: Vec<Generator>,
    pub condition: ShBase,
}

/// A flat inner term: base expression, record, or an index `b⋅in` standing
/// for a nested bag.
#[derive(Debug, Clone, PartialEq)]
pub enum ShredInner {
    Base(ShBase),
    Record(Vec<(String, ShredInner)>),
    /// `tag ⋅ in`: the inner index that child-query rows will be keyed by.
    InnerIndex(StaticIndex),
}

/// Base terms of shredded queries; emptiness tests contain shredded queries.
#[derive(Debug, Clone, PartialEq)]
pub enum ShBase {
    Proj {
        var: String,
        field: String,
    },
    Const(Constant),
    /// A typed bind variable `?name : O`, carried through shredding as an
    /// opaque atom.
    Param(String, BaseType),
    Prim(PrimOp, Vec<ShBase>),
    IsEmpty(Box<ShreddedQuery>),
}

impl ShBase {
    /// The constant `true`.
    pub fn truth() -> ShBase {
        ShBase::Const(Constant::Bool(true))
    }

    /// Is this the constant `true`?
    pub fn is_truth(&self) -> bool {
        matches!(self, ShBase::Const(Constant::Bool(true)))
    }

    /// Replace parameters with the bound constants.
    pub fn bind_params(&self, bindings: &std::collections::HashMap<String, Constant>) -> ShBase {
        match self {
            ShBase::Param(name, _) => match bindings.get(name) {
                Some(c) => ShBase::Const(c.clone()),
                None => self.clone(),
            },
            ShBase::Proj { .. } | ShBase::Const(_) => self.clone(),
            ShBase::Prim(op, args) => {
                ShBase::Prim(*op, args.iter().map(|a| a.bind_params(bindings)).collect())
            }
            ShBase::IsEmpty(q) => ShBase::IsEmpty(Box::new(q.bind_params(bindings))),
        }
    }
}

impl ShreddedQuery {
    /// The distinct generator variables used across all branches and levels.
    pub fn generator_count(&self) -> usize {
        self.branches
            .iter()
            .map(|b| b.levels.iter().map(|l| l.generators.len()).sum::<usize>())
            .sum()
    }

    /// Replace parameters with the bound constants throughout the shredded
    /// query (conditions and inner terms, at every level).
    pub fn bind_params(
        &self,
        bindings: &std::collections::HashMap<String, Constant>,
    ) -> ShreddedQuery {
        fn bind_inner(
            inner: &ShredInner,
            bindings: &std::collections::HashMap<String, Constant>,
        ) -> ShredInner {
            match inner {
                ShredInner::Base(b) => ShredInner::Base(b.bind_params(bindings)),
                ShredInner::Record(fields) => ShredInner::Record(
                    fields
                        .iter()
                        .map(|(l, v)| (l.clone(), bind_inner(v, bindings)))
                        .collect(),
                ),
                ShredInner::InnerIndex(tag) => ShredInner::InnerIndex(*tag),
            }
        }
        ShreddedQuery {
            branches: self
                .branches
                .iter()
                .map(|b| ShredComp {
                    levels: b
                        .levels
                        .iter()
                        .map(|l| CompLevel {
                            generators: l.generators.clone(),
                            condition: l.condition.bind_params(bindings),
                        })
                        .collect(),
                    tag: b.tag,
                    outer_tag: b.outer_tag,
                    inner: bind_inner(&b.inner, bindings),
                })
                .collect(),
        }
    }
}

impl fmt::Display for ShreddedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.branches.is_empty() {
            return write!(f, "∅");
        }
        for (i, c) in self.branches.iter().enumerate() {
            if i > 0 {
                write!(f, "\n⊎ ")?;
            }
            write!(f, "{}", c)?;
        }
        Ok(())
    }
}

impl fmt::Display for ShredComp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for level in &self.levels {
            write!(f, "for (")?;
            for (i, g) in level.generators.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", g)?;
            }
            if !level.condition.is_truth() {
                write!(f, " where {}", DisplayShBase(&level.condition))?;
            }
            write!(f, ") ")?;
        }
        write!(
            f,
            "return^{} <{}·out, {}>",
            self.tag,
            self.outer_tag,
            DisplayInner(&self.inner)
        )
    }
}

struct DisplayShBase<'a>(&'a ShBase);

impl fmt::Display for DisplayShBase<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            ShBase::Proj { var, field } => write!(f, "{}.{}", var, field),
            ShBase::Const(c) => write!(f, "{}", c),
            ShBase::Param(name, ty) => write!(f, "?{}:{}", name, ty),
            ShBase::Prim(op, args) if args.len() == 2 => write!(
                f,
                "({} {} {})",
                DisplayShBase(&args[0]),
                op,
                DisplayShBase(&args[1])
            ),
            ShBase::Prim(op, args) => {
                write!(f, "{}(", op)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", DisplayShBase(a))?;
                }
                write!(f, ")")
            }
            ShBase::IsEmpty(q) => write!(f, "empty({})", q),
        }
    }
}

struct DisplayInner<'a>(&'a ShredInner);

impl fmt::Display for DisplayInner<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            ShredInner::Base(b) => write!(f, "{}", DisplayShBase(b)),
            ShredInner::Record(fields) => {
                write!(f, "<")?;
                for (i, (l, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} = {}", l, DisplayInner(v))?;
                }
                write!(f, ">")
            }
            ShredInner::InnerIndex(tag) => write!(f, "{}·in", tag),
        }
    }
}

// ---------------------------------------------------------------------------
// The shredding translation on terms
// ---------------------------------------------------------------------------

/// `⟦L⟧_p`: shred a normalised query at a path of its result type (Figure 4).
pub fn shred_query(query: &NormQuery, path: &Path) -> Result<ShreddedQuery, ShredError> {
    let branches = shred_branches(query, TOP, path)?;
    Ok(ShreddedQuery { branches })
}

/// `⟦⊎C⃗⟧*_{a,p}`.
fn shred_branches(
    query: &NormQuery,
    outer_tag: StaticIndex,
    path: &Path,
) -> Result<Vec<ShredComp>, ShredError> {
    let mut out = Vec::new();
    for branch in &query.branches {
        out.extend(shred_comprehension(branch, outer_tag, path)?);
    }
    Ok(out)
}

/// `⟦for (G⃗ where X) returnᵇ M⟧*_{a,p}`.
fn shred_comprehension(
    comp: &Comprehension,
    outer_tag: StaticIndex,
    path: &Path,
) -> Result<Vec<ShredComp>, ShredError> {
    let level = CompLevel {
        generators: comp.generators.clone(),
        condition: shred_base(&comp.condition)?,
    };
    match path.split_first() {
        // Path ε: this comprehension is the one being extracted.
        None => Ok(vec![ShredComp {
            levels: vec![level],
            tag: comp.tag,
            outer_tag,
            inner: shred_inner(&comp.body, comp.tag)?,
        }]),
        // Path ↓.p: descend into the body along p, prepending this level.
        Some((PathStep::Down, rest)) => {
            let inner_comps = shred_term_at(&comp.body, comp.tag, &rest)?;
            Ok(inner_comps
                .into_iter()
                .map(|mut c| {
                    c.levels.insert(0, level.clone());
                    c
                })
                .collect())
        }
        Some((PathStep::Label(l), _)) => Err(ShredError::BadPath(format!(
            "label step {} applied to a bag",
            l
        ))),
    }
}

/// `⟦M⟧*_{a,p}` for normalised terms: navigate record labels until the nested
/// query addressed by the path is reached.
fn shred_term_at(
    term: &NfTerm,
    outer_tag: StaticIndex,
    path: &Path,
) -> Result<Vec<ShredComp>, ShredError> {
    match path.split_first() {
        Some((PathStep::Label(l), rest)) => match term {
            NfTerm::Record(fields) => {
                let field = fields
                    .iter()
                    .find(|(fl, _)| fl == l)
                    .map(|(_, t)| t)
                    .ok_or_else(|| ShredError::BadPath(format!("no field {} in record body", l)))?;
                shred_term_at(field, outer_tag, &rest)
            }
            _ => Err(ShredError::BadPath(format!(
                "label step {} applied to a non-record body",
                l
            ))),
        },
        // ε or ↓.p: the term must be a nested query.
        _ => match term {
            NfTerm::Query(q) => shred_branches(q, outer_tag, path),
            _ => Err(ShredError::BadPath(
                "path addresses a non-query body".to_string(),
            )),
        },
    }
}

/// `⟦M⟧_b`: the flat inner shredding of a comprehension body, with inner
/// static index `b`.
fn shred_inner(term: &NfTerm, tag: StaticIndex) -> Result<ShredInner, ShredError> {
    match term {
        NfTerm::Base(b) => Ok(ShredInner::Base(shred_base(b)?)),
        NfTerm::Record(fields) => Ok(ShredInner::Record(
            fields
                .iter()
                .map(|(l, t)| Ok((l.clone(), shred_inner(t, tag)?)))
                .collect::<Result<_, ShredError>>()?,
        )),
        NfTerm::Query(_) => Ok(ShredInner::InnerIndex(tag)),
    }
}

/// Shred a base expression: emptiness tests keep only the top-level query of
/// their operand (shredded at path ε).
fn shred_base(base: &NfBase) -> Result<ShBase, ShredError> {
    Ok(match base {
        NfBase::Proj { var, field } => ShBase::Proj {
            var: var.clone(),
            field: field.clone(),
        },
        NfBase::Const(c) => ShBase::Const(c.clone()),
        NfBase::Param(name, ty) => ShBase::Param(name.clone(), *ty),
        NfBase::Prim(op, args) => {
            ShBase::Prim(*op, args.iter().map(shred_base).collect::<Result<_, _>>()?)
        }
        NfBase::IsEmpty(q) => ShBase::IsEmpty(Box::new(shred_query(q, &Path::empty())?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_type() -> Type {
        Type::bag(Type::record(vec![
            ("department", Type::string()),
            (
                "people",
                Type::bag(Type::record(vec![
                    ("name", Type::string()),
                    ("tasks", Type::bag(Type::string())),
                ])),
            ),
        ]))
    }

    #[test]
    fn shredded_types_of_the_running_example() {
        let ty = result_type();
        let paths = ty.paths();
        let a1 = shred_type(&ty, &paths[0]).unwrap();
        let a2 = shred_type(&ty, &paths[1]).unwrap();
        let a3 = shred_type(&ty, &paths[2]).unwrap();
        // A1 = Bag ⟨Index, ⟨department: String, people: Index⟩⟩
        assert_eq!(
            a1.inner,
            FlatType::Record(vec![
                ("department".to_string(), FlatType::Base(BaseType::String)),
                ("people".to_string(), FlatType::Index),
            ])
        );
        // A2 = Bag ⟨Index, ⟨name: String, tasks: Index⟩⟩
        assert_eq!(
            a2.inner,
            FlatType::Record(vec![
                ("name".to_string(), FlatType::Base(BaseType::String)),
                ("tasks".to_string(), FlatType::Index),
            ])
        );
        // A3 = Bag ⟨Index, String⟩
        assert_eq!(a3.inner, FlatType::Base(BaseType::String));
    }

    #[test]
    fn erase_is_left_inverse_of_type_shredding() {
        let ty = result_type();
        let pkg = shred_type_package(&ty).unwrap();
        assert_eq!(pkg.erase(), ty);
        assert_eq!(pkg.nesting_degree(), 3);
    }

    #[test]
    fn package_annotation_order_matches_type_paths() {
        let ty = result_type();
        let pkg = package_by::<Path, ShredError>(&ty, &mut |p| Ok(p.clone())).unwrap();
        let annots: Vec<Path> = pkg.annotations().into_iter().cloned().collect();
        assert_eq!(annots, ty.paths());
    }

    #[test]
    fn bad_paths_are_rejected() {
        let ty = result_type();
        let bad = Path::empty().extend_label("nope");
        assert!(matches!(shred_type(&ty, &bad), Err(ShredError::BadPath(_))));
    }

    #[test]
    fn flat_type_index_count() {
        let ty = result_type();
        let a1 = shred_type(&ty, &Path::empty()).unwrap();
        assert_eq!(a1.inner.index_count(), 1);
    }
}
