//! Record flattening (Appendix E of the paper).
//!
//! SQL result rows are flat, but shredded queries return nested records (an
//! index pair plus an inner record that may itself contain index pairs).
//! This module defines the *column layout* of a shredded query's SQL
//! rendering: the flattened column names, how each leaf of the shredded type
//! maps onto columns, and how to decode (unflatten) result rows back into
//! indexed flat values for stitching.

use crate::error::ShredError;
use crate::nf::StaticIndex;
use crate::semantics::{FlatValue, IndexValue, ShredResult};
use crate::shred::FlatType;
use analysis::codes;
use nrc::types::BaseType;
use nrc::value::Value;
use sqlengine::{ColumnarResult, ResultSet, SqlValue};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// Name of the column holding the static component of the outer index.
pub const OUTER_TAG_COLUMN: &str = "oidx_tag";
/// Name of the column holding the dynamic component of the outer index.
pub const OUTER_ORD_COLUMN: &str = "oidx_ord";

/// One leaf of the flattened shredded type.
#[derive(Debug, Clone, PartialEq)]
pub enum LeafKind {
    /// A base-typed column.
    Base(BaseType),
    /// An inner index, occupying two columns (`…_tag`, `…_ord`).
    Index,
}

/// A leaf of the flattened layout: the record path to it and its kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaf {
    /// Record labels from the root of the inner term to this leaf.
    pub path: Vec<String>,
    pub kind: LeafKind,
    /// Flattened column name (for `Index` leaves this is the prefix; the
    /// actual columns are `{name}_tag` and `{name}_ord`).
    pub name: String,
    /// Position of this leaf's first SQL column in the stage's full column
    /// list (positions 0 and 1 hold the outer index pair; an `Index` leaf
    /// occupies `col` and `col + 1`). Resolved once in
    /// [`ResultLayout::new`], so decoding never searches by name.
    pub col: usize,
}

/// The column layout of one shredded query's SQL rendering.
///
/// Built once per prepared query (at compile time): the leaf→column
/// positions and the full expected column list are resolved here, so
/// per-execution decoding — row-major or columnar — does no name lookups
/// and allocates no column-name vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultLayout {
    /// The shredded inner type this layout flattens.
    pub shape: FlatType,
    /// The flattened leaves, in column order.
    pub leaves: Vec<Leaf>,
    /// All SQL column names, in order — computed once at construction.
    columns: Vec<String>,
}

impl ResultLayout {
    /// Build the layout for a shredded inner type, resolving each leaf's
    /// column position and the full expected column list once.
    pub fn new(shape: &FlatType) -> ResultLayout {
        let mut leaves = Vec::new();
        collect_leaves(shape, &mut Vec::new(), &mut leaves);
        // Disambiguate duplicate flattened names (possible when labels contain
        // underscores) by appending a position suffix.
        let mut seen = std::collections::HashSet::new();
        for (i, leaf) in leaves.iter_mut().enumerate() {
            if !seen.insert(leaf.name.clone()) {
                leaf.name = format!("{}_{}", leaf.name, i);
                seen.insert(leaf.name.clone());
            }
        }
        let mut columns = vec![OUTER_TAG_COLUMN.to_string(), OUTER_ORD_COLUMN.to_string()];
        for leaf in leaves.iter_mut() {
            leaf.col = columns.len();
            match leaf.kind {
                LeafKind::Base(_) => columns.push(leaf.name.clone()),
                LeafKind::Index => {
                    columns.push(format!("{}_tag", leaf.name));
                    columns.push(format!("{}_ord", leaf.name));
                }
            }
        }
        ResultLayout {
            shape: shape.clone(),
            leaves,
            columns,
        }
    }

    /// All SQL column names, in order: the outer index pair followed by the
    /// flattened inner columns. Computed once in [`ResultLayout::new`].
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Decode (unflatten) a row-major engine result set into an indexed
    /// shredded result, ready for [`crate::stitch::stitch_rows`]. This is
    /// the row path, kept as the differential oracle for the columnar
    /// decode; per-row it allocates a [`FlatValue`] tree.
    pub fn decode(&self, rs: &ResultSet) -> Result<ShredResult, ShredError> {
        if rs.columns != self.columns {
            return Err(decode_err(
                codes::DECODE_COLUMN_COUNT,
                format!(
                    "result columns {:?} do not match layout {:?}",
                    rs.columns, self.columns
                ),
            ));
        }
        let mut out = Vec::with_capacity(rs.rows.len());
        for row in &rs.rows {
            let mut cursor = 0usize;
            let outer = decode_index(row, &mut cursor)?;
            let value = decode_value(&self.shape, row, &mut cursor)?;
            if cursor != row.len() {
                return Err(decode_err(
                    codes::DECODE_COLUMN_COUNT,
                    format!("row has {} columns but {} were consumed", row.len(), cursor),
                ));
            }
            out.push((outer, value));
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Columnar decode
// ---------------------------------------------------------------------------

/// The decoded, index-grouped columnar result of one shredded query stage:
/// the stage's `Arc`-shared data columns taken by value from the engine,
/// plus a sorted row permutation grouped by the stage's outer index
/// `(oidx_tag, oidx_ord)` columns.
///
/// This is the columnar replacement for [`ShredResult`]: no per-row
/// [`FlatValue`] tree is built and no cell or label is cloned at decode
/// time — the only per-row work is reading the two integer index columns
/// and one sort over row indices. The stitcher
/// ([`crate::stitch::stitch`]) materialises nested values straight out of
/// the columns, using the layout's pre-resolved leaf positions.
#[derive(Debug, Clone)]
pub struct ColumnarStage {
    layout: Arc<ResultLayout>,
    /// Every stage column (index pair first), shared with the engine batch.
    columns: Vec<Arc<Vec<SqlValue>>>,
    /// Row indices sorted by outer index.
    perm: Vec<u32>,
    /// Outer index → sub-range of `perm` holding that group's rows.
    groups: HashMap<IndexValue, Range<u32>>,
}

impl ColumnarStage {
    /// Decode a columnar engine result against a stage layout: verify the
    /// column list, group the rows by their outer `(oidx_tag, oidx_ord)`
    /// pair and take ownership of the shared columns. O(n log n) in the row
    /// count, with no per-row allocation.
    pub fn decode(
        layout: Arc<ResultLayout>,
        result: ColumnarResult,
    ) -> Result<ColumnarStage, ShredError> {
        Self::decode_obs(layout, result, None)
    }

    /// [`decode`](Self::decode) with the elapsed time recorded as a
    /// `Stage::Decode` span when a collector is present.
    pub fn decode_obs(
        layout: Arc<ResultLayout>,
        result: ColumnarResult,
        obs: Option<&obs::QueryObs>,
    ) -> Result<ColumnarStage, ShredError> {
        obs::time_maybe(obs, obs::Stage::Decode, || {
            Self::decode_inner(layout, result)
        })
    }

    fn decode_inner(
        layout: Arc<ResultLayout>,
        result: ColumnarResult,
    ) -> Result<ColumnarStage, ShredError> {
        if result.columns != layout.columns {
            return Err(decode_err(
                codes::DECODE_COLUMN_COUNT,
                format!(
                    "result columns {:?} do not match layout {:?}",
                    result.columns, layout.columns
                ),
            ));
        }
        let rows = result.len();
        let columns = result.into_columns();
        let tags = int_column(&columns[0], OUTER_TAG_COLUMN)?;
        let ords = int_column(&columns[1], OUTER_ORD_COLUMN)?;
        // Stable sort: rows with equal outer indexes keep the engine's
        // output order, so the columnar path yields values *identical* to
        // the row path's (which groups in output order), not merely
        // multiset-equal — the differential suite asserts exactly that.
        let mut perm: Vec<u32> = (0..rows as u32).collect();
        perm.sort_by_key(|&r| (tags[r as usize], ords[r as usize]));
        let mut groups: HashMap<IndexValue, Range<u32>> = HashMap::new();
        let mut start = 0usize;
        while start < rows {
            let (tag, ord) = (tags[perm[start] as usize], ords[perm[start] as usize]);
            let mut end = start + 1;
            while end < rows && tags[perm[end] as usize] == tag && ords[perm[end] as usize] == ord {
                end += 1;
            }
            let tag = u32::try_from(tag).map_err(|_| {
                decode_err(
                    codes::DECODE_INDEX_RANGE,
                    format!("static index column out of range: {}", tag),
                )
            })?;
            groups.insert(
                IndexValue::Flat {
                    tag: StaticIndex(tag),
                    ordinal: ord,
                },
                start as u32..end as u32,
            );
            start = end;
        }
        Ok(ColumnarStage {
            layout,
            columns,
            perm,
            groups,
        })
    }

    /// The stage's layout.
    pub fn layout(&self) -> &ResultLayout {
        &self.layout
    }

    /// Number of decoded rows.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Is the stage empty?
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The physical row indices grouped under an outer index (empty when the
    /// index never occurs — stitching turns that into an empty bag).
    pub fn group(&self, index: &IndexValue) -> &[u32] {
        match self.groups.get(index) {
            Some(range) => &self.perm[range.start as usize..range.end as usize],
            None => &[],
        }
    }

    /// The cell at (column position, physical row).
    pub fn cell(&self, col: usize, row: usize) -> &SqlValue {
        &self.columns[col][row]
    }
}

/// Read an integer index column up front (columnar counterpart of
/// [`decode_index`]'s per-row `take_int`).
fn int_column(col: &[SqlValue], name: &str) -> Result<Vec<i64>, ShredError> {
    col.iter()
        .map(|v| {
            v.as_int().ok_or_else(|| {
                decode_err(
                    codes::DECODE_TYPE_MISMATCH,
                    format!("expected an integer {} column, got {}", name, v),
                )
            })
        })
        .collect()
}

/// Build a typed decode error carrying its diagnostic registry code.
fn decode_err(code: &'static str, message: String) -> ShredError {
    ShredError::Decode { code, message }
}

fn collect_leaves(shape: &FlatType, path: &mut Vec<String>, out: &mut Vec<Leaf>) {
    match shape {
        FlatType::Base(b) => out.push(Leaf {
            path: path.clone(),
            kind: LeafKind::Base(*b),
            name: flat_name(path, "item"),
            col: 0, // resolved by ResultLayout::new once names are final
        }),
        FlatType::Index => out.push(Leaf {
            path: path.clone(),
            kind: LeafKind::Index,
            name: flat_name(path, "idx"),
            col: 0, // resolved by ResultLayout::new once names are final
        }),
        FlatType::Record(fields) => {
            for (label, field) in fields {
                path.push(label.clone());
                collect_leaves(field, path, out);
                path.pop();
            }
        }
    }
}

/// Flatten a record path into an SQL-friendly identifier. Tuple labels `#1`
/// become `t1` and an empty path falls back to the supplied default.
fn flat_name(path: &[String], default: &str) -> String {
    if path.is_empty() {
        return default.to_string();
    }
    path.iter()
        .map(|l| l.replace('#', "t"))
        .collect::<Vec<_>>()
        .join("_")
}

fn decode_index(row: &[SqlValue], cursor: &mut usize) -> Result<IndexValue, ShredError> {
    let tag = take_int(row, cursor)?;
    let ordinal = take_int(row, cursor)?;
    Ok(IndexValue::Flat {
        tag: StaticIndex(u32::try_from(tag).map_err(|_| {
            decode_err(
                codes::DECODE_INDEX_RANGE,
                format!("static index column out of range: {}", tag),
            )
        })?),
        ordinal,
    })
}

fn decode_value(
    shape: &FlatType,
    row: &[SqlValue],
    cursor: &mut usize,
) -> Result<FlatValue, ShredError> {
    match shape {
        FlatType::Base(b) => {
            let v = take(row, cursor)?;
            Ok(FlatValue::Base(sql_to_value(v, *b)?))
        }
        FlatType::Index => Ok(FlatValue::Index(decode_index(row, cursor)?)),
        FlatType::Record(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (label, field) in fields {
                out.push((label.clone(), decode_value(field, row, cursor)?));
            }
            Ok(FlatValue::Record(out))
        }
    }
}

fn take<'a>(row: &'a [SqlValue], cursor: &mut usize) -> Result<&'a SqlValue, ShredError> {
    let v = row.get(*cursor).ok_or_else(|| {
        decode_err(
            codes::DECODE_ROW_SHORT,
            "row is shorter than the layout".to_string(),
        )
    })?;
    *cursor += 1;
    Ok(v)
}

fn take_int(row: &[SqlValue], cursor: &mut usize) -> Result<i64, ShredError> {
    let v = take(row, cursor)?;
    v.as_int().ok_or_else(|| {
        decode_err(
            codes::DECODE_TYPE_MISMATCH,
            format!("expected an integer index column, got {}", v),
        )
    })
}

/// Convert a SQL scalar back into a λNRC base value of the expected type.
/// Strings hand their `Arc<str>` payload over — a refcount bump, not a copy
/// per cell.
pub fn sql_to_value(v: &SqlValue, expected: BaseType) -> Result<Value, ShredError> {
    match (v, expected) {
        (SqlValue::Int(i), BaseType::Int) => Ok(Value::Int(*i)),
        (SqlValue::Bool(b), BaseType::Bool) => Ok(Value::Bool(*b)),
        (SqlValue::Str(s), BaseType::String) => Ok(Value::String(s.clone())),
        (_, BaseType::Unit) => Ok(Value::Unit),
        (other, expected) => Err(decode_err(
            codes::DECODE_TYPE_MISMATCH,
            format!(
                "column value {} does not have base type {}",
                other, expected
            ),
        )),
    }
}

/// Convert a λNRC base value into a SQL scalar. Strings share their
/// `Arc<str>` payload with the value.
pub fn value_to_sql(v: &Value) -> Result<SqlValue, ShredError> {
    match v {
        Value::Int(i) => Ok(SqlValue::Int(*i)),
        Value::Bool(b) => Ok(SqlValue::Bool(*b)),
        Value::String(s) => Ok(SqlValue::Str(s.clone())),
        Value::Unit => Ok(SqlValue::Int(0)),
        other => Err(ShredError::Internal(format!(
            "cannot store non-base value {} in a SQL column",
            other
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people_shape() -> FlatType {
        FlatType::Record(vec![
            ("name".to_string(), FlatType::Base(BaseType::String)),
            ("tasks".to_string(), FlatType::Index),
        ])
    }

    #[test]
    fn columns_follow_the_flattened_shape() {
        let layout = ResultLayout::new(&people_shape());
        assert_eq!(
            layout.columns(),
            [
                "oidx_tag".to_string(),
                "oidx_ord".to_string(),
                "name".to_string(),
                "tasks_tag".to_string(),
                "tasks_ord".to_string(),
            ]
        );
        // Leaf positions are resolved once at construction.
        assert_eq!(layout.leaves[0].col, 2);
        assert_eq!(layout.leaves[1].col, 3);
    }

    #[test]
    fn base_shape_uses_the_item_column() {
        let layout = ResultLayout::new(&FlatType::Base(BaseType::String));
        assert_eq!(
            layout.columns(),
            ["oidx_tag", "oidx_ord", "item"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn decode_round_trips_rows() {
        let layout = ResultLayout::new(&people_shape());
        let rs = ResultSet {
            columns: layout.columns().to_vec(),
            rows: vec![vec![
                SqlValue::Int(1),
                SqlValue::Int(4),
                SqlValue::str("Erik"),
                SqlValue::Int(2),
                SqlValue::Int(7),
            ]],
        };
        let decoded = layout.decode(&rs).unwrap();
        assert_eq!(decoded.len(), 1);
        let (outer, value) = &decoded[0];
        assert_eq!(
            outer,
            &IndexValue::Flat {
                tag: StaticIndex(1),
                ordinal: 4
            }
        );
        assert_eq!(
            value.field("name"),
            Some(&FlatValue::Base(Value::string("Erik")))
        );
        assert_eq!(
            value.field("tasks"),
            Some(&FlatValue::Index(IndexValue::Flat {
                tag: StaticIndex(2),
                ordinal: 7
            }))
        );
    }

    #[test]
    fn decode_rejects_mismatched_columns() {
        let layout = ResultLayout::new(&people_shape());
        let rs = ResultSet {
            columns: vec!["x".to_string()],
            rows: vec![],
        };
        assert!(matches!(layout.decode(&rs), Err(ShredError::Decode { .. })));
    }

    #[test]
    fn duplicate_flattened_names_are_disambiguated() {
        let shape = FlatType::Record(vec![
            (
                "a".to_string(),
                FlatType::Record(vec![("b".to_string(), FlatType::Base(BaseType::Int))]),
            ),
            ("a_b".to_string(), FlatType::Base(BaseType::Int)),
        ]);
        let layout = ResultLayout::new(&shape);
        let cols = layout.columns();
        let unique: std::collections::HashSet<_> = cols.iter().collect();
        assert_eq!(unique.len(), cols.len());
    }

    #[test]
    fn value_conversions_round_trip() {
        for v in [Value::Int(4), Value::Bool(true), Value::string("x")] {
            let sql = value_to_sql(&v).unwrap();
            let b = match v {
                Value::Int(_) => BaseType::Int,
                Value::Bool(_) => BaseType::Bool,
                Value::String(_) => BaseType::String,
                _ => unreachable!(),
            };
            assert_eq!(sql_to_value(&sql, b).unwrap(), v);
        }
    }
}
