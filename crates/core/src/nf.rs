//! Normal forms for flat–nested queries (Section 2.2 of the paper).
//!
//! After normalisation a query has the shape
//!
//! ```text
//! Query terms       L ::= ⊎ C⃗
//! Comprehensions    C ::= for (G⃗ where X) returnᵃ M
//! Generators        G ::= x ← t
//! Normalised terms  M ::= X | R | L
//! Record terms      R ::= ⟨ℓ⃗ = M⃗⟩
//! Base terms        X ::= x.ℓ | c(X⃗) | empty L
//! ```
//!
//! Each comprehension body carries a *static index* annotation `a` (the
//! superscript on `return` in Section 4), which shredding uses to link outer
//! and inner queries.

use nrc::builder;
use nrc::term::{Constant, PrimOp, Term};
use nrc::types::BaseType;
use std::collections::HashMap;
use std::fmt;

/// A static index: the unique name `a` attached to each `returnᵃ`.
///
/// `StaticIndex(0)` is reserved for the distinguished top-level index ⊤.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StaticIndex(pub u32);

/// The distinguished top-level static index ⊤.
pub const TOP: StaticIndex = StaticIndex(0);

impl StaticIndex {
    /// Is this the top-level index ⊤?
    pub fn is_top(&self) -> bool {
        self.0 == 0
    }

    /// The integer used to materialise this static index in SQL results.
    pub fn as_int(&self) -> i64 {
        self.0 as i64
    }
}

impl fmt::Display for StaticIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_top() {
            write!(f, "⊤")
        } else {
            // 1 → a, 2 → b, …, wrapping to a27 etc. for readability.
            let n = self.0 - 1;
            let letter = (b'a' + (n % 26) as u8) as char;
            if n < 26 {
                write!(f, "{}", letter)
            } else {
                write!(f, "{}{}", letter, n / 26)
            }
        }
    }
}

/// A generator `x ← t` drawing rows from a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generator {
    pub var: String,
    pub table: String,
}

impl Generator {
    pub fn new(var: &str, table: &str) -> Generator {
        Generator {
            var: var.to_string(),
            table: table.to_string(),
        }
    }
}

impl fmt::Display for Generator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ← {}", self.var, self.table)
    }
}

/// A normalised query `⊎ C⃗`: a union of comprehensions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NormQuery {
    pub branches: Vec<Comprehension>,
}

/// One comprehension `for (G⃗ where X) returnᵃ M`.
#[derive(Debug, Clone, PartialEq)]
pub struct Comprehension {
    pub generators: Vec<Generator>,
    /// The `where` clause; [`NfBase::truth`] when there is no condition.
    pub condition: NfBase,
    /// The static index annotation `a` on `returnᵃ`.
    pub tag: StaticIndex,
    pub body: NfTerm,
}

/// A normalised term: a base expression, a record of normalised terms, or a
/// nested query.
#[derive(Debug, Clone, PartialEq)]
pub enum NfTerm {
    Base(NfBase),
    Record(Vec<(String, NfTerm)>),
    Query(NormQuery),
}

/// A base expression: field projection, constant / primitive application, or
/// an emptiness test over a nested query.
#[derive(Debug, Clone, PartialEq)]
pub enum NfBase {
    Proj {
        var: String,
        field: String,
    },
    Const(Constant),
    /// A typed bind variable `?name : O`, preserved through normalisation as
    /// an opaque atom; its value is supplied at execution time.
    Param(String, BaseType),
    Prim(PrimOp, Vec<NfBase>),
    IsEmpty(Box<NormQuery>),
}

impl NfBase {
    /// The constant `true`.
    pub fn truth() -> NfBase {
        NfBase::Const(Constant::Bool(true))
    }

    /// Is this the constant `true`?
    pub fn is_truth(&self) -> bool {
        matches!(self, NfBase::Const(Constant::Bool(true)))
    }

    /// Conjoin two conditions, dropping `true` operands.
    pub fn and(self, other: NfBase) -> NfBase {
        if self.is_truth() {
            other
        } else if other.is_truth() {
            self
        } else {
            NfBase::Prim(PrimOp::And, vec![self, other])
        }
    }

    /// Negate a condition.
    pub fn negate(self) -> NfBase {
        NfBase::Prim(PrimOp::Not, vec![self])
    }

    /// A conjunction of many conditions.
    pub fn conj<I: IntoIterator<Item = NfBase>>(conds: I) -> NfBase {
        conds.into_iter().fold(NfBase::truth(), NfBase::and)
    }

    /// Convert back into a λNRC term.
    pub fn to_term(&self) -> Term {
        match self {
            NfBase::Proj { var, field } => builder::project(builder::var(var), field),
            NfBase::Const(c) => Term::Const(c.clone()),
            NfBase::Param(name, ty) => Term::Param(name.clone(), *ty),
            NfBase::Prim(op, args) => {
                Term::PrimApp(*op, args.iter().map(NfBase::to_term).collect())
            }
            NfBase::IsEmpty(q) => builder::is_empty(q.to_term()),
        }
    }

    /// Replace parameters with the bound constants. Parameters without a
    /// binding are left in place.
    pub fn bind_params(&self, bindings: &HashMap<String, Constant>) -> NfBase {
        match self {
            NfBase::Param(name, _) => match bindings.get(name) {
                Some(c) => NfBase::Const(c.clone()),
                None => self.clone(),
            },
            NfBase::Proj { .. } | NfBase::Const(_) => self.clone(),
            NfBase::Prim(op, args) => {
                NfBase::Prim(*op, args.iter().map(|a| a.bind_params(bindings)).collect())
            }
            NfBase::IsEmpty(q) => NfBase::IsEmpty(Box::new(q.bind_params(bindings))),
        }
    }

    /// Variables referenced by this expression (not descending into nested
    /// queries, whose generators re-bind their own variables).
    pub fn free_vars(&self) -> Vec<String> {
        fn go(b: &NfBase, acc: &mut Vec<String>) {
            match b {
                NfBase::Proj { var, .. } => {
                    if !acc.contains(var) {
                        acc.push(var.clone());
                    }
                }
                NfBase::Const(_) | NfBase::Param(_, _) => {}
                NfBase::Prim(_, args) => args.iter().for_each(|a| go(a, acc)),
                NfBase::IsEmpty(q) => {
                    for v in q.to_term().free_vars() {
                        if !acc.contains(&v) {
                            acc.push(v);
                        }
                    }
                }
            }
        }
        let mut acc = Vec::new();
        go(self, &mut acc);
        acc
    }
}

impl NfTerm {
    /// Convert back into a λNRC term.
    pub fn to_term(&self) -> Term {
        match self {
            NfTerm::Base(b) => b.to_term(),
            NfTerm::Record(fields) => Term::Record(
                fields
                    .iter()
                    .map(|(l, t)| (l.clone(), t.to_term()))
                    .collect(),
            ),
            NfTerm::Query(q) => q.to_term(),
        }
    }

    /// Replace parameters with the bound constants.
    pub fn bind_params(&self, bindings: &HashMap<String, Constant>) -> NfTerm {
        match self {
            NfTerm::Base(b) => NfTerm::Base(b.bind_params(bindings)),
            NfTerm::Record(fields) => NfTerm::Record(
                fields
                    .iter()
                    .map(|(l, t)| (l.clone(), t.bind_params(bindings)))
                    .collect(),
            ),
            NfTerm::Query(q) => NfTerm::Query(q.bind_params(bindings)),
        }
    }
}

impl Comprehension {
    /// Convert back into a λNRC term
    /// `for (x1 ← t1) … for (xn ← tn) (if X then return M else ∅)`.
    pub fn to_term(&self) -> Term {
        let ret = builder::singleton(self.body.to_term());
        let guarded = if self.condition.is_truth() {
            ret
        } else {
            builder::where_(self.condition.to_term(), ret)
        };
        self.generators.iter().rev().fold(guarded, |acc, g| {
            builder::for_in(&g.var, builder::table(&g.table), acc)
        })
    }

    /// All static indexes occurring in this comprehension (its own tag plus
    /// the tags of nested queries).
    pub fn tags(&self) -> Vec<StaticIndex> {
        let mut acc = vec![self.tag];
        fn go_term(t: &NfTerm, acc: &mut Vec<StaticIndex>) {
            match t {
                NfTerm::Base(_) => {}
                NfTerm::Record(fields) => fields.iter().for_each(|(_, t)| go_term(t, acc)),
                NfTerm::Query(q) => acc.extend(q.tags()),
            }
        }
        go_term(&self.body, &mut acc);
        acc
    }
}

impl NormQuery {
    /// A query with a single comprehension.
    pub fn single(comp: Comprehension) -> NormQuery {
        NormQuery {
            branches: vec![comp],
        }
    }

    /// Convert back into a λNRC term (the union of the branch terms, or ∅).
    pub fn to_term(&self) -> Term {
        let mut it = self.branches.iter().map(Comprehension::to_term);
        match it.next() {
            None => builder::empty_bag(),
            Some(first) => it.fold(first, builder::union),
        }
    }

    /// All static indexes occurring in the query, in definition order.
    pub fn tags(&self) -> Vec<StaticIndex> {
        self.branches.iter().flat_map(Comprehension::tags).collect()
    }

    /// Replace parameters with the bound constants throughout the query
    /// (used by backends that evaluate normal forms directly rather than
    /// binding at the engine level).
    pub fn bind_params(&self, bindings: &HashMap<String, Constant>) -> NormQuery {
        NormQuery {
            branches: self
                .branches
                .iter()
                .map(|c| Comprehension {
                    generators: c.generators.clone(),
                    condition: c.condition.bind_params(bindings),
                    tag: c.tag,
                    body: c.body.bind_params(bindings),
                })
                .collect(),
        }
    }

    /// Number of comprehensions (union branches) at the top level.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }
}

impl fmt::Display for NormQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.branches.is_empty() {
            return write!(f, "∅");
        }
        for (i, c) in self.branches.iter().enumerate() {
            if i > 0 {
                write!(f, " ⊎ ")?;
            }
            write!(f, "{}", c)?;
        }
        Ok(())
    }
}

impl fmt::Display for Comprehension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "for (")?;
        for (i, g) in self.generators.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", g)?;
        }
        if !self.condition.is_truth() {
            write!(f, " where {}", self.condition.to_term())?;
        }
        write!(f, ") return^{} {}", self.tag, self.body.to_term())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrc::builder::*;

    fn sample() -> NormQuery {
        NormQuery::single(Comprehension {
            generators: vec![Generator::new("x", "departments")],
            condition: NfBase::Prim(
                PrimOp::Eq,
                vec![
                    NfBase::Proj {
                        var: "x".to_string(),
                        field: "name".to_string(),
                    },
                    NfBase::Const(Constant::String("Sales".to_string())),
                ],
            ),
            tag: StaticIndex(1),
            body: NfTerm::Record(vec![(
                "dept".to_string(),
                NfTerm::Base(NfBase::Proj {
                    var: "x".to_string(),
                    field: "name".to_string(),
                }),
            )]),
        })
    }

    #[test]
    fn to_term_round_trips_the_structure() {
        let q = sample();
        let t = q.to_term();
        // for (x ← departments) where (x.name = "Sales") return <dept = x.name>
        let expected = for_where(
            "x",
            table("departments"),
            eq(project(var("x"), "name"), string("Sales")),
            singleton(record(vec![("dept", project(var("x"), "name"))])),
        );
        assert_eq!(t, expected);
    }

    #[test]
    fn empty_query_is_the_empty_bag() {
        assert_eq!(NormQuery::default().to_term(), empty_bag());
    }

    #[test]
    fn static_index_display() {
        assert_eq!(TOP.to_string(), "⊤");
        assert_eq!(StaticIndex(1).to_string(), "a");
        assert_eq!(StaticIndex(2).to_string(), "b");
        assert_eq!(StaticIndex(4).to_string(), "d");
    }

    #[test]
    fn conditions_conjoin_and_drop_truths() {
        let c = NfBase::truth().and(NfBase::Const(Constant::Bool(false)));
        assert_eq!(c, NfBase::Const(Constant::Bool(false)));
        let c2 = NfBase::Const(Constant::Bool(false)).and(NfBase::truth());
        assert_eq!(c2, NfBase::Const(Constant::Bool(false)));
    }

    #[test]
    fn tags_collects_nested_tags() {
        let inner = NormQuery::single(Comprehension {
            generators: vec![Generator::new("y", "employees")],
            condition: NfBase::truth(),
            tag: StaticIndex(2),
            body: NfTerm::Base(NfBase::Proj {
                var: "y".to_string(),
                field: "name".to_string(),
            }),
        });
        let outer = NormQuery::single(Comprehension {
            generators: vec![Generator::new("x", "departments")],
            condition: NfBase::truth(),
            tag: StaticIndex(1),
            body: NfTerm::Record(vec![("emps".to_string(), NfTerm::Query(inner))]),
        });
        assert_eq!(outer.tags(), vec![StaticIndex(1), StaticIndex(2)]);
    }

    #[test]
    fn free_vars_of_conditions() {
        let q = sample();
        assert_eq!(q.branches[0].condition.free_vars(), vec!["x".to_string()]);
    }
}
