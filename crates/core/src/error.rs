//! Errors raised by the shredding pipeline.

use std::fmt;

/// Errors from normalisation, shredding, let-insertion, SQL generation,
/// execution and stitching.
#[derive(Debug, Clone, PartialEq)]
pub enum ShredError {
    /// A λNRC type error in the source query.
    Type(nrc::TypeError),
    /// The term is not a query (its type is not a bag type).
    NotAQuery(String),
    /// The query's type contains function types, so it is not flat–nested.
    NotFlatNested(String),
    /// The rewriting stages exceeded their step bound.
    RewriteDiverged,
    /// A term that should have been eliminated by rewriting survived into the
    /// structural normalisation pass.
    NotInNormalForm(String),
    /// A path used for shredding does not point at a bag constructor of the
    /// query's result type.
    BadPath(String),
    /// A runtime evaluation error while computing the reference semantics.
    Eval(nrc::EvalError),
    /// An error reported by the SQL engine while executing shredded queries.
    Engine(sqlengine::EngineError),
    /// The natural indexing scheme was requested but a table lacks a key.
    MissingKey(String),
    /// An indexing scheme produced duplicate indexes (it is not valid for
    /// this query, in the sense of Section 6).
    InvalidIndexing(String),
    /// A shredded result row could not be decoded back into a nested value.
    /// `code` is a `D…` entry of the diagnostic registry
    /// ([`analysis::codes`]), naming which decode invariant broke.
    Decode { code: &'static str, message: String },
    /// The prepare-time static verifier found an error-severity diagnostic.
    /// `code` is the diagnostic registry entry; `message` is the rendered
    /// first error (see [`crate::session::PreparedQuery::check`] for the
    /// full list).
    Verification { code: &'static str, message: String },
    /// A parameter required by the prepared query was not bound at execution
    /// time.
    MissingParam {
        name: String,
        expected: nrc::BaseType,
    },
    /// A bound value's type does not match the parameter's declared type, or
    /// the same parameter name was declared at two different types.
    ParamTypeMismatch {
        name: String,
        expected: String,
        found: String,
    },
    /// A binding was supplied for a parameter name the prepared query does
    /// not declare.
    UnknownParam { name: String, declared: Vec<String> },
    /// A `Shredder` session was misconfigured (builder validation, missing
    /// database, or a prepared query used with the wrong session).
    Config(String),
    /// An internal invariant was violated; indicates a bug in the pipeline.
    Internal(String),
}

impl fmt::Display for ShredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShredError::Type(e) => write!(f, "type error: {}", e),
            ShredError::NotAQuery(t) => write!(f, "not a query: has type {}", t),
            ShredError::NotFlatNested(t) => {
                write!(
                    f,
                    "query type {} is not flat-nested (contains functions)",
                    t
                )
            }
            ShredError::RewriteDiverged => write!(f, "normalisation exceeded its step bound"),
            ShredError::NotInNormalForm(msg) => write!(f, "not in normal form: {}", msg),
            ShredError::BadPath(p) => {
                write!(f, "path {} does not address a bag in the result type", p)
            }
            ShredError::Eval(e) => write!(f, "evaluation error: {}", e),
            ShredError::Engine(e) => write!(f, "SQL engine error: {}", e),
            ShredError::MissingKey(t) => {
                write!(f, "natural indexing requires a key on table {}", t)
            }
            ShredError::InvalidIndexing(msg) => write!(f, "invalid indexing scheme: {}", msg),
            ShredError::Decode { code, message } => {
                write!(f, "cannot decode shredded result [{}]: {}", code, message)
            }
            ShredError::Verification { code, message } => {
                write!(f, "static verification failed [{}]: {}", code, message)
            }
            ShredError::MissingParam { name, expected } => write!(
                f,
                "missing binding for parameter ?{} : {}; bind a value with \
                 Params::new().bind(\"{}\", …) and execute with execute_bound",
                name, expected, name
            ),
            ShredError::ParamTypeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "parameter ?{} expects a value of type {} but was bound to {}",
                name, expected, found
            ),
            ShredError::UnknownParam { name, declared } => {
                if declared.is_empty() {
                    write!(
                        f,
                        "unknown parameter \"{}\": the prepared query declares no parameters",
                        name
                    )
                } else {
                    write!(
                        f,
                        "unknown parameter \"{}\": the prepared query declares only [{}]",
                        name,
                        declared.join(", ")
                    )
                }
            }
            ShredError::Config(msg) => write!(f, "session configuration error: {}", msg),
            ShredError::Internal(msg) => write!(f, "internal error: {}", msg),
        }
    }
}

impl std::error::Error for ShredError {}

impl From<nrc::TypeError> for ShredError {
    fn from(e: nrc::TypeError) -> Self {
        ShredError::Type(e)
    }
}

impl From<nrc::EvalError> for ShredError {
    fn from(e: nrc::EvalError) -> Self {
        ShredError::Eval(e)
    }
}

impl From<sqlengine::EngineError> for ShredError {
    fn from(e: sqlengine::EngineError) -> Self {
        ShredError::Engine(e)
    }
}
