//! Stitching shredded results back into a nested value (Section 5.2).
//!
//! Following the optimisation described in Section 8, stitching is done in a
//! single pass: each shredded result is first grouped by its outer index in a
//! hash map, so rebuilding the nested value is linear in the total size of
//! the shredded results rather than quadratic.
//!
//! Two stitchers live here:
//!
//! * [`stitch`] — the **columnar** path (the default): consumes
//!   [`ColumnarStage`]s whose rows were grouped by their `(oidx_tag,
//!   oidx_ord)` columns at decode time, and materialises the nested value
//!   straight out of the `Arc`-shared columns using the layout's
//!   pre-resolved leaf positions. No intermediate [`FlatValue`] tree is
//!   allocated.
//! * [`stitch_rows`] — the **row** path: consumes [`ShredResult`]s (lists of
//!   ⟨outer index, flat value⟩ pairs). It is the differential oracle the
//!   columnar path is tested against, and the only stitcher the in-memory
//!   shredded semantics can use (they materialise canonical or natural
//!   indexes, which have no columnar encoding).

use crate::error::ShredError;
use crate::flatten::{sql_to_value, ColumnarStage, LeafKind};
use crate::nf::StaticIndex;
use crate::semantics::{FlatValue, IndexScheme, IndexValue, ShredResult};
use crate::shred::Package;
use analysis::codes;
use nrc::value::Value;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// The columnar stitcher (the default path)
// ---------------------------------------------------------------------------

/// Stitch a package of decoded columnar stages into the nested value they
/// encode, starting from the distinguished top-level index ⊤⋅1.
///
/// This is the index-keyed columnar path: each [`ColumnarStage`] arrives
/// already grouped by its `(oidx_tag, oidx_ord)` columns (a `HashMap` over a
/// sorted row permutation, built by [`ColumnarStage::decode`]), and nested
/// values are materialised in one pass straight out of the `Arc`-shared
/// columns — no intermediate [`FlatValue`] tree exists at any point, string
/// cells reach the result as refcount bumps, and the package is consumed by
/// value so nothing is re-cloned. The SQL rendering always materialises
/// flat indexes, so no [`IndexScheme`] parameter is needed here; the row
/// path ([`stitch_rows`]) remains the scheme-polymorphic oracle.
pub fn stitch(package: Package<ColumnarStage>) -> Result<Value, ShredError> {
    stitch_obs(package, None)
}

/// [`stitch`] with the elapsed time recorded as a `Stage::Stitch` span when
/// a collector is present.
pub fn stitch_obs(
    package: Package<ColumnarStage>,
    obs: Option<&obs::QueryObs>,
) -> Result<Value, ShredError> {
    obs::time_maybe(obs, obs::Stage::Stitch, || match &package {
        Package::Bag(_, _) => stitch_bag(&package, &IndexValue::top(IndexScheme::Flat)),
        _ => Err(ShredError::Internal(
            "stitching requires a bag-typed result package".to_string(),
        )),
    })
}

fn stitch_bag(package: &Package<ColumnarStage>, index: &IndexValue) -> Result<Value, ShredError> {
    match package {
        Package::Bag(stage, inner) => {
            let rows = stage.group(index);
            let mut items = Vec::with_capacity(rows.len());
            for &row in rows {
                let mut leaf = 0usize;
                items.push(stitch_value(inner, stage, &mut leaf, row as usize)?);
            }
            Ok(Value::Bag(items))
        }
        _ => Err(ShredError::Internal(
            "stitch_bag called on a non-bag package".to_string(),
        )),
    }
}

/// Materialise one row of a stage as a nested value, walking the inner
/// package shape in lockstep with the stage layout's pre-resolved leaves:
/// a `Base` package node reads one data column, a `Bag` node reads the two
/// index columns of its `Index` leaf and recurses into the nested stage.
fn stitch_value(
    package: &Package<ColumnarStage>,
    stage: &ColumnarStage,
    leaf: &mut usize,
    row: usize,
) -> Result<Value, ShredError> {
    match package {
        Package::Record(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (label, field_pkg) in fields {
                out.push((label.clone(), stitch_value(field_pkg, stage, leaf, row)?));
            }
            Ok(Value::Record(out))
        }
        Package::Base(b) => {
            let l = next_leaf(stage, leaf)?;
            if !matches!(l.kind, LeafKind::Base(_)) {
                return Err(ShredError::Decode {
                    code: codes::DECODE_SHAPE_MISMATCH,
                    message: format!(
                        "layout leaf {} is an index but the package expects a base value",
                        l.name
                    ),
                });
            }
            sql_to_value(stage.cell(l.col, row), *b)
        }
        Package::Bag(_, _) => {
            let l = next_leaf(stage, leaf)?;
            if l.kind != LeafKind::Index {
                return Err(ShredError::Decode {
                    code: codes::DECODE_SHAPE_MISMATCH,
                    message: format!(
                        "layout leaf {} is a base column but the package expects a nested bag",
                        l.name
                    ),
                });
            }
            let index = read_index(stage, l.col, row)?;
            stitch_bag(package, &index)
        }
    }
}

fn next_leaf<'a>(
    stage: &'a ColumnarStage,
    leaf: &mut usize,
) -> Result<&'a crate::flatten::Leaf, ShredError> {
    let l = stage
        .layout()
        .leaves
        .get(*leaf)
        .ok_or_else(|| ShredError::Decode {
            code: codes::DECODE_SHAPE_MISMATCH,
            message: "stage has fewer leaves than the package shape".to_string(),
        })?;
    *leaf += 1;
    Ok(l)
}

/// Read the flat `(tag, ord)` index pair stored at columns `col`/`col + 1`.
fn read_index(stage: &ColumnarStage, col: usize, row: usize) -> Result<IndexValue, ShredError> {
    let tag = stage
        .cell(col, row)
        .as_int()
        .ok_or_else(|| ShredError::Decode {
            code: codes::DECODE_TYPE_MISMATCH,
            message: "expected an integer inner index tag column".to_string(),
        })?;
    let ordinal = stage
        .cell(col + 1, row)
        .as_int()
        .ok_or_else(|| ShredError::Decode {
            code: codes::DECODE_TYPE_MISMATCH,
            message: "expected an integer inner index ordinal column".to_string(),
        })?;
    Ok(IndexValue::Flat {
        tag: StaticIndex(u32::try_from(tag).map_err(|_| ShredError::Decode {
            code: codes::DECODE_INDEX_RANGE,
            message: format!("static index column out of range: {}", tag),
        })?),
        ordinal,
    })
}

// ---------------------------------------------------------------------------
// The row-at-a-time stitcher (the differential oracle)
// ---------------------------------------------------------------------------

/// A shredded result grouped by outer index.
type Grouped = HashMap<IndexValue, Vec<FlatValue>>;

/// Stitch a package of row-decoded shredded results into the nested value
/// they encode, starting from the distinguished top-level index ⊤⋅1.
///
/// This is the original row path, kept as the differential oracle for the
/// columnar [`stitch`] (and as the stitcher for the in-memory shredded
/// semantics, which produce [`FlatValue`]s under any [`IndexScheme`], not
/// columns). The package is consumed by value, so grouping moves each
/// `(outer, value)` pair into its bucket instead of cloning it.
pub fn stitch_rows(
    package: Package<ShredResult>,
    scheme: IndexScheme,
) -> Result<Value, ShredError> {
    let grouped = package.into_map(&mut |result: ShredResult| {
        let mut map: Grouped = HashMap::new();
        for (outer, value) in result {
            map.entry(outer).or_default().push(value);
        }
        map
    });
    match &grouped {
        Package::Bag(_, _) => stitch_rows_bag(&grouped, &IndexValue::top(scheme)),
        _ => Err(ShredError::Internal(
            "stitching requires a bag-typed result package".to_string(),
        )),
    }
}

fn stitch_rows_bag(package: &Package<Grouped>, index: &IndexValue) -> Result<Value, ShredError> {
    match package {
        Package::Bag(grouped, inner) => {
            let rows = grouped.get(index).map(Vec::as_slice).unwrap_or(&[]);
            let mut items = Vec::with_capacity(rows.len());
            for row in rows {
                items.push(stitch_rows_value(inner, row)?);
            }
            Ok(Value::Bag(items))
        }
        _ => Err(ShredError::Internal(
            "stitch_bag called on a non-bag package".to_string(),
        )),
    }
}

fn stitch_rows_value(package: &Package<Grouped>, value: &FlatValue) -> Result<Value, ShredError> {
    match (package, value) {
        (Package::Base(_), FlatValue::Base(v)) => Ok(v.clone()),
        (Package::Record(fields), FlatValue::Record(values)) => {
            let mut out = Vec::with_capacity(fields.len());
            for (i, (label, field_pkg)) in fields.iter().enumerate() {
                // Decoded record fields arrive in layout order, which is the
                // package's field order — so the i-th field is found by
                // position, not by a linear scan per field per row. The scan
                // survives only as a fallback for hand-built results whose
                // field order differs.
                let field_value = match values.get(i) {
                    Some((l, v)) if l == label => v,
                    _ => values
                        .iter()
                        .find(|(l, _)| l == label)
                        .map(|(_, v)| v)
                        .ok_or_else(|| ShredError::Decode {
                            code: codes::DECODE_MISSING_FIELD,
                            message: format!("shredded row is missing field {}", label),
                        })?,
                };
                out.push((label.clone(), stitch_rows_value(field_pkg, field_value)?));
            }
            Ok(Value::Record(out))
        }
        (Package::Bag(_, _), FlatValue::Index(idx)) => stitch_rows_bag(package, idx),
        (pkg, v) => Err(ShredError::Decode {
            code: codes::DECODE_SHAPE_MISMATCH,
            message: format!(
                "value {} does not match the package shape {:?}",
                v,
                std::mem::discriminant(pkg)
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::ResultLayout;
    use crate::nf::StaticIndex;
    use crate::shred::FlatType;
    use nrc::types::BaseType;
    use sqlengine::{ColumnarResult, SqlValue};
    use std::sync::Arc;

    fn idx(tag: u32, ordinal: i64) -> IndexValue {
        IndexValue::Flat {
            tag: StaticIndex(tag),
            ordinal,
        }
    }

    /// Assemble a decoded columnar stage from literal rows (tag, ord, cells).
    fn columnar_stage(shape: FlatType, rows: Vec<Vec<SqlValue>>) -> ColumnarStage {
        let layout = Arc::new(ResultLayout::new(&shape));
        let width = layout.columns().len();
        let n = rows.len();
        let mut cols: Vec<Vec<SqlValue>> = (0..width).map(|_| Vec::with_capacity(n)).collect();
        for row in rows {
            assert_eq!(row.len(), width, "test row width matches the layout");
            for (c, v) in row.into_iter().enumerate() {
                cols[c].push(v);
            }
        }
        let result = ColumnarResult::new(
            layout.columns().to_vec(),
            cols.into_iter().map(Arc::new).collect(),
            n,
        );
        ColumnarStage::decode(layout, result).unwrap()
    }

    fn int(i: i64) -> SqlValue {
        SqlValue::Int(i)
    }

    fn s(x: &str) -> SqlValue {
        SqlValue::str(x)
    }

    /// The running example of `stitches_the_running_example_shape`, but fed
    /// through the columnar decode + stitch path: same three stages, now as
    /// flat SQL columns.
    #[test]
    fn columnar_stitch_rebuilds_the_running_example() {
        let people_shape = FlatType::Record(vec![
            ("name".to_string(), FlatType::Base(BaseType::String)),
            ("tasks".to_string(), FlatType::Index),
        ]);
        let dept_shape = FlatType::Record(vec![
            ("department".to_string(), FlatType::Base(BaseType::String)),
            ("people".to_string(), FlatType::Index),
        ]);
        // Rows are deliberately out of index order: grouping must sort them.
        let r1 = columnar_stage(
            dept_shape,
            vec![
                vec![int(0), int(1), s("Sales"), int(1), int(2)],
                vec![int(0), int(1), s("Product"), int(1), int(1)],
            ],
        );
        let r2 = columnar_stage(
            people_shape,
            vec![
                vec![int(1), int(2), s("Erik"), int(2), int(2)],
                vec![int(1), int(1), s("Bert"), int(2), int(1)],
            ],
        );
        let r3 = columnar_stage(
            FlatType::Base(BaseType::String),
            vec![
                vec![int(2), int(2), s("call")],
                vec![int(2), int(1), s("build")],
                vec![int(2), int(2), s("enthuse")],
            ],
        );
        let package = Package::Bag(
            r1,
            Box::new(Package::Record(vec![
                ("department".to_string(), Package::Base(BaseType::String)),
                (
                    "people".to_string(),
                    Package::Bag(
                        r2,
                        Box::new(Package::Record(vec![
                            ("name".to_string(), Package::Base(BaseType::String)),
                            (
                                "tasks".to_string(),
                                Package::Bag(r3, Box::new(Package::Base(BaseType::String))),
                            ),
                        ])),
                    ),
                ),
            ])),
        );
        let v = stitch(package).unwrap();
        let expected = Value::bag(vec![
            Value::record(vec![
                ("department", Value::string("Product")),
                (
                    "people",
                    Value::bag(vec![Value::record(vec![
                        ("name", Value::string("Bert")),
                        ("tasks", Value::bag(vec![Value::string("build")])),
                    ])]),
                ),
            ]),
            Value::record(vec![
                ("department", Value::string("Sales")),
                (
                    "people",
                    Value::bag(vec![Value::record(vec![
                        ("name", Value::string("Erik")),
                        (
                            "tasks",
                            Value::bag(vec![Value::string("call"), Value::string("enthuse")]),
                        ),
                    ])]),
                ),
            ]),
        ]);
        assert!(v.multiset_eq(&expected), "got {}", v);
    }

    /// An inner index with no rows in the nested stage stitches to an empty
    /// bag on the columnar path too.
    #[test]
    fn columnar_missing_inner_rows_produce_empty_bags() {
        let dept_shape = FlatType::Record(vec![
            ("dept".to_string(), FlatType::Base(BaseType::String)),
            ("people".to_string(), FlatType::Index),
        ]);
        let r1 = columnar_stage(
            dept_shape,
            vec![vec![int(0), int(1), s("Quality"), int(1), int(7)]],
        );
        let r2 = columnar_stage(FlatType::Base(BaseType::String), vec![]);
        let package = Package::Bag(
            r1,
            Box::new(Package::Record(vec![
                ("dept".to_string(), Package::Base(BaseType::String)),
                (
                    "people".to_string(),
                    Package::Bag(r2, Box::new(Package::Base(BaseType::String))),
                ),
            ])),
        );
        let v = stitch(package).unwrap();
        let people = v.as_bag().unwrap()[0].field("people").unwrap();
        assert_eq!(people, &Value::Bag(vec![]));
    }

    /// A stage whose cells do not inhabit the declared base type is a decode
    /// error, not a panic.
    #[test]
    fn columnar_type_mismatches_are_decode_errors() {
        let r1 = columnar_stage(
            FlatType::Base(BaseType::Int),
            vec![vec![int(0), int(1), s("not-an-int")]],
        );
        let package = Package::Bag(r1, Box::new(Package::Base(BaseType::Int)));
        assert!(matches!(stitch(package), Err(ShredError::Decode { .. })));
    }

    /// Hand-build the shredded results of the paper's running example (the
    /// r′1, r′2, r′3 tables of Section 3, slightly reduced) and stitch them.
    #[test]
    fn stitches_the_running_example_shape() {
        // Outer query: one row per department.
        let r1: ShredResult = vec![
            (
                idx(0, 1),
                FlatValue::Record(vec![
                    (
                        "department".to_string(),
                        FlatValue::Base(Value::string("Product")),
                    ),
                    ("people".to_string(), FlatValue::Index(idx(1, 1))),
                ]),
            ),
            (
                idx(0, 1),
                FlatValue::Record(vec![
                    (
                        "department".to_string(),
                        FlatValue::Base(Value::string("Sales")),
                    ),
                    ("people".to_string(), FlatValue::Index(idx(1, 2))),
                ]),
            ),
        ];
        // Middle query: people per department.
        let r2: ShredResult = vec![
            (
                idx(1, 1),
                FlatValue::Record(vec![
                    ("name".to_string(), FlatValue::Base(Value::string("Bert"))),
                    ("tasks".to_string(), FlatValue::Index(idx(2, 1))),
                ]),
            ),
            (
                idx(1, 2),
                FlatValue::Record(vec![
                    ("name".to_string(), FlatValue::Base(Value::string("Erik"))),
                    ("tasks".to_string(), FlatValue::Index(idx(2, 2))),
                ]),
            ),
        ];
        // Inner query: tasks per person.
        let r3: ShredResult = vec![
            (idx(2, 1), FlatValue::Base(Value::string("build"))),
            (idx(2, 2), FlatValue::Base(Value::string("call"))),
            (idx(2, 2), FlatValue::Base(Value::string("enthuse"))),
        ];

        let package = Package::Bag(
            r1,
            Box::new(Package::Record(vec![
                ("department".to_string(), Package::Base(BaseType::String)),
                (
                    "people".to_string(),
                    Package::Bag(
                        r2,
                        Box::new(Package::Record(vec![
                            ("name".to_string(), Package::Base(BaseType::String)),
                            (
                                "tasks".to_string(),
                                Package::Bag(r3, Box::new(Package::Base(BaseType::String))),
                            ),
                        ])),
                    ),
                ),
            ])),
        );

        let v = stitch_rows(package, IndexScheme::Flat).unwrap();
        let expected = Value::bag(vec![
            Value::record(vec![
                ("department", Value::string("Product")),
                (
                    "people",
                    Value::bag(vec![Value::record(vec![
                        ("name", Value::string("Bert")),
                        ("tasks", Value::bag(vec![Value::string("build")])),
                    ])]),
                ),
            ]),
            Value::record(vec![
                ("department", Value::string("Sales")),
                (
                    "people",
                    Value::bag(vec![Value::record(vec![
                        ("name", Value::string("Erik")),
                        (
                            "tasks",
                            Value::bag(vec![Value::string("call"), Value::string("enthuse")]),
                        ),
                    ])]),
                ),
            ]),
        ]);
        assert!(v.multiset_eq(&expected));
    }

    #[test]
    fn missing_inner_rows_produce_empty_bags() {
        let r1: ShredResult = vec![(
            idx(0, 1),
            FlatValue::Record(vec![
                (
                    "dept".to_string(),
                    FlatValue::Base(Value::string("Quality")),
                ),
                ("people".to_string(), FlatValue::Index(idx(1, 7))),
            ]),
        )];
        let r2: ShredResult = vec![];
        let package = Package::Bag(
            r1,
            Box::new(Package::Record(vec![
                ("dept".to_string(), Package::Base(BaseType::String)),
                (
                    "people".to_string(),
                    Package::Bag(r2, Box::new(Package::Base(BaseType::String))),
                ),
            ])),
        );
        let v = stitch_rows(package, IndexScheme::Flat).unwrap();
        let people = v.as_bag().unwrap()[0].field("people").unwrap();
        assert_eq!(people, &Value::Bag(vec![]));
    }

    #[test]
    fn mismatched_shapes_are_decode_errors() {
        let r1: ShredResult = vec![(idx(0, 1), FlatValue::Base(Value::Int(3)))];
        let package = Package::Bag(
            r1,
            Box::new(Package::Record(vec![(
                "x".to_string(),
                Package::Base(BaseType::Int),
            )])),
        );
        assert!(matches!(
            stitch_rows(package, IndexScheme::Flat),
            Err(ShredError::Decode { .. })
        ));
    }
}
