//! Stitching shredded results back into a nested value (Section 5.2).
//!
//! Following the optimisation described in Section 8, stitching is done in a
//! single pass: each shredded result is first grouped by its outer index in a
//! hash map, so rebuilding the nested value is linear in the total size of
//! the shredded results rather than quadratic.

use crate::error::ShredError;
use crate::semantics::{FlatValue, IndexScheme, IndexValue, ShredResult};
use crate::shred::Package;
use nrc::value::Value;
use std::collections::HashMap;

/// A shredded result grouped by outer index.
type Grouped = HashMap<IndexValue, Vec<FlatValue>>;

/// Stitch a package of shredded results into the nested value they encode,
/// starting from the distinguished top-level index ⊤⋅1.
pub fn stitch(package: &Package<ShredResult>, scheme: IndexScheme) -> Result<Value, ShredError> {
    let grouped = package.map(&mut |result: &ShredResult| {
        let mut map: Grouped = HashMap::new();
        for (outer, value) in result {
            map.entry(outer.clone()).or_default().push(value.clone());
        }
        map
    });
    match &grouped {
        Package::Bag(_, _) => stitch_bag(&grouped, &IndexValue::top(scheme)),
        _ => Err(ShredError::Internal(
            "stitching requires a bag-typed result package".to_string(),
        )),
    }
}

fn stitch_bag(package: &Package<Grouped>, index: &IndexValue) -> Result<Value, ShredError> {
    match package {
        Package::Bag(grouped, inner) => {
            let rows = grouped.get(index).map(Vec::as_slice).unwrap_or(&[]);
            let mut items = Vec::with_capacity(rows.len());
            for row in rows {
                items.push(stitch_value(inner, row)?);
            }
            Ok(Value::Bag(items))
        }
        _ => Err(ShredError::Internal(
            "stitch_bag called on a non-bag package".to_string(),
        )),
    }
}

fn stitch_value(package: &Package<Grouped>, value: &FlatValue) -> Result<Value, ShredError> {
    match (package, value) {
        (Package::Base(_), FlatValue::Base(v)) => Ok(v.clone()),
        (Package::Record(fields), FlatValue::Record(values)) => {
            let mut out = Vec::with_capacity(fields.len());
            for (label, field_pkg) in fields {
                let field_value = values
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, v)| v)
                    .ok_or_else(|| {
                        ShredError::Decode(format!("shredded row is missing field {}", label))
                    })?;
                out.push((label.clone(), stitch_value(field_pkg, field_value)?));
            }
            Ok(Value::Record(out))
        }
        (Package::Bag(_, _), FlatValue::Index(idx)) => stitch_bag(package, idx),
        (pkg, v) => Err(ShredError::Decode(format!(
            "value {} does not match the package shape {:?}",
            v,
            std::mem::discriminant(pkg)
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::StaticIndex;
    use nrc::types::BaseType;

    fn idx(tag: u32, ordinal: i64) -> IndexValue {
        IndexValue::Flat {
            tag: StaticIndex(tag),
            ordinal,
        }
    }

    /// Hand-build the shredded results of the paper's running example (the
    /// r′1, r′2, r′3 tables of Section 3, slightly reduced) and stitch them.
    #[test]
    fn stitches_the_running_example_shape() {
        // Outer query: one row per department.
        let r1: ShredResult = vec![
            (
                idx(0, 1),
                FlatValue::Record(vec![
                    (
                        "department".to_string(),
                        FlatValue::Base(Value::string("Product")),
                    ),
                    ("people".to_string(), FlatValue::Index(idx(1, 1))),
                ]),
            ),
            (
                idx(0, 1),
                FlatValue::Record(vec![
                    (
                        "department".to_string(),
                        FlatValue::Base(Value::string("Sales")),
                    ),
                    ("people".to_string(), FlatValue::Index(idx(1, 2))),
                ]),
            ),
        ];
        // Middle query: people per department.
        let r2: ShredResult = vec![
            (
                idx(1, 1),
                FlatValue::Record(vec![
                    ("name".to_string(), FlatValue::Base(Value::string("Bert"))),
                    ("tasks".to_string(), FlatValue::Index(idx(2, 1))),
                ]),
            ),
            (
                idx(1, 2),
                FlatValue::Record(vec![
                    ("name".to_string(), FlatValue::Base(Value::string("Erik"))),
                    ("tasks".to_string(), FlatValue::Index(idx(2, 2))),
                ]),
            ),
        ];
        // Inner query: tasks per person.
        let r3: ShredResult = vec![
            (idx(2, 1), FlatValue::Base(Value::string("build"))),
            (idx(2, 2), FlatValue::Base(Value::string("call"))),
            (idx(2, 2), FlatValue::Base(Value::string("enthuse"))),
        ];

        let package = Package::Bag(
            r1,
            Box::new(Package::Record(vec![
                ("department".to_string(), Package::Base(BaseType::String)),
                (
                    "people".to_string(),
                    Package::Bag(
                        r2,
                        Box::new(Package::Record(vec![
                            ("name".to_string(), Package::Base(BaseType::String)),
                            (
                                "tasks".to_string(),
                                Package::Bag(r3, Box::new(Package::Base(BaseType::String))),
                            ),
                        ])),
                    ),
                ),
            ])),
        );

        let v = stitch(&package, IndexScheme::Flat).unwrap();
        let expected = Value::bag(vec![
            Value::record(vec![
                ("department", Value::string("Product")),
                (
                    "people",
                    Value::bag(vec![Value::record(vec![
                        ("name", Value::string("Bert")),
                        ("tasks", Value::bag(vec![Value::string("build")])),
                    ])]),
                ),
            ]),
            Value::record(vec![
                ("department", Value::string("Sales")),
                (
                    "people",
                    Value::bag(vec![Value::record(vec![
                        ("name", Value::string("Erik")),
                        (
                            "tasks",
                            Value::bag(vec![Value::string("call"), Value::string("enthuse")]),
                        ),
                    ])]),
                ),
            ]),
        ]);
        assert!(v.multiset_eq(&expected));
    }

    #[test]
    fn missing_inner_rows_produce_empty_bags() {
        let r1: ShredResult = vec![(
            idx(0, 1),
            FlatValue::Record(vec![
                (
                    "dept".to_string(),
                    FlatValue::Base(Value::string("Quality")),
                ),
                ("people".to_string(), FlatValue::Index(idx(1, 7))),
            ]),
        )];
        let r2: ShredResult = vec![];
        let package = Package::Bag(
            r1,
            Box::new(Package::Record(vec![
                ("dept".to_string(), Package::Base(BaseType::String)),
                (
                    "people".to_string(),
                    Package::Bag(r2, Box::new(Package::Base(BaseType::String))),
                ),
            ])),
        );
        let v = stitch(&package, IndexScheme::Flat).unwrap();
        let people = v.as_bag().unwrap()[0].field("people").unwrap();
        assert_eq!(people, &Value::Bag(vec![]));
    }

    #[test]
    fn mismatched_shapes_are_decode_errors() {
        let r1: ShredResult = vec![(idx(0, 1), FlatValue::Base(Value::Int(3)))];
        let package = Package::Bag(
            r1,
            Box::new(Package::Record(vec![(
                "x".to_string(),
                Package::Base(BaseType::Int),
            )])),
        );
        assert!(matches!(
            stitch(&package, IndexScheme::Flat),
            Err(ShredError::Decode(_))
        ));
    }
}
