//! # bench — the benchmark harness for the SIGMOD 2014 evaluation
//!
//! This crate regenerates the paper's experiments:
//!
//! * **Figure 10** — the flat queries QF1–QF6, comparing query shredding,
//!   loop-lifting and Links' default flat evaluation while scaling the number
//!   of departments;
//! * **Figure 11** — the nested queries Q1–Q6, comparing query shredding and
//!   loop-lifting over the same scaling sweep;
//! * **Appendix A** — the quadratic blow-up of Van den Bussche's simulation
//!   on multiset unions.
//!
//! The Criterion benches under `benches/` measure the same workloads with
//! statistical rigour at a fixed scale; the `experiments` binary prints the
//! full scaling tables in the same layout as the paper's figures.

use datagen::{generate, organisation_schema, OrgConfig};
use nrc::schema::{Database, Schema};
use nrc::term::Term;
use nrc::value::Value;
use shredding::error::ShredError;
use sqlengine::Engine;
use std::time::{Duration, Instant};

/// The systems compared by the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Query shredding (this paper).
    Shredding,
    /// The loop-lifting baseline (Ferry / Ulrich).
    LoopLifting,
    /// Links' default flat query evaluation (flat queries only).
    Default,
}

impl std::fmt::Display for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            System::Shredding => write!(f, "shredding"),
            System::LoopLifting => write!(f, "loop-lifting"),
            System::Default => write!(f, "default"),
        }
    }
}

/// A prepared benchmark instance: the generated database loaded both into the
/// λNRC evaluator and the SQL engine.
pub struct Instance {
    pub schema: Schema,
    pub db: Database,
    pub engine: Engine,
    pub departments: usize,
}

impl Instance {
    /// Generate an instance with the paper's distributions at a given number
    /// of departments (scaled-down employee counts keep the in-process sweep
    /// fast; pass a custom config for the full-size data).
    pub fn at_scale(departments: usize) -> Instance {
        Instance::with_config(OrgConfig {
            departments,
            employees_per_department: 20,
            contacts_per_department: 5,
            ..OrgConfig::default()
        })
    }

    /// Generate an instance from an explicit configuration.
    pub fn with_config(config: OrgConfig) -> Instance {
        let schema = organisation_schema();
        let db = generate(&config);
        let engine = shredding::pipeline::engine_from_database(&db)
            .expect("generated data always loads into the engine");
        Instance {
            schema,
            db,
            engine,
            departments: config.departments,
        }
    }
}

/// One measurement: total time to translate the query, evaluate the resulting
/// SQL and stitch the results (exactly what the paper reports), plus the size
/// of the produced value as a sanity check.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub system: System,
    pub query: String,
    pub departments: usize,
    pub elapsed: Duration,
    pub result_scalars: usize,
    pub error: Option<String>,
}

impl Measurement {
    /// Elapsed time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1000.0
    }
}

/// Run one query under one system and measure the end-to-end time.
pub fn measure(system: System, name: &str, query: &Term, instance: &Instance) -> Measurement {
    let start = Instant::now();
    let outcome: Result<Value, ShredError> = match system {
        System::Shredding => shredding::pipeline::run(query, &instance.schema, &instance.engine),
        System::LoopLifting => baselines::run_looplift(query, &instance.schema, &instance.engine),
        System::Default => baselines::run_flat(query, &instance.schema, &instance.engine),
    };
    let elapsed = start.elapsed();
    match outcome {
        Ok(value) => Measurement {
            system,
            query: name.to_string(),
            departments: instance.departments,
            elapsed,
            result_scalars: value.scalar_count(),
            error: None,
        },
        Err(e) => Measurement {
            system,
            query: name.to_string(),
            departments: instance.departments,
            elapsed,
            result_scalars: 0,
            error: Some(e.to_string()),
        },
    }
}

/// Run a query under a system `runs` times and keep the median, as in the
/// paper ("the times are medians of 5 runs").
pub fn measure_median(
    system: System,
    name: &str,
    query: &Term,
    instance: &Instance,
    runs: usize,
) -> Measurement {
    let mut measurements: Vec<Measurement> = (0..runs.max(1))
        .map(|_| measure(system, name, query, instance))
        .collect();
    measurements.sort_by(|a, b| a.elapsed.cmp(&b.elapsed));
    measurements.swap_remove(measurements.len() / 2)
}

/// Verify that a system's answer matches the nested reference semantics on an
/// instance (used by the harness's `--check` mode and the integration tests).
pub fn check_against_reference(
    system: System,
    query: &Term,
    instance: &Instance,
) -> Result<(), String> {
    let reference = nrc::eval(query, &instance.db).map_err(|e| e.to_string())?;
    let value = match system {
        System::Shredding => shredding::pipeline::run(query, &instance.schema, &instance.engine),
        System::LoopLifting => baselines::run_looplift(query, &instance.schema, &instance.engine),
        System::Default => baselines::run_flat(query, &instance.schema, &instance.engine),
    }
    .map_err(|e| e.to_string())?;
    if value.multiset_eq(&reference) {
        Ok(())
    } else {
        Err("result differs from the nested reference semantics".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_report_sensible_values() {
        let instance = Instance::with_config(OrgConfig::small());
        let (name, q) = &datagen::queries::flat_queries()[0];
        let m = measure(System::Shredding, name, q, &instance);
        assert!(m.error.is_none());
        assert!(m.millis() >= 0.0);
    }

    #[test]
    fn all_three_systems_agree_on_flat_queries() {
        let instance = Instance::with_config(OrgConfig::small());
        for (name, q) in datagen::queries::flat_queries() {
            for system in [System::Shredding, System::LoopLifting, System::Default] {
                check_against_reference(system, &q, &instance)
                    .unwrap_or_else(|e| panic!("{} under {}: {}", name, system, e));
            }
        }
    }

    #[test]
    fn shredding_and_loop_lifting_agree_on_nested_queries() {
        let instance = Instance::with_config(OrgConfig {
            departments: 3,
            employees_per_department: 5,
            contacts_per_department: 2,
            ..OrgConfig::default()
        });
        for (name, q) in datagen::queries::nested_queries() {
            for system in [System::Shredding, System::LoopLifting] {
                check_against_reference(system, &q, &instance)
                    .unwrap_or_else(|e| panic!("{} under {}: {}", name, system, e));
            }
        }
    }
}
